//! Hermetic stand-in for the `proptest` crate.
//!
//! Offline builds cannot fetch the registry crate, so this shim
//! implements the subset of the proptest API the workspace's property
//! tests use: the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`]
//! / [`prop_oneof!`] macros, the [`strategy::Strategy`] trait with
//! `prop_map` / `prop_filter`, range and tuple strategies, `Just`,
//! `any::<bool>()`, `prop::collection::vec`, and a small
//! character-class-plus-counted-repetition subset of the string regex
//! strategies (enough for patterns like `"[a-z][a-z0-9_]{0,6}"`).
//!
//! Semantics differ from real proptest in two deliberate ways: case
//! generation is deterministic per test name (reproducible without a
//! persistence file), and failing cases are reported but **not shrunk**.

#![warn(missing_docs)]

pub mod test_runner {
    //! Test configuration, RNG, and failure plumbing.

    /// Error carried out of a test case by the `prop_assert*` macros.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Wrap a failure message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Subset of proptest's run configuration honoured by the shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Accepted for source compatibility; the shim never shrinks.
        pub max_shrink_iters: u32,
        /// Global cap on `prop_filter` rejections per test.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 1024,
                max_global_rejects: 65_536,
            }
        }
    }

    impl ProptestConfig {
        /// A default configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    /// Deterministic SplitMix64 stream seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed the stream from an arbitrary label (the test name).
        pub fn deterministic(label: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64-bit word of the stream.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and the combinators the workspace uses.

    use crate::test_runner::TestRng;

    /// A generator of values of type [`Strategy::Value`].
    ///
    /// Unlike real proptest there is no value tree: strategies sample
    /// directly and nothing shrinks.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Reject values for which `f` returns false (resampling).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                reason,
                f,
            }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A heap-allocated, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 10000 consecutive values: {}",
                self.reason
            );
        }
    }

    /// Strategy that always yields a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted choice between type-erased alternatives; built by
    /// [`crate::prop_oneof!`].
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> Union<T> {
        /// Build from `(weight, strategy)` arms. Weights must not all be zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(arms.iter().any(|(w, _)| *w > 0), "all weights zero");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
            let mut pick = rng.below(total);
            for (w, s) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return s.sample(rng);
                }
                pick -= w;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let width = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % width;
                    (self.start as i128 + v as i128) as $t
                }
            }
        )+};
    }

    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    /// String strategy from a regex-like pattern.
    ///
    /// Supported subset: literal characters, character classes with
    /// ranges (`[a-z0-9_ ]`), and counted repetition `{n}` / `{m,n}` on
    /// the preceding class or literal. This covers every pattern used in
    /// the workspace's tests.
    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            sample_pattern(self, rng)
        }
    }

    fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a class or a literal character.
            let class: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "bad range in pattern {pattern:?}");
                        for c in lo..=hi {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(!set.is_empty(), "empty class in pattern {pattern:?}");
                i = close + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            // Optional counted repetition.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed repetition in pattern {pattern:?}"))
                    + i;
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse::<usize>().expect("bad repetition bound"),
                        b.trim().parse::<usize>().expect("bad repetition bound"),
                    ),
                    None => {
                        let n = spec.trim().parse::<usize>().expect("bad repetition count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let count = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..count {
                out.push(class[rng.below(class.len() as u64) as usize]);
            }
        }
        out
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive-exclusive size specification accepted by [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let width = (self.size.end - self.size.start) as u64;
            let n = self.size.start + rng.below(width) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait and [`any`], for the types the tests use.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy's type.
        type Strategy: Strategy<Value = Self>;
        /// The canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    /// Uniform `bool` strategy.
    pub struct BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = BoolStrategy;
        fn arbitrary() -> BoolStrategy {
            BoolStrategy
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Fail the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Weighted (or uniform) choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(
                (
                    $weight as u32,
                    ::std::boxed::Box::new($strat)
                        as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
                )
            ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Define property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_cases! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (
        config = ($config:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                    )+
                    let outcome = (|| -> ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = TestRng::deterministic("regex");
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_]{0,6}".sample(&mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
            let t = "[0-9]{1,2}".sample(&mut rng);
            assert!((1..=2).contains(&t.len()) && t.chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn union_respects_zero_weight_arms() {
        let mut rng = TestRng::deterministic("union");
        let u = prop_oneof![1 => Just(1i64), 0 => Just(2i64)];
        for _ in 0..50 {
            assert_eq!(u.sample(&mut rng), 1i64);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_pipeline_works(
            n in 0i64..10,
            v in prop::collection::vec(0u64..3, 1..4),
            flag in any::<bool>(),
            name in "[a-z]{3,6}",
        ) {
            prop_assert!((0..10).contains(&n));
            prop_assert!(!v.is_empty() && v.len() < 4);
            let _: bool = flag;
            prop_assert!((3..=6).contains(&name.len()), "bad len: {}", name);
            prop_assert_eq!(n, n);
            prop_assert_ne!(n, n + 1);
        }
    }
}
