//! Hermetic stand-in for the `criterion` crate.
//!
//! Implements the subset of criterion's API used by this workspace's
//! benches (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `sample_size`, `criterion_group!`, `criterion_main!`)
//! with a simple but honest measurement loop: per sample, a batch of
//! iterations is timed with `std::time::Instant` and the reported figure
//! is the **median** per-iteration time across samples.
//!
//! Results are printed one per line:
//!
//! ```text
//! bench: e1/attach_restriction            median      12_345 ns/iter (20 samples)
//! ```
//!
//! When the `CRITERION_SHIM_JSON` environment variable names a file, the
//! final results are merged into it as a flat `{"bench name": median_ns}`
//! JSON object, so external tooling (see `tables.rs --json`) can track
//! the perf trajectory across runs.

#![warn(missing_docs)]

use std::sync::{Mutex, OnceLock};
use std::time::Instant;

pub use std::hint::black_box;

fn registry() -> &'static Mutex<Vec<(String, f64)>> {
    static RESULTS: OnceLock<Mutex<Vec<(String, f64)>>> = OnceLock::new();
    RESULTS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A two-part id: `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter (the group name prefixes it).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    median_ns: Option<f64>,
}

impl Bencher {
    /// Measure `routine`, recording the median per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Estimate a batch size targeting ~2ms per sample so Instant
        // granularity is negligible even for nanosecond routines.
        let start = Instant::now();
        black_box(routine());
        let est = start.elapsed().as_nanos().max(1) as f64;
        let iters = ((2_000_000.0 / est) as usize).clamp(1, 10_000);
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let mid = samples.len() / 2;
        let median = if samples.len().is_multiple_of(2) {
            (samples[mid - 1] + samples[mid]) / 2.0
        } else {
            samples[mid]
        };
        self.median_ns = Some(median);
    }
}

fn run_one(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        sample_size,
        median_ns: None,
    };
    f(&mut b);
    let median = b.median_ns.unwrap_or(f64::NAN);
    println!("bench: {id:<50} median {median:>14.0} ns/iter ({sample_size} samples)");
    registry().lock().unwrap().push((id.to_string(), median));
}

/// Group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmark `f` with a borrowed input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Benchmark a closure with no separate input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: BenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// End the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the default number of timing samples.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Benchmark a single named closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_size, &mut f);
        self
    }
}

/// Write collected results to `CRITERION_SHIM_JSON` (if set), merging
/// with any object already in the file. Called by [`criterion_main!`].
pub fn finalize() {
    let Ok(path) = std::env::var("CRITERION_SHIM_JSON") else {
        return;
    };
    let mut merged: Vec<(String, f64)> = std::fs::read_to_string(&path)
        .ok()
        .map(|text| parse_flat_json(&text))
        .unwrap_or_default();
    for (k, v) in registry().lock().unwrap().iter() {
        if let Some(slot) = merged.iter_mut().find(|(mk, _)| mk == k) {
            slot.1 = *v;
        } else {
            merged.push((k.clone(), *v));
        }
    }
    let body: Vec<String> = merged
        .iter()
        .map(|(k, v)| format!("  {:?}: {:.0}", k, v))
        .collect();
    let text = format!("{{\n{}\n}}\n", body.join(",\n"));
    if let Err(e) = std::fs::write(&path, text) {
        eprintln!("criterion shim: cannot write {path}: {e}");
    }
}

/// Parse a flat `{"name": number}` JSON object (the only shape this shim
/// ever writes). Returns an empty vec on malformed input.
pub fn parse_flat_json(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let inner = text.trim().trim_start_matches('{').trim_end_matches('}');
    for entry in inner.split(',') {
        let Some((k, v)) = entry.rsplit_once(':') else {
            continue;
        };
        let key = k.trim().trim_matches('"').to_string();
        if key.is_empty() {
            continue;
        }
        if let Ok(num) = v.trim().parse::<f64>() {
            out.push((key, num));
        }
    }
    out
}

/// Define a benchmark group function, in either criterion form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the benchmark binary's `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_recorded() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("shim/selftest", |b| b.iter(|| black_box(2u64 + 2)));
        let results = registry().lock().unwrap();
        let (_, ns) = results
            .iter()
            .find(|(k, _)| k == "shim/selftest")
            .expect("result recorded");
        assert!(ns.is_finite() && *ns >= 0.0);
    }

    #[test]
    fn flat_json_roundtrip() {
        let parsed = parse_flat_json("{\n  \"a/b\": 120,\n  \"c\": 45\n}\n");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0], ("a/b".to_string(), 120.0));
    }
}
