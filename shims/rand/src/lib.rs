//! Hermetic stand-in for the `rand` crate.
//!
//! The workspace builds offline, so instead of the registry crate this
//! shim provides the exact API surface used here: `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_bool`] and
//! [`Rng::gen_range`] over integer, `usize` and `f64` ranges.
//!
//! The generator is SplitMix64 — deterministic, seedable, and of ample
//! quality for test-data generation (it is the seeding PRNG used by the
//! xoshiro family). It is **not** the same stream as the real `StdRng`,
//! and makes no cryptographic claims.

#![warn(missing_docs)]

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Produce the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % width;
                (self.start as i128 + v as i128) as $t
            }
        }
    )+};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// User-facing sampling methods, blanket-implemented for every core.
pub trait Rng: RngCore {
    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Sample uniformly from a half-open range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator (SplitMix64 stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(16i64..30);
            assert!((16..30).contains(&v));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
            let f = rng.gen_range(0.0..10.0);
            assert!((0.0..10.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
