#!/usr/bin/env python3
"""Smoke-test `sqo serve`: concurrent mixed load over the wire.

Starts the server on an ephemeral port, fires >= 32 concurrent queries
(a parameterized cache-hit family, a second template, and one
contradiction), validates every response line against
schemas/serve.schema.json (and each embedded report against
schemas/explain.schema.json), then checks the metrics reply: cache hits
>= 1 and shed == 0. Exits nonzero on any failure or timeout.

Stdlib only, mirroring check_explain_schema.py (whose validator it
reuses).

A second phase runs the service-layer differential check: 10 fuzz-emitted
schema/IC/query cases are prepared as wire sessions, each query is sent
twice (cold miss, then warm cache hit/rebind), and both wire reports must
agree verdict-for-verdict and rewrite-for-rewrite with a cold in-process
`sqo --schema ... --ic ... --explain` run of the same case.

Usage: python3 scripts/serve_smoke.py [path/to/sqo]
"""

import json
import os
import shutil
import socket
import subprocess
import sys
import tempfile
import threading

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from check_explain_schema import validate  # noqa: E402

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TIMEOUT_S = 60
N_CLIENTS = 33  # one contradiction + 32 mixed queries

IC4 = "ic IC4: Age >= 30 <- faculty(X, N, Age, S, R, Ad).\n"


def load_schema(name):
    with open(os.path.join(REPO, "schemas", name)) as f:
        return json.load(f)


def fail(msg):
    print(f"serve_smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def request(addr, line, timeout=TIMEOUT_S):
    """One request line -> one parsed response object."""
    with socket.create_connection(addr, timeout=timeout) as s:
        s.sendall(line.encode() + b"\n")
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = s.recv(65536)
            if not chunk:
                break
            buf += chunk
    return json.loads(buf.decode())


def check(value, schema, root, what):
    errors = []
    validate(value, schema, root, "$", errors)
    if errors:
        fail(f"{what} violates schema: " + "; ".join(errors[:5]))


def fuzz_differential(sqo, addr, serve_schema, explain_schema, n_cases=10):
    """Wire sessions vs cold in-process pipeline over fuzz-emitted cases.

    For each emitted case: `prepare` a session with its schema+ICs, send
    the query cold (cache miss) and warm (hit/rebind), and require both
    wire reports to match the verdict and rewritten-OQL list of a fresh
    `sqo --schema ... --ic ... --explain` run.
    """
    outdir = tempfile.mkdtemp(prefix="sqo_fuzz_cases_")
    try:
        emit = subprocess.run(
            [sqo, "fuzz", "--emit-cases", str(n_cases), "--out", outdir],
            capture_output=True, text=True, timeout=TIMEOUT_S)
        if emit.returncode != 0:
            fail(f"sqo fuzz --emit-cases failed: {emit.stderr}")
        for i in range(n_cases):
            base = os.path.join(outdir, f"case{i}")
            with open(base + ".odl") as f:
                odl = f.read()
            with open(base + ".ic") as f:
                ic = f.read()
            with open(base + ".oql") as f:
                oql = f.read().strip()

            # Cold in-process reference (exit 2 = contradiction, still ok).
            ref_run = subprocess.run(
                [sqo, "--schema", base + ".odl", "--ic", base + ".ic",
                 "--explain", oql],
                capture_output=True, text=True, timeout=TIMEOUT_S)
            if ref_run.returncode not in (0, 2):
                fail(f"fuzz case {i}: in-process run failed "
                     f"(rc {ref_run.returncode}): {ref_run.stderr}")
            ref = json.loads(ref_run.stdout)

            prep = request(addr, json.dumps(
                {"op": "prepare", "session": f"fuzz{i}", "schema": odl, "ic": ic}))
            check(prep, serve_schema, serve_schema, f"fuzz case {i} prepare")
            if not prep.get("ok"):
                fail(f"fuzz case {i}: prepare failed: {prep}")

            responses = []
            for phase in ("cold", "warm"):
                resp = request(addr, json.dumps(
                    {"op": "query", "session": f"fuzz{i}", "oql": oql,
                     "timeout_ms": 30000}))
                check(resp, serve_schema, serve_schema, f"fuzz case {i} {phase}")
                if not resp.get("ok"):
                    fail(f"fuzz case {i} {phase}: {resp}")
                responses.append((phase, resp))
            if responses[0][1].get("cache") != "miss":
                fail(f"fuzz case {i}: cold query should miss: {responses[0][1]}")
            if responses[1][1].get("cache") not in ("hit", "rebind"):
                fail(f"fuzz case {i}: warm query should hit/rebind: "
                     f"{responses[1][1]}")

            for phase, resp in responses:
                report = resp["report"]
                check(report, explain_schema, explain_schema,
                      f"fuzz case {i} {phase} report")
                if report["verdict"] != ref["verdict"]:
                    fail(f"fuzz case {i} {phase}: wire verdict "
                         f"{report['verdict']} != in-process {ref['verdict']}"
                         f" for {oql!r}")
                if report["verdict"] == "equivalents":
                    wire_oql = [e["oql"] for e in report["equivalents"]]
                    ref_oql = [e["oql"] for e in ref["equivalents"]]
                    if wire_oql != ref_oql:
                        fail(f"fuzz case {i} {phase}: wire rewrites diverge "
                             f"from in-process for {oql!r}:\n"
                             f"  wire: {wire_oql}\n  ref:  {ref_oql}")
        return n_cases
    finally:
        shutil.rmtree(outdir, ignore_errors=True)


def main():
    sqo = sys.argv[1] if len(sys.argv) > 1 else os.path.join(REPO, "target", "release", "sqo")
    if not os.path.exists(sqo):
        fail(f"binary not found: {sqo} (build with `cargo build --release`)")
    serve_schema = load_schema("serve.schema.json")
    explain_schema = load_schema("explain.schema.json")

    with tempfile.NamedTemporaryFile("w", suffix=".dl", delete=False) as f:
        f.write(IC4)
        ic_path = f.name
    proc = subprocess.Popen(
        [sqo, "serve", "--university", "--ic", ic_path,
         "--addr", "127.0.0.1:0", "--workers", "4", "--queue", "64"],
        stdout=subprocess.PIPE, text=True,
    )
    try:
        # The first stdout line announces the bound address.
        line = proc.stdout.readline()
        if not line:
            fail("server did not announce a listening address")
        announce = json.loads(line)
        host, port = announce["listening"].rsplit(":", 1)
        addr = (host, int(port))

        # Warm one template so concurrent repeats can hit the cache.
        warm = request(addr, json.dumps(
            {"op": "query", "oql": "select x.name from x in Person where x.age < 21"}))
        check(warm, serve_schema, serve_schema, "warm-up response")
        if not warm.get("ok") or warm.get("cache") != "miss":
            fail(f"warm-up should be a cache miss: {warm}")

        results = [None] * N_CLIENTS

        def client(i):
            if i == 0:
                oql = "select f.name from f in Faculty where f.age < 25"
            elif i % 2 == 0:
                # Cache-hit family: same template as the warm-up.
                oql = f"select x.name from x in Person where x.age < {22 + i % 7}"
            else:
                # Distinct templates: a fresh comparison column each time.
                oql = f"select s.name from s in Student where s.student_id != \"id{i}\""
            try:
                results[i] = (oql, request(addr, json.dumps(
                    {"op": "query", "oql": oql, "timeout_ms": 30000})))
            except Exception as e:  # noqa: BLE001 - reported as a failure below
                results[i] = (oql, e)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(N_CLIENTS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(TIMEOUT_S)
            if t.is_alive():
                fail("client timed out")

        hits = 0
        for i, (oql, resp) in enumerate(results):
            if isinstance(resp, Exception):
                fail(f"client {i} ({oql!r}): {resp}")
            check(resp, serve_schema, serve_schema, f"client {i} response")
            if not resp.get("ok"):
                fail(f"client {i} ({oql!r}) not ok: {resp}")
            report = resp["report"]
            check(report, explain_schema, explain_schema, f"client {i} report")
            want = "contradiction" if i == 0 else "equivalents"
            if report["verdict"] != want:
                fail(f"client {i} ({oql!r}): verdict {report['verdict']}, want {want}")
            if resp.get("cache") == "hit":
                hits += 1

        metrics = request(addr, json.dumps({"op": "metrics"}))
        check(metrics, serve_schema, serve_schema, "metrics response")
        counters = metrics["stats"]["counters"]
        if counters.get("plan_cache.hits", 0) < 1 or hits < 1:
            fail(f"expected cache hits >= 1 (wire: {hits}, counter: "
                 f"{counters.get('plan_cache.hits')})")
        if counters.get("serve.shed", 0) != 0:
            fail(f"expected shed == 0, got {counters.get('serve.shed')}")
        if counters.get("serve.requests", 0) < N_CLIENTS + 1:
            fail(f"serve.requests under-counts: {counters.get('serve.requests')}")

        n_fuzz = fuzz_differential(sqo, addr, serve_schema, explain_schema)

        bye = request(addr, json.dumps({"op": "shutdown"}))
        check(bye, serve_schema, serve_schema, "shutdown response")
        proc.wait(timeout=TIMEOUT_S)
        print(f"serve_smoke: OK ({N_CLIENTS} concurrent queries, "
              f"{hits} warm hits, shed 0, {n_fuzz} fuzz cases wire==in-process)")
    finally:
        os.unlink(ic_path)
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    main()
