#!/usr/bin/env python3
"""Smoke-test `sqo serve`: concurrent mixed load over the wire.

Starts the server on an ephemeral port, fires >= 32 concurrent queries
(a parameterized cache-hit family, a second template, and one
contradiction), validates every response line against
schemas/serve.schema.json (and each embedded report against
schemas/explain.schema.json), then checks the metrics reply: cache hits
>= 1 and shed == 0. Exits nonzero on any failure or timeout.

The telemetry surface is exercised too: metrics must report latency
histogram quantiles for the request path and the pinned pipeline stages
with deterministically sorted keys; a query with trace:true must return
its deterministic trace id and ordered span events; and, because the
server runs with --slow-ms 0, every request lands in the slow-query log,
so the slowlog op must return well-formed entries and the --slowlog-path
file must hold the same JSON lines.

Stdlib only, mirroring check_explain_schema.py (whose validator it
reuses).

A second phase runs the service-layer differential check: 10 fuzz-emitted
schema/IC/query cases are prepared as wire sessions, each query is sent
twice (cold miss, then warm cache hit/rebind), and both wire reports must
agree verdict-for-verdict and rewrite-for-rewrite with a cold in-process
`sqo --schema ... --ic ... --explain` run of the same case.

A third phase checks pipelining: a warm family of requests is sent as
one TCP segment on a single connection, and the responses must come
back one per request, in request order, identical (modulo volatile
fields) to the same requests sent one at a time.

A fourth phase smoke-tests durable-store crash recovery: a server
started with --store-path takes writes over the wire (create/link),
persists a snapshot, keeps writing so the WAL holds a tail, is killed
with SIGKILL, and is restarted from the same directory — the recovered
server must return the same executed answer count.

Every phase runs twice: once under the default event-loop connection
multiplexer and once under the thread-per-connection ablation
(--serve-mode threaded), so the two serving paths stay behaviorally
interchangeable.

Usage: python3 scripts/serve_smoke.py [path/to/sqo]
"""

import json
import os
import shutil
import socket
import subprocess
import sys
import tempfile
import threading

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from check_explain_schema import validate  # noqa: E402

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TIMEOUT_S = 60
N_CLIENTS = 33  # one contradiction + 32 mixed queries

IC4 = "ic IC4: Age >= 30 <- faculty(X, N, Age, S, R, Ad).\n"


def load_schema(name):
    with open(os.path.join(REPO, "schemas", name)) as f:
        return json.load(f)


def fail(msg):
    print(f"serve_smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def request_raw(addr, line, timeout=TIMEOUT_S):
    """One request line -> the raw response line (undecoded JSON text)."""
    with socket.create_connection(addr, timeout=timeout) as s:
        s.sendall(line.encode() + b"\n")
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = s.recv(65536)
            if not chunk:
                break
            buf += chunk
    return buf.decode()


def request(addr, line, timeout=TIMEOUT_S):
    """One request line -> one parsed response object."""
    return json.loads(request_raw(addr, line, timeout))


def check(value, schema, root, what):
    errors = []
    validate(value, schema, root, "$", errors)
    if errors:
        fail(f"{what} violates schema: " + "; ".join(errors[:5]))


def telemetry_checks(addr, serve_schema, slowlog_path):
    """Histogram quantiles, sorted metrics keys, traces, and the slowlog."""
    # A traced query: deterministic trace id, ordered span events.
    traced = request(addr, json.dumps(
        {"op": "query", "trace": True,
         "oql": "select x.name from x in Person where x.age < 24"}))
    check(traced, serve_schema, serve_schema, "traced query response")
    if not traced.get("ok"):
        fail(f"traced query failed: {traced}")
    tid = traced.get("trace_id", "")
    parts = tid.split(":")
    if len(parts) != 3 or parts[0] != "default" or not parts[2].isdigit():
        fail(f"trace_id {tid!r} is not session:generation:seq")
    events = traced.get("trace", [])
    if not events:
        fail("trace:true returned no span events")
    names = [e["name"] for e in events]
    if names[0] != "serve.admission_wait":
        fail(f"first span event should be the admission wait: {names}")
    for want in ("cache.lookup", "pipeline.optimize"):
        if want not in names:
            fail(f"span event {want!r} missing from trace: {names}")
    if any(e["dur_ns"] < 0 or e["start_ns"] < 0 for e in events):
        fail(f"span events carry negative timings: {events}")

    # Metrics: histogram quantiles for the request path and the pinned
    # stages, with deterministically sorted keys on the wire.
    raw = request_raw(addr, json.dumps({"op": "metrics"}))
    metrics = json.loads(raw)
    check(metrics, serve_schema, serve_schema, "telemetry metrics response")
    hist = metrics.get("hist", {})
    for key in ("serve.request", "serve.wait",
                "stage/cache.lookup", "stage/objdb.execute"):
        if key not in hist:
            fail(f"metrics hist lacks pinned series {key!r}: {sorted(hist)}")
    req = hist["serve.request"]
    if req["count"] < 1:
        fail(f"serve.request histogram is empty: {req}")
    for p in ("p50", "p90", "p99", "max"):
        if not isinstance(req[p], (int, float)) or req[p] <= 0:
            fail(f"serve.request {p} should be a positive sample: {req}")
    if "queue_depth_hwm" not in metrics:
        fail("metrics lacks queue_depth_hwm")

    def assert_sorted(obj, what):
        keys = list(obj)
        if keys != sorted(keys):
            fail(f"{what} keys are not sorted: {keys}")

    ordered = json.loads(raw, object_pairs_hook=lambda p: dict(p))
    # dict preserves insertion order, so these reflect the wire order.
    assert_sorted(ordered["hist"], "metrics hist")
    assert_sorted(ordered["stats"]["counters"], "metrics counters")
    assert_sorted(ordered["stats"]["hists"], "metrics stats.hists")

    # The slow-query log: --slow-ms 0 makes every request slow, so the
    # ring buffer and the sink file must both have entries by now.
    slowlog = request(addr, json.dumps({"op": "slowlog"}))
    check(slowlog, serve_schema, serve_schema, "slowlog response")
    if not slowlog.get("ok") or slowlog.get("count", 0) < 1:
        fail(f"slowlog should hold entries at --slow-ms 0: {slowlog}")
    entries = slowlog["entries"]
    if len(entries) != slowlog["count"]:
        fail(f"slowlog count {slowlog['count']} != entries {len(entries)}")
    for e in entries[:5]:
        if not e["stages"]:
            fail(f"slowlog entry lacks per-stage durations: {e}")
        if e["verdict"] not in ("contradiction", "equivalents"):
            fail(f"slowlog entry verdict malformed: {e}")
    with open(slowlog_path) as f:
        lines = [ln for ln in f.read().splitlines() if ln.strip()]
    if not lines:
        fail(f"slowlog sink {slowlog_path} is empty")
    for ln in lines[-3:]:
        entry = json.loads(ln)
        if "trace_id" not in entry or "explain" not in entry:
            fail(f"slowlog sink line malformed: {ln}")
    return len(events), slowlog["count"]


def fuzz_differential(sqo, addr, serve_schema, explain_schema, n_cases=10):
    """Wire sessions vs cold in-process pipeline over fuzz-emitted cases.

    For each emitted case: `prepare` a session with its schema+ICs, send
    the query cold (cache miss) and warm (hit/rebind), and require both
    wire reports to match the verdict and rewritten-OQL list of a fresh
    `sqo --schema ... --ic ... --explain` run.
    """
    outdir = tempfile.mkdtemp(prefix="sqo_fuzz_cases_")
    try:
        emit = subprocess.run(
            [sqo, "fuzz", "--emit-cases", str(n_cases), "--out", outdir],
            capture_output=True, text=True, timeout=TIMEOUT_S)
        if emit.returncode != 0:
            fail(f"sqo fuzz --emit-cases failed: {emit.stderr}")
        for i in range(n_cases):
            base = os.path.join(outdir, f"case{i}")
            with open(base + ".odl") as f:
                odl = f.read()
            with open(base + ".ic") as f:
                ic = f.read()
            with open(base + ".oql") as f:
                oql = f.read().strip()

            # Cold in-process reference (exit 2 = contradiction, still ok).
            ref_run = subprocess.run(
                [sqo, "--schema", base + ".odl", "--ic", base + ".ic",
                 "--explain", oql],
                capture_output=True, text=True, timeout=TIMEOUT_S)
            if ref_run.returncode not in (0, 2):
                fail(f"fuzz case {i}: in-process run failed "
                     f"(rc {ref_run.returncode}): {ref_run.stderr}")
            ref = json.loads(ref_run.stdout)

            prep = request(addr, json.dumps(
                {"op": "prepare", "session": f"fuzz{i}", "schema": odl, "ic": ic}))
            check(prep, serve_schema, serve_schema, f"fuzz case {i} prepare")
            if not prep.get("ok"):
                fail(f"fuzz case {i}: prepare failed: {prep}")

            responses = []
            for phase in ("cold", "warm"):
                resp = request(addr, json.dumps(
                    {"op": "query", "session": f"fuzz{i}", "oql": oql,
                     "timeout_ms": 30000}))
                check(resp, serve_schema, serve_schema, f"fuzz case {i} {phase}")
                if not resp.get("ok"):
                    fail(f"fuzz case {i} {phase}: {resp}")
                responses.append((phase, resp))
            if responses[0][1].get("cache") != "miss":
                fail(f"fuzz case {i}: cold query should miss: {responses[0][1]}")
            if responses[1][1].get("cache") not in ("hit", "rebind"):
                fail(f"fuzz case {i}: warm query should hit/rebind: "
                     f"{responses[1][1]}")

            for phase, resp in responses:
                report = resp["report"]
                check(report, explain_schema, explain_schema,
                      f"fuzz case {i} {phase} report")
                if report["verdict"] != ref["verdict"]:
                    fail(f"fuzz case {i} {phase}: wire verdict "
                         f"{report['verdict']} != in-process {ref['verdict']}"
                         f" for {oql!r}")
                if report["verdict"] == "equivalents":
                    wire_oql = [e["oql"] for e in report["equivalents"]]
                    ref_oql = [e["oql"] for e in ref["equivalents"]]
                    if wire_oql != ref_oql:
                        fail(f"fuzz case {i} {phase}: wire rewrites diverge "
                             f"from in-process for {oql!r}:\n"
                             f"  wire: {wire_oql}\n  ref:  {ref_oql}")
        return n_cases
    finally:
        shutil.rmtree(outdir, ignore_errors=True)


def scrub(value):
    """Recursively drop the volatile fields (timings, trace ids, span
    stats) so two responses to the same request can be compared."""
    if isinstance(value, dict):
        return {k: scrub(v) for k, v in value.items()
                if k not in ("elapsed_us", "trace_id", "stats")}
    if isinstance(value, list):
        return [scrub(v) for v in value]
    return value


def pipelined_phase(addr, serve_schema):
    """N requests in one TCP segment -> N in-order responses, identical
    (modulo volatile fields) to one-at-a-time delivery.

    The request family is warmed first so both deliveries run fully
    warm and must report the same cache labels.
    """
    lines = [json.dumps(
        {"op": "query",
         "oql": f"select x.name from x in Person where x.age < {21 + i}"})
        for i in range(8)]
    lines.insert(4, json.dumps({"op": "ping"}))

    for ln in lines:  # warm every template
        request(addr, ln)
    sequential = [request(addr, ln) for ln in lines]

    with socket.create_connection(addr, timeout=TIMEOUT_S) as s:
        s.sendall(("\n".join(lines) + "\n").encode())
        f = s.makefile("rb")
        piped = [json.loads(f.readline()) for _ in lines]

    for i, (seq, pipe) in enumerate(zip(sequential, piped)):
        check(pipe, serve_schema, serve_schema, f"pipelined response {i}")
        if not pipe.get("ok"):
            fail(f"pipelined request {i} failed: {pipe}")
        if scrub(seq) != scrub(pipe):
            fail(f"pipelined response {i} diverged from one-at-a-time:\n"
                 f"  sequential: {json.dumps(scrub(seq))}\n"
                 f"  pipelined:  {json.dumps(scrub(pipe))}")
    return len(lines)


def recovery_phase(sqo, serve_schema, mode):
    """Durable-store crash recovery over the wire.

    Starts a second server with --store-path on a fresh directory, writes
    objects and a relationship over the wire, forces a snapshot with
    persist, keeps writing so the WAL holds a tail past the snapshot,
    then SIGKILLs the process (no shutdown handshake) and restarts from
    the same directory: the recovered server must return the same answer
    count for the same executed query.
    """
    store_dir = tempfile.mkdtemp(prefix="sqo_smoke_store_")
    q_students = json.dumps(
        {"op": "query", "oql": "select x.name from x in Student",
         "execute": True})

    def start():
        p = subprocess.Popen(
            [sqo, "serve", "--university", "--addr", "127.0.0.1:0",
             "--workers", "2", "--queue", "16", "--store-path", store_dir,
             "--serve-mode", mode],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True)
        line = p.stdout.readline()
        if not line:
            fail("recovery: server did not announce a listening address")
        host, port = json.loads(line)["listening"].rsplit(":", 1)
        return p, (host, int(port))

    proc = None
    try:
        proc, addr = start()
        oids = []
        for w in (
            {"op": "create", "class": "Student",
             "attrs": {"name": "ada", "age": 21}},
            {"op": "create", "class": "Student",
             "attrs": {"name": "bob", "age": 23}},
            {"op": "create", "class": "Section", "attrs": {"number": "s1"}},
        ):
            resp = request(addr, json.dumps(w))
            check(resp, serve_schema, serve_schema, "recovery create")
            if not resp.get("ok") or "oid" not in resp:
                fail(f"recovery: create failed: {resp}")
            oids.append(resp["oid"])
        link = request(addr, json.dumps(
            {"op": "link", "from": oids[0], "rel": "takes", "to": oids[2]}))
        check(link, serve_schema, serve_schema, "recovery link")
        if not link.get("ok"):
            fail(f"recovery: link failed: {link}")
        persist = request(addr, json.dumps({"op": "persist"}))
        check(persist, serve_schema, serve_schema, "recovery persist")
        if not persist.get("ok") or persist.get("snapshot_bytes", 0) <= 0:
            fail(f"recovery: persist should write a snapshot: {persist}")
        # A write after the snapshot: recovery must replay the WAL tail,
        # not just load the snapshot.
        tail = request(addr, json.dumps(
            {"op": "create", "class": "Student",
             "attrs": {"name": "tail", "age": 25}}))
        if not tail.get("ok"):
            fail(f"recovery: post-snapshot create failed: {tail}")
        before = request(addr, q_students)
        check(before, serve_schema, serve_schema, "recovery pre-kill query")
        if not before.get("ok") or before.get("answers") != 3:
            fail(f"recovery: expected 3 students before the kill: {before}")

        # Crash hard: SIGKILL, no shutdown handshake, no final sync.
        proc.kill()
        proc.wait(timeout=TIMEOUT_S)

        proc, addr = start()
        after = request(addr, q_students)
        check(after, serve_schema, serve_schema, "recovery post-kill query")
        if not after.get("ok") or after.get("answers") != before["answers"]:
            fail(f"recovery: answers diverged across the crash: "
                 f"{before.get('answers')} before vs {after} after")
        metrics = request(addr, json.dumps({"op": "metrics"}))
        check(metrics, serve_schema, serve_schema, "recovery metrics")
        gens = [s["store_generation"] for s in metrics.get("sessions", [])]
        if not any(g > 0 for g in gens):
            fail(f"recovery: recovered store generation should be > 0: {gens}")
        bye = request(addr, json.dumps({"op": "shutdown"}))
        check(bye, serve_schema, serve_schema, "recovery shutdown")
        proc.wait(timeout=TIMEOUT_S)
        return after["answers"]
    finally:
        if proc is not None and proc.poll() is None:
            proc.kill()
            proc.wait()
        shutil.rmtree(store_dir, ignore_errors=True)


def run_mode(sqo, serve_schema, explain_schema, mode):
    with tempfile.NamedTemporaryFile("w", suffix=".dl", delete=False) as f:
        f.write(IC4)
        ic_path = f.name
    slowlog_path = tempfile.mktemp(suffix=".slowlog.jsonl")
    # --slow-ms 0: every request is "slow", so the slowlog paths (ring
    # buffer, wire op, and file sink) are all exercised by the same load.
    proc = subprocess.Popen(
        [sqo, "serve", "--university", "--ic", ic_path,
         "--addr", "127.0.0.1:0", "--workers", "4", "--queue", "64",
         "--slow-ms", "0", "--slowlog-path", slowlog_path,
         "--serve-mode", mode],
        stdout=subprocess.PIPE, text=True,
    )
    try:
        # The first stdout line announces the bound address.
        line = proc.stdout.readline()
        if not line:
            fail("server did not announce a listening address")
        announce = json.loads(line)
        host, port = announce["listening"].rsplit(":", 1)
        addr = (host, int(port))

        # Warm one template so concurrent repeats can hit the cache.
        warm = request(addr, json.dumps(
            {"op": "query", "oql": "select x.name from x in Person where x.age < 21"}))
        check(warm, serve_schema, serve_schema, "warm-up response")
        if not warm.get("ok") or warm.get("cache") != "miss":
            fail(f"warm-up should be a cache miss: {warm}")

        results = [None] * N_CLIENTS

        def client(i):
            if i == 0:
                oql = "select f.name from f in Faculty where f.age < 25"
            elif i % 2 == 0:
                # Cache-hit family: same template as the warm-up.
                oql = f"select x.name from x in Person where x.age < {22 + i % 7}"
            else:
                # Distinct templates: a fresh comparison column each time.
                oql = f"select s.name from s in Student where s.student_id != \"id{i}\""
            try:
                results[i] = (oql, request(addr, json.dumps(
                    {"op": "query", "oql": oql, "timeout_ms": 30000})))
            except Exception as e:  # noqa: BLE001 - reported as a failure below
                results[i] = (oql, e)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(N_CLIENTS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(TIMEOUT_S)
            if t.is_alive():
                fail("client timed out")

        hits = 0
        for i, (oql, resp) in enumerate(results):
            if isinstance(resp, Exception):
                fail(f"client {i} ({oql!r}): {resp}")
            check(resp, serve_schema, serve_schema, f"client {i} response")
            if not resp.get("ok"):
                fail(f"client {i} ({oql!r}) not ok: {resp}")
            report = resp["report"]
            check(report, explain_schema, explain_schema, f"client {i} report")
            want = "contradiction" if i == 0 else "equivalents"
            if report["verdict"] != want:
                fail(f"client {i} ({oql!r}): verdict {report['verdict']}, want {want}")
            if resp.get("cache") == "hit":
                hits += 1

        metrics = request(addr, json.dumps({"op": "metrics"}))
        check(metrics, serve_schema, serve_schema, "metrics response")
        if metrics.get("serve_mode") != mode:
            fail(f"metrics serve_mode {metrics.get('serve_mode')!r} != "
                 f"requested {mode!r}")
        counters = metrics["stats"]["counters"]
        if counters.get("plan_cache.hits", 0) < 1 or hits < 1:
            fail(f"expected cache hits >= 1 (wire: {hits}, counter: "
                 f"{counters.get('plan_cache.hits')})")
        if counters.get("serve.shed", 0) != 0:
            fail(f"expected shed == 0, got {counters.get('serve.shed')}")
        if counters.get("serve.requests", 0) < N_CLIENTS + 1:
            fail(f"serve.requests under-counts: {counters.get('serve.requests')}")

        n_events, n_slow = telemetry_checks(addr, serve_schema, slowlog_path)

        n_piped = pipelined_phase(addr, serve_schema)

        n_fuzz = fuzz_differential(sqo, addr, serve_schema, explain_schema)

        bye = request(addr, json.dumps({"op": "shutdown"}))
        check(bye, serve_schema, serve_schema, "shutdown response")
        proc.wait(timeout=TIMEOUT_S)

        n_recovered = recovery_phase(sqo, serve_schema, mode)

        print(f"serve_smoke: [{mode}] OK ({N_CLIENTS} concurrent queries, "
              f"{hits} warm hits, shed 0, trace {n_events} events, "
              f"slowlog {n_slow} entries, "
              f"{n_piped} pipelined == one-at-a-time, "
              f"{n_fuzz} fuzz cases wire==in-process, "
              f"{n_recovered} answers across a kill -9 recovery)")
    finally:
        os.unlink(ic_path)
        if os.path.exists(slowlog_path):
            os.unlink(slowlog_path)
        if proc.poll() is None:
            proc.kill()
            proc.wait()


def main():
    sqo = sys.argv[1] if len(sys.argv) > 1 else os.path.join(
        REPO, "target", "release", "sqo")
    if not os.path.exists(sqo):
        fail(f"binary not found: {sqo} (build with `cargo build --release`)")
    serve_schema = load_schema("serve.schema.json")
    explain_schema = load_schema("explain.schema.json")
    for mode in ("event-loop", "threaded"):
        run_mode(sqo, serve_schema, explain_schema, mode)
    print("serve_smoke: OK (all phases under both --serve-modes)")


if __name__ == "__main__":
    main()
