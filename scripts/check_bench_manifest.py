#!/usr/bin/env python3
"""Validate the committed BENCH_pipeline.json manifest.

Checks (all on the committed manifest — the CI tables run uses --quick,
which never overwrites the manifest, so this validates what a full
`cargo run --release -p sqo-bench --bin tables` wrote):

1. Every value is a positive finite number.
2. Every derived `speedup/<name>` / `speedup_vs_seed/<name>` entry has
   its `<name>` measurement row.
3. The E3 indexed-rewrite experiment is present, with all three rows:
   `e3/indexed_rewrite` (IC rewrite on the indexed engine),
   `e3/indexed_rewrite_baseline` (the original query, scan-only), and
   `e3/indexed_rewrite_seed` (the same rewrite on the scan-only engine).
4. `speedup/e3/indexed_rewrite` >= 10: the semantic rewrite must reach
   an indexed plan at least an order of magnitude faster than the
   original query's scan — the headline claim of the indexed engine.
5. The closed-loop serving rows are present: `serve/p50` / `serve/p99`
   (client-observed warm-cache latency at 1x under the event loop),
   `serve/p50_threaded` / `serve/p99_threaded` (the same phase on the
   thread-per-connection ablation), `serve/p50_pipelined` /
   `serve/p99_pipelined` (8-deep client pipelining), and
   `serve/shed_rate_overload` (the 10x-overload shed fraction, which
   must lie strictly inside (0, 1): zero would mean admission control
   never engaged, one would mean no request was ever accepted). Each
   p50 must not exceed its p99, and the event-loop p99 must not exceed
   the threaded p99 — the event loop has to at least match the
   multiplexer it replaced (refresh with `tables --serve`).
6. The Step-3 best-first search beats the exhaustive-BFS baseline by the
   floors the PR claims: `speedup/f2/step3_sqo_vs_applicable_ics/32`
   >= 5 (wide-IC scenario) and `.../12` >= 2, each with its
   `_baseline` (BFS, sequential, canonical-key dedup) and `_seed`
   (pre-best-first default engine) rows present.
7. The durable-store recovery row `store/recover_1m_objects` is present
   (refresh with `tables --store-recovery`) and under its 10 s budget:
   a cold open of a million-object store must load the snapshot and
   replay the WAL tail without an order-of-magnitude regression.

Usage: python3 scripts/check_bench_manifest.py [path/to/BENCH_pipeline.json]
"""

import json
import math
import sys

E3_ROWS = (
    "e3/indexed_rewrite",
    "e3/indexed_rewrite_baseline",
    "e3/indexed_rewrite_seed",
)
E3_MIN_SPEEDUP = 10.0

SERVE_ROWS = (
    "serve/p50",
    "serve/p99",
    "serve/p50_threaded",
    "serve/p99_threaded",
    "serve/p50_pipelined",
    "serve/p99_pipelined",
    "serve/shed_rate_overload",
)
# Warm quantile pairs that must be monotone (p50 <= p99).
SERVE_QUANTILE_PAIRS = (
    ("serve/p50", "serve/p99"),
    ("serve/p50_threaded", "serve/p99_threaded"),
    ("serve/p50_pipelined", "serve/p99_pipelined"),
)

# Durable-store recovery: the million-object cold open (snapshot load +
# WAL-tail replay) must be present and inside a generous wall-clock
# budget — recovery measured at ~0.7 s; the 10 s ceiling catches
# order-of-magnitude regressions (e.g. per-record fsync or quadratic
# replay), not machine noise.
STORE_ROW = "store/recover_1m_objects"
STORE_MAX_RECOVER_NS = 10e9

# Step-3 search: (row, minimum speedup over the exhaustive-BFS baseline).
STEP3_GATES = (
    ("f2/step3_sqo_vs_applicable_ics/32", 5.0),
    ("f2/step3_sqo_vs_applicable_ics/12", 2.0),
)


def fail(msg: str) -> None:
    print(f"check_bench_manifest: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_pipeline.json"
    with open(path, encoding="utf-8") as f:
        manifest = json.load(f)
    if not isinstance(manifest, dict) or not manifest:
        fail("manifest must be a non-empty JSON object")

    for name, value in manifest.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            fail(f"{name!r}: value {value!r} is not a number")
        if not math.isfinite(value) or value <= 0:
            fail(f"{name!r}: value {value!r} is not positive and finite")

    for name in manifest:
        for prefix in ("speedup/", "speedup_vs_seed/"):
            if name.startswith(prefix) and name[len(prefix):] not in manifest:
                fail(f"{name!r} lacks its measurement row {name[len(prefix):]!r}")

    for row in E3_ROWS:
        if row not in manifest:
            fail(f"missing E3 row {row!r} — run the full (non-quick) tables binary")

    speedup = manifest.get("speedup/e3/indexed_rewrite")
    if speedup is None:
        fail("missing derived row 'speedup/e3/indexed_rewrite'")
    if speedup < E3_MIN_SPEEDUP:
        fail(
            f"speedup/e3/indexed_rewrite = {speedup} < {E3_MIN_SPEEDUP}: the "
            "IC-introduced rewrite no longer reaches a plan >=10x faster than "
            "the original query's scan"
        )

    for row in SERVE_ROWS:
        if row not in manifest:
            fail(f"missing serving row {row!r} — run the full (non-quick) "
                 "tables binary or `tables --serve`")
    for p50_row, p99_row in SERVE_QUANTILE_PAIRS:
        if manifest[p50_row] > manifest[p99_row]:
            fail(
                f"{p50_row} ({manifest[p50_row]}) exceeds {p99_row} "
                f"({manifest[p99_row]}): quantiles are not monotone"
            )
    if manifest["serve/p99"] > manifest["serve/p99_threaded"]:
        fail(
            f"serve/p99 ({manifest['serve/p99']}) exceeds serve/p99_threaded "
            f"({manifest['serve/p99_threaded']}): the event loop's warm tail "
            "latency has regressed past the thread-per-connection ablation "
            "it replaced"
        )
    shed = manifest["serve/shed_rate_overload"]
    if not 0.0 < shed < 1.0:
        fail(
            f"serve/shed_rate_overload = {shed} must lie strictly in (0, 1): "
            "the 10x-overload phase must shed some but not all requests"
        )

    recover = manifest.get(STORE_ROW)
    if recover is None:
        fail(f"missing store row {STORE_ROW!r} — run the full tables binary "
             "or `tables --store-recovery`")
    if recover > STORE_MAX_RECOVER_NS:
        fail(
            f"{STORE_ROW} = {recover:.0f} ns exceeds "
            f"{STORE_MAX_RECOVER_NS:.0f} ns: cold recovery of a million-object "
            "store (snapshot load + WAL-tail replay) has regressed past the "
            "budget"
        )

    step3_speedups = {}
    for row, floor in STEP3_GATES:
        for suffix in ("", "_baseline", "_seed"):
            if row + suffix not in manifest:
                fail(
                    f"missing Step-3 row {row + suffix!r} — run the full "
                    "(non-quick) tables binary"
                )
        speedup_row = manifest.get(f"speedup/{row}")
        if speedup_row is None:
            fail(f"missing derived row 'speedup/{row}'")
        if speedup_row < floor:
            fail(
                f"speedup/{row} = {speedup_row} < {floor}: best-first Step-3 "
                "search no longer clears its floor over the exhaustive-BFS "
                "baseline"
            )
        step3_speedups[row.rsplit('/', 1)[-1]] = speedup_row

    print(
        f"check_bench_manifest: OK ({len(manifest)} rows; "
        f"step3 best-first speedup "
        f"{'/'.join(f'{k}ics:{v:.2f}x' for k, v in step3_speedups.items())}; "
        f"e3 indexed-rewrite speedup {speedup}x; "
        f"serve p99 {manifest['serve/p99'] / 1e6:.2f} ms event-loop vs "
        f"{manifest['serve/p99_threaded'] / 1e6:.2f} ms threaded; "
        f"overload shed rate {shed}; "
        f"1m-object recovery {recover / 1e6:.0f} ms)"
    )


if __name__ == "__main__":
    main()
