#!/usr/bin/env python3
"""Validate `sqo --explain` output against schemas/explain.schema.json.

Usage:
    sqo --university --explain "select ..." | python3 scripts/check_explain_schema.py
    python3 scripts/check_explain_schema.py report.json

Implements the small JSON Schema subset the checked-in schema uses (type,
required, properties, items, enum, minItems, additionalProperties, $ref to
#/definitions/*) so CI needs nothing beyond the Python standard library.
Union-mode output (a JSON array of reports) validates each element.

Exit status: 0 on success, 1 on validation failure, 2 on bad input.
"""

import json
import os
import sys

SCHEMA_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "schemas", "explain.schema.json"
)

TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    # bool is an int subclass in Python; keep number/boolean disjoint.
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def resolve(schema, root):
    ref = schema.get("$ref")
    if ref is None:
        return schema
    if not ref.startswith("#/"):
        raise ValueError(f"unsupported $ref: {ref}")
    node = root
    for part in ref[2:].split("/"):
        node = node[part]
    return node


def validate(value, schema, root, path, errors):
    schema = resolve(schema, root)

    expected = schema.get("type")
    if expected is not None:
        types = expected if isinstance(expected, list) else [expected]
        if not any(TYPE_CHECKS[t](value) for t in types):
            errors.append(f"{path}: expected type {expected}, got {type(value).__name__}")
            return

    enum = schema.get("enum")
    if enum is not None and value not in enum:
        errors.append(f"{path}: value {value!r} not in {enum}")

    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties")
        for key, item in value.items():
            if key in props:
                validate(item, props[key], root, f"{path}.{key}", errors)
            elif isinstance(extra, dict):
                validate(item, extra, root, f"{path}.{key}", errors)

    if isinstance(value, list):
        min_items = schema.get("minItems")
        if min_items is not None and len(value) < min_items:
            errors.append(f"{path}: expected at least {min_items} item(s), got {len(value)}")
        items = schema.get("items")
        if items is not None:
            for i, item in enumerate(value):
                validate(item, items, root, f"{path}[{i}]", errors)


def main():
    if len(sys.argv) > 2:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        with open(SCHEMA_PATH, encoding="utf-8") as f:
            schema = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"cannot load schema {SCHEMA_PATH}: {e}", file=sys.stderr)
        return 2
    source = sys.argv[1] if len(sys.argv) == 2 else "/dev/stdin"
    try:
        with open(source, encoding="utf-8") as f:
            text = f.read()
        data = json.loads(text)
    except (OSError, json.JSONDecodeError) as e:
        print(f"cannot parse report from {source}: {e}", file=sys.stderr)
        return 2

    reports = data if isinstance(data, list) else [data]
    errors = []
    for i, report in enumerate(reports):
        prefix = f"$[{i}]" if isinstance(data, list) else "$"
        validate(report, schema, schema, prefix, errors)
        # Cross-key consistency the schema's vocabulary cannot express: the
        # verdict selects which payload key must be present.
        if isinstance(report, dict):
            verdict = report.get("verdict")
            if verdict == "equivalents" and "equivalents" not in report:
                errors.append(f"{prefix}: verdict 'equivalents' without 'equivalents' payload")
            if verdict == "contradiction" and "contradiction" not in report:
                errors.append(f"{prefix}: verdict 'contradiction' without 'contradiction' payload")
    if errors:
        for e in errors:
            print(f"explain schema violation: {e}", file=sys.stderr)
        return 1
    print(f"explain report OK ({len(reports)} report(s) validated)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
