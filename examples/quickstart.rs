//! Quickstart: the full Figure 2 pipeline on the paper's university
//! schema.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use semantic_sqo::{SemanticOptimizer, Verdict};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Step 1 happens here: the ODL schema of Figure 1 is translated into
    // Datalog relations and integrity constraints (OID identification,
    // subclass hierarchy, inverse relationships, one-to-one constraints,
    // keys).
    let mut opt = SemanticOptimizer::university();

    println!("== Datalog schema (Step 1) ==");
    for rel in &opt.catalog().relations {
        let args: Vec<&str> = rel.args.iter().map(|a| a.name.as_str()).collect();
        println!("  {}({})", rel.pred, args.join(", "));
    }
    println!(
        "  + {} schema-derived integrity constraints",
        opt.catalog().constraints.len()
    );

    // The ODMG-93 extension the paper argues for: application-specific
    // integrity constraints. IC4: all faculty members are 30 or older.
    opt.add_constraint_text("ic IC4: Age >= 30 <- faculty(X, Name, Age, Salary, Rank, Addr).")?;

    // The query of Application 2: names of persons younger than 30.
    let oql = "select x.name from x in Person where x.age < 30";
    println!("\n== Original OQL ==\n{oql}");

    let report = opt.optimize(oql)?;
    println!("\n== Datalog translation (Step 2) ==\n{}", report.datalog);

    match &report.verdict {
        Verdict::Contradiction { ic_name, note, .. } => {
            println!(
                "\nThe query is CONTRADICTORY ({}): {note}",
                ic_name.as_deref().unwrap_or("-")
            );
        }
        Verdict::Equivalents(_) => {
            println!("\n== Semantically equivalent queries (Steps 3 + 4) ==");
            for (i, e) in report.proper_rewrites().enumerate() {
                println!("\n--- rewrite {} --- (delta: {})", i + 1, e.delta);
                for s in &e.steps {
                    println!("    step: {s}");
                }
                println!("{}", e.oql);
            }
        }
    }

    // A contradictory query: the same residue that *adds* a restriction
    // can refute one.
    let bad = "select x.name from x in Faculty where x.age < 25";
    let report = opt.optimize(bad)?;
    println!("\n== {bad} ==");
    if let Verdict::Contradiction { ic_name, note, .. } = &report.verdict {
        println!(
            "CONTRADICTION detected by {} — {note}; the query is never evaluated.",
            ic_name.as_deref().unwrap_or("-")
        );
    }
    Ok(())
}
