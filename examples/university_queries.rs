//! Measured optimization on a synthetic university object base.
//!
//! Builds the Figure 1 schema at configurable scale, runs the paper's
//! Application 2 and 3 queries through the full pipeline, executes the
//! original and the SQO'd queries with the object-level cost model, and
//! lets the cardinality-based plan chooser pick the winner — the role
//! the paper assigns to "a conventional cost-based optimizer".
//!
//! ```text
//! cargo run --release --example university_queries [scale]
//! ```

use semantic_sqo::objdb::{choose_best, execute, UniversityConfig};
use semantic_sqo::{SemanticOptimizer, Verdict};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);

    let data = UniversityConfig {
        persons: 500 * scale,
        students: 800 * scale,
        faculty: 100 * scale,
        courses: 60 * scale,
        ..Default::default()
    }
    .build()?;
    println!(
        "object base: {} objects, {} persons in the Person extent",
        data.db.object_count(),
        data.db.extent("Person").len()
    );

    let mut opt = SemanticOptimizer::university();
    opt.add_constraint_text("ic IC4: Age >= 30 <- faculty(X, N, Age, S, R, Ad).")?;

    // ---------- Application 2: access scope reduction ----------
    println!("\n=== Application 2: scope reduction ===");
    let report = opt.optimize("select x.name from x in Person where x.age < 30")?;
    let Verdict::Equivalents(equivalents) = &report.verdict else {
        unreachable!("satisfiable query");
    };
    let queries: Vec<_> = equivalents.iter().map(|e| e.datalog.clone()).collect();
    let (best, costs) = choose_best(&data.db, &queries);
    for (i, e) in equivalents.iter().enumerate() {
        let (rows, cost) = execute(&data.db, &e.datalog)?;
        println!(
            "  variant {i}{}: est={:.0} | {} | answers={}",
            if i == best { " (chosen)" } else { "" },
            costs[i],
            cost,
            rows.len()
        );
    }

    // ---------- Application 3: key-based join reduction ----------
    println!("\n=== Application 3: key join reduction ===");
    let report = opt.optimize(
        r#"select list(x.student_id, t.employee_id)
           from x in Student
                y in x.takes
                z in y.is_taught_by
                t in TA
                v in t.takes
                w in v.is_taught_by
           where z.name = w.name"#,
    )?;
    let Verdict::Equivalents(equivalents) = &report.verdict else {
        unreachable!("satisfiable query");
    };
    let queries: Vec<_> = equivalents.iter().map(|e| e.datalog.clone()).collect();
    let (best, costs) = choose_best(&data.db, &queries);
    let (orig_rows, orig_cost) = execute(&data.db, &equivalents[0].datalog)?;
    let (best_rows, best_cost) = execute(&data.db, &equivalents[best].datalog)?;
    println!("  original: est={:.0} | {orig_cost}", costs[0]);
    println!("  chosen:   est={:.0} | {best_cost}", costs[best]);
    println!(
        "  faculty object fetches: {} -> {}",
        orig_cost.object_fetches, best_cost.object_fetches
    );
    assert_eq!(orig_rows.len(), best_rows.len(), "equivalence check");
    println!(
        "  (both return {} rows — semantically equivalent)",
        orig_rows.len()
    );
    println!(
        "\n  chosen OQL:\n{}",
        indent(&equivalents[best].oql.to_string())
    );
    Ok(())
}

fn indent(s: &str) -> String {
    s.lines()
        .map(|l| format!("    {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
