//! Application 4: access support relations — join elimination and join
//! introduction over a long path expression.
//!
//! ```text
//! cargo run --release --example asr_paths
//! ```

use semantic_sqo::objdb::{execute, UniversityConfig};
use semantic_sqo::{SemanticOptimizer, Verdict};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut data = UniversityConfig {
        students: 1000,
        courses: 80,
        ..Default::default()
    }
    .build()?;
    // The ASR of the paper: the canonical extension over
    // takes ∘ is_section_of ∘ has_sections ∘ has_ta.
    data.db.define_asr(
        "asr",
        "Student",
        &["takes", "is_section_of", "has_sections", "has_ta"],
    )?;

    let mut opt = SemanticOptimizer::university();
    for rule in data.db.asr_rules() {
        opt.add_view(rule);
    }

    // Q: relate the first and last object of the path.
    println!("=== Q: students named james -> TAs (full path) ===");
    let report = opt.optimize(
        r#"select w
           from x in Student
                y in x.takes
                z in y.is_section_of
                v in z.has_sections
                w in v.has_ta
           where x.name = "student1""#,
    )?;
    let Verdict::Equivalents(eqs) = &report.verdict else {
        unreachable!()
    };
    let folded = eqs
        .iter()
        .find(|e| {
            e.datalog.positive_atoms().any(|a| a.pred.name() == "asr") && e.datalog.body.len() <= 3
        })
        .expect("folded variant");
    let (rows_orig, cost_orig) = execute(&data.db, &eqs[0].datalog)?;
    let (rows_fold, cost_fold) = execute(&data.db, &folded.datalog)?;
    assert_eq!(rows_orig, rows_fold, "fold preserves answers");
    println!("  original: {cost_orig}");
    println!("  folded:   {cost_fold}");
    println!(
        "  relationship traversals {} -> {} (ASR probes: {})",
        cost_orig.rel_traversals, cost_fold.rel_traversals, cost_fold.view_probes
    );
    println!("  folded OQL:\n{}", indent(&folded.oql.to_string()));

    // Q1: relate the first object with the *section* (4th object). The
    // ASR applies only after IC9 introduces the has_ta join.
    println!("\n=== Q1: join introduction via IC9 ===");
    let mut opt2 = SemanticOptimizer::university();
    for rule in data.db.asr_rules() {
        opt2.add_view(rule);
    }
    // IC9: every section of a course some student takes has a TA.
    opt2.add_constraint_text(
        "ic IC9: has_ta(V, W) <- takes(X, Y), is_section_of(Y, Z), has_sections(Z, V).",
    )?;
    let report = opt2.optimize(
        r#"select v
           from x in Student
                y in x.takes
                z in y.is_section_of
                v in z.has_sections
           where x.name = "student2""#,
    )?;
    let Verdict::Equivalents(eqs) = &report.verdict else {
        unreachable!()
    };
    println!("  {} equivalent queries; those using the ASR:", eqs.len());
    for e in eqs {
        if e.datalog.positive_atoms().any(|a| a.pred.name() == "asr") {
            let (rows, cost) = execute(&data.db, &e.datalog)?;
            println!("    {} | answers={} | {}", e.datalog, rows.len(), cost);
        }
    }
    let (rows0, cost0) = execute(&data.db, &eqs[0].datalog)?;
    println!("  original | answers={} | {}", rows0.len(), cost0);
    Ok(())
}

fn indent(s: &str) -> String {
    s.lines()
        .map(|l| format!("    {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
