//! A semantic "query audit": detect queries that can never return
//! answers, so they are rejected without touching the object base
//! (Example 1 and Application 1 of the paper).
//!
//! ```text
//! cargo run --example contradiction_audit
//! ```

use semantic_sqo::{SemanticOptimizer, Verdict};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut opt = SemanticOptimizer::university();

    // IC1: faculty salaries exceed 40 000.
    opt.add_constraint_text("ic IC1: Salary > 40000 <- faculty(X, N, A, Salary, R, Ad).")?;
    // IC4: faculty members are 30 or older.
    opt.add_constraint_text("ic IC4: Age >= 30 <- faculty(X, N, Age, S, R, Ad).")?;
    // IC3 (derived in the paper from IC1, IC2 and a ground fact): with a
    // 10% rate, every faculty member pays more than 3000 in taxes.
    opt.add_constraint_text(
        "ic IC3: Value > 3000 <- taxes_withheld(X, 0.1, Value), faculty(X, N, A, S, R, Ad).",
    )?;

    let queries = [
        // Application 1: the Example 2 query — taxes below 1000 at 10%
        // contradicts IC3.
        (
            "A1 (taxes below 1000)",
            r#"select z.name, w.city
               from x in Student
                    y in x.takes
                    z in y.is_taught_by
                    w in z.address
               where x.name = "john" and z.taxes_withheld(10%) < 1000"#,
        ),
        // Young faculty: contradicts IC4.
        (
            "young faculty",
            "select x.name from x in Faculty where x.age < 21",
        ),
        // Underpaid faculty: contradicts IC1.
        (
            "underpaid faculty",
            "select x.name from x in Faculty where x.salary < 30000",
        ),
        // Self-contradictory comparisons, no ICs needed.
        (
            "empty age range",
            "select x.name from x in Person where x.age < 20 and x.age > 60",
        ),
        // Satisfiable control queries.
        (
            "ok: adults",
            "select x.name from x in Person where x.age >= 18",
        ),
        (
            "ok: senior faculty",
            "select x.name from x in Faculty where x.age > 50 and x.salary > 50000",
        ),
    ];

    println!("{:<24} verdict", "query");
    println!("{}", "-".repeat(60));
    for (label, src) in queries {
        let report = opt.optimize(src)?;
        match &report.verdict {
            Verdict::Contradiction { ic_name, note, .. } => println!(
                "{label:<24} CONTRADICTION [{}] {note}",
                ic_name.as_deref().unwrap_or("query-local")
            ),
            Verdict::Equivalents(v) => {
                println!("{label:<24} satisfiable ({} equivalent forms)", v.len())
            }
        }
    }
    Ok(())
}
