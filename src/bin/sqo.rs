//! `sqo` — a command-line front end for the semantic query optimizer.
//!
//! ```text
//! sqo --schema school.odl [--ic constraints.dl] [--asr views.dl] "select ... from ... where ..."
//! sqo --university "select x.name from x in Person where x.age < 30"
//! sqo --university --show-schema
//! sqo serve --university --ic constraints.dl --addr 127.0.0.1:7878 --workers 4
//! sqo client --addr 127.0.0.1:7878 --oql "select x.name from x in Person where x.age < 30"
//! ```
//!
//! Constraint / view files use the Datalog concrete syntax, one statement
//! per line (see `sqo_datalog::parser`):
//!
//! ```text
//! ic IC4: Age >= 30 <- faculty(X, N, Age, S, R, Ad).
//! asr(X, W) <- takes(X, Y), has_ta(Y, W).
//! ```

use semantic_sqo::datalog::parser::{parse_program, Statement};
use semantic_sqo::datalog::search::Strategy;
use semantic_sqo::service::json::{self as wire, Json};
use semantic_sqo::service::{Server, ServerConfig, SessionRegistry, SessionSpec};
use semantic_sqo::{SemanticOptimizer, Verdict};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    schema: Option<String>,
    university: bool,
    ic_files: Vec<String>,
    show_schema: bool,
    show_datalog: bool,
    trace: bool,
    explain: bool,
    search: Option<Strategy>,
    query: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: sqo (--schema FILE.odl | --university) [options] [OQL-QUERY]\n\
         \u{20}      sqo serve  (--schema FILE.odl | --university) [--ic FILE]...\n\
         \u{20}                 [--addr HOST:PORT] [--workers N] [--queue N] [--timeout-ms N]\n\
         \u{20}                 [--slow-ms N] [--slowlog-cap N] [--slowlog-path FILE]\n\
         \u{20}                 [--store-path DIR] [--store-shards N]\n\
         \u{20}                 [--serve-mode event-loop|threaded] [--max-frame-bytes N]\n\
         \u{20}      sqo client [--addr HOST:PORT] (--oql QUERY [--session S] [--timeout-ms N]\n\
         \u{20}                 [--trace] [--execute] [--search bfs|best-first]\n\
         \u{20}                 | --metrics | --slowlog | --ping | --shutdown | --persist\n\
         \u{20}                 | --json REQUEST | --reload-ic FILE [--session S])\n\
         \u{20}      sqo fuzz   [--seeds A..B] [--budget 60s] [--replay FILE|DIR] [--save DIR]\n\
         \u{20}                 [--emit-cases N --out DIR] [--dump-dir DIR]\n\
         \u{20}                 [--search bfs|best-first]\n\
         \n\
         options:\n\
           --ic FILE         add integrity constraints / ASR views (Datalog syntax;\n\
                             may be repeated)\n\
           --show-schema     print the Step 1 Datalog schema and exit\n\
           --show-datalog    also print the Datalog form of every rewrite\n\
           --trace           append a trace section: provenance chain per\n\
                             rewrite plus pipeline counters and span timings\n\
           --explain         print the machine-readable optimization report\n\
                             (JSON: verdict, rewrites, provenance, stats)\n\
           --search S        Step-3 search strategy: best-first (default) or\n\
                             bfs (the exhaustive level-BFS ablation baseline)\n\
         \n\
         A contradiction verdict exits with status 2."
    );
    std::process::exit(64)
}

fn parse_args() -> Args {
    let mut args = Args {
        schema: None,
        university: false,
        ic_files: Vec::new(),
        show_schema: false,
        show_datalog: false,
        trace: false,
        explain: false,
        search: None,
        query: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--schema" => args.schema = Some(it.next().unwrap_or_else(|| usage())),
            "--university" => args.university = true,
            "--ic" => args.ic_files.push(it.next().unwrap_or_else(|| usage())),
            "--show-schema" => args.show_schema = true,
            "--show-datalog" => args.show_datalog = true,
            "--trace" => args.trace = true,
            "--explain" => args.explain = true,
            "--search" => {
                let s = it.next().unwrap_or_else(|| usage());
                args.search = Some(Strategy::parse(&s).unwrap_or_else(|| usage()));
            }
            s if s.starts_with("--search=") => {
                let s = &s["--search=".len()..];
                args.search = Some(Strategy::parse(s).unwrap_or_else(|| usage()));
            }
            "--help" | "-h" => usage(),
            q if !q.starts_with('-') => args.query = Some(q.to_string()),
            _ => usage(),
        }
    }
    if args.schema.is_none() && !args.university {
        usage()
    }
    args
}

/// `sqo serve` — prepare a session and run the JSON-lines TCP server.
fn serve_main(args: &[String]) -> ExitCode {
    let mut cfg = ServerConfig::default();
    let mut schema: Option<String> = None;
    let mut university = false;
    let mut ic_files: Vec<String> = Vec::new();
    let mut store_path: Option<String> = None;
    let mut store_shards: usize = 8;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = |flag: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("sqo serve: {flag} needs a value");
                std::process::exit(64)
            })
        };
        match a.as_str() {
            "--schema" => schema = Some(next("--schema")),
            "--university" => university = true,
            "--ic" => ic_files.push(next("--ic")),
            "--addr" => cfg.addr = next("--addr"),
            "--workers" => cfg.workers = next("--workers").parse().unwrap_or_else(|_| usage()),
            "--queue" => cfg.queue_capacity = next("--queue").parse().unwrap_or_else(|_| usage()),
            "--timeout-ms" => {
                cfg.default_timeout_ms = next("--timeout-ms").parse().unwrap_or_else(|_| usage())
            }
            "--slow-ms" => cfg.slow_ms = next("--slow-ms").parse().unwrap_or_else(|_| usage()),
            "--slowlog-cap" => {
                cfg.slowlog_capacity = next("--slowlog-cap").parse().unwrap_or_else(|_| usage())
            }
            "--slowlog-path" => cfg.slowlog_path = Some(next("--slowlog-path")),
            "--store-path" => store_path = Some(next("--store-path")),
            "--store-shards" => {
                store_shards = next("--store-shards").parse().unwrap_or_else(|_| usage())
            }
            "--serve-mode" => {
                let v = next("--serve-mode");
                cfg.mode = semantic_sqo::service::ServeMode::parse(&v).unwrap_or_else(|| {
                    eprintln!("sqo serve: --serve-mode must be \"event-loop\" or \"threaded\"");
                    std::process::exit(64)
                })
            }
            "--max-frame-bytes" => {
                cfg.max_frame_bytes = next("--max-frame-bytes")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            _ => usage(),
        }
    }
    let spec = match (&schema, university) {
        (Some(path), false) => match std::fs::read_to_string(path) {
            Ok(src) => SessionSpec::Odl(src),
            Err(e) => {
                eprintln!("sqo serve: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        (None, true) => SessionSpec::University,
        _ => usage(),
    };
    let mut ic_text = String::new();
    for f in &ic_files {
        match std::fs::read_to_string(f) {
            Ok(src) => {
                ic_text.push_str(&src);
                ic_text.push('\n');
            }
            Err(e) => {
                eprintln!("sqo serve: cannot read {f}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let registry = Arc::new(SessionRegistry::new());
    let ic = (!ic_text.is_empty()).then_some(ic_text.as_str());
    if let Err(e) = registry.prepare("default", spec.clone(), ic) {
        eprintln!("sqo serve: {e}");
        return ExitCode::FAILURE;
    }
    if let Some(path) = &store_path {
        // Open (or create) the durable store, recover its state, and
        // bind it to the default session so writes are WAL-logged and
        // queries execute against the recovered base.
        let odl_schema = match &spec {
            SessionSpec::University => semantic_sqo::odl::fixtures::university_schema(),
            SessionSpec::Odl(src) => {
                match semantic_sqo::odl::parse_odl(src)
                    .and_then(semantic_sqo::odl::Schema::from_decls)
                {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("sqo serve: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        };
        let mut db = match semantic_sqo::objdb::ObjectDb::open(
            odl_schema,
            std::path::Path::new(path),
            store_shards,
        ) {
            Ok(db) => db,
            Err(e) => {
                eprintln!("sqo serve: cannot open store {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if matches!(spec, SessionSpec::University) {
            // Method closures are not persisted; re-register them.
            if let Err(e) = semantic_sqo::objdb::register_university_methods(&mut db) {
                eprintln!("sqo serve: {e}");
                return ExitCode::FAILURE;
            }
        }
        let report = db
            .store()
            .map(|s| s.recover_report().clone())
            .unwrap_or_default();
        eprintln!(
            "sqo serve: store {path}: {} objects, generation {}, snapshot={}, wal_records={}",
            db.object_count(),
            db.store_generation(),
            report.had_snapshot,
            report.wal_records_replayed
        );
        match registry.get("default") {
            Some(session) => session.attach_db(db),
            None => unreachable!("default session prepared above"),
        }
    }
    let server = match Server::bind(cfg, registry) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sqo serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // One machine-readable line so launchers (and the smoke test) can
    // discover the bound port when started with :0.
    println!("{{\"listening\":\"{}\"}}", server.local_addr());
    let _ = std::io::stdout().flush();
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sqo serve: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `sqo client` — send one request line and print the response line.
fn client_main(args: &[String]) -> ExitCode {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut session: Option<String> = None;
    let mut oql: Option<String> = None;
    let mut timeout_ms: Option<u64> = None;
    let mut op: Option<&'static str> = None;
    let mut reload_file: Option<String> = None;
    let mut trace = false;
    let mut execute = false;
    let mut search: Option<String> = None;
    let mut raw: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = |flag: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("sqo client: {flag} needs a value");
                std::process::exit(64)
            })
        };
        match a.as_str() {
            "--addr" => addr = next("--addr"),
            "--session" => session = Some(next("--session")),
            "--oql" => {
                oql = Some(next("--oql"));
                op = Some("query");
            }
            "--timeout-ms" => {
                timeout_ms = Some(next("--timeout-ms").parse().unwrap_or_else(|_| usage()))
            }
            "--metrics" => op = Some("metrics"),
            "--slowlog" => op = Some("slowlog"),
            "--trace" => trace = true,
            "--execute" => execute = true,
            "--search" => {
                let s = next("--search");
                if Strategy::parse(&s).is_none() {
                    usage();
                }
                search = Some(s);
            }
            s if s.starts_with("--search=") => {
                let s = &s["--search=".len()..];
                if Strategy::parse(s).is_none() {
                    usage();
                }
                search = Some(s.to_string());
            }
            "--ping" => op = Some("ping"),
            "--persist" => op = Some("persist"),
            "--json" => raw = Some(next("--json")),
            "--shutdown" => op = Some("shutdown"),
            "--reload-ic" => {
                reload_file = Some(next("--reload-ic"));
                op = Some("reload_ic");
            }
            _ => usage(),
        }
    }
    // A raw request line (e.g. the create/link write ops, whose attrs
    // object has no flag syntax) is sent verbatim.
    if raw.is_none() && op.is_none() {
        usage()
    };
    let op = op.unwrap_or("query");
    let mut fields = vec![format!("\"op\":{}", sqo_obs::json_string(op))];
    if let Some(s) = &session {
        fields.push(format!("\"session\":{}", sqo_obs::json_string(s)));
    }
    if let Some(q) = &oql {
        fields.push(format!("\"oql\":{}", sqo_obs::json_string(q)));
    }
    if let Some(ms) = timeout_ms {
        fields.push(format!("\"timeout_ms\":{ms}"));
    }
    if trace {
        fields.push("\"trace\":true".to_string());
    }
    if execute {
        fields.push("\"execute\":true".to_string());
    }
    if let Some(s) = &search {
        fields.push(format!("\"search\":{}", sqo_obs::json_string(s)));
    }
    if let Some(f) = &reload_file {
        match std::fs::read_to_string(f) {
            Ok(src) => fields.push(format!("\"ic\":{}", sqo_obs::json_string(&src))),
            Err(e) => {
                eprintln!("sqo client: cannot read {f}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let request = match raw {
        Some(line) => line,
        None => format!("{{{}}}", fields.join(",")),
    };
    let response = (|| -> std::io::Result<String> {
        let mut stream = TcpStream::connect(&addr)?;
        stream.write_all(request.as_bytes())?;
        stream.write_all(b"\n")?;
        stream.flush()?;
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line)?;
        Ok(line)
    })();
    let line = match response {
        Ok(l) if !l.trim().is_empty() => l,
        Ok(_) => {
            eprintln!("sqo client: server closed the connection without a response");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("sqo client: {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{line}");
    match wire::parse(line.trim()) {
        Ok(v) if v.get("ok").and_then(Json::as_bool) == Some(true) => {
            // Mirror the one-shot CLI: a contradiction verdict exits 2.
            let verdict = v
                .get("report")
                .and_then(|r| r.get("verdict"))
                .and_then(Json::as_str);
            if verdict == Some("contradiction") {
                ExitCode::from(2)
            } else {
                ExitCode::SUCCESS
            }
        }
        _ => ExitCode::FAILURE,
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("serve") => return serve_main(&argv[1..]),
        Some("client") => return client_main(&argv[1..]),
        Some("fuzz") => {
            let code = semantic_sqo::fuzz::cli_main(&argv[1..]);
            return ExitCode::from(u8::try_from(code).unwrap_or(1));
        }
        _ => {}
    }
    let args = parse_args();
    let mut opt = if args.university {
        SemanticOptimizer::university()
    } else {
        let path = args.schema.as_deref().expect("checked in parse_args");
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("sqo: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match SemanticOptimizer::from_odl(&src) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("sqo: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    if let Some(s) = args.search {
        opt.set_search_strategy(s);
    }

    for f in &args.ic_files {
        let src = match std::fs::read_to_string(f) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("sqo: cannot read {f}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let statements = match parse_program(&src) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("sqo: {f}: {e}");
                return ExitCode::FAILURE;
            }
        };
        for st in statements {
            match st {
                Statement::Constraint(ic) => opt.add_constraint(ic),
                Statement::Rule(rule) => opt.add_view(rule),
                other => {
                    eprintln!("sqo: {f}: unsupported statement {other:?}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    if args.show_schema {
        println!("% Step 1 — Datalog schema");
        for rel in &opt.catalog().relations {
            let cols: Vec<&str> = rel.args.iter().map(|a| a.name.as_str()).collect();
            println!("{}({}).", rel.pred, cols.join(", "));
        }
        println!("\n% Integrity constraints");
        for ic in opt.constraints() {
            println!("{ic}.");
        }
        if args.query.is_none() {
            return ExitCode::SUCCESS;
        }
    }

    let Some(query) = &args.query else {
        eprintln!("sqo: no query given (try --show-schema or --help)");
        return ExitCode::FAILURE;
    };

    // Top-level unions: optimize each branch; prune refuted ones.
    if query
        .split_whitespace()
        .any(|w| w.eq_ignore_ascii_case("union"))
    {
        let report = match opt.optimize_union(query) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("sqo: {e}");
                return ExitCode::FAILURE;
            }
        };
        if args.explain {
            // One JSON report per branch, in source order.
            let items: Vec<String> = report.branches.iter().map(|b| b.explain_json()).collect();
            println!("[{}]", items.join(",\n"));
            return if report.is_empty_union() {
                ExitCode::from(2)
            } else {
                ExitCode::SUCCESS
            };
        }
        for (i, b) in report.branches.iter().enumerate() {
            match &b.verdict {
                semantic_sqo::Verdict::Contradiction { ic_name, note, .. } => println!(
                    "branch {}: PRUNED [{}] {note}",
                    i + 1,
                    ic_name.as_deref().unwrap_or("query-local")
                ),
                semantic_sqo::Verdict::Equivalents(v) => {
                    println!("branch {}: {} equivalent forms", i + 1, v.len())
                }
            }
        }
        if args.trace {
            for (i, ic, chain) in report.pruned_provenance() {
                println!(
                    "-- branch {} refuted by {}:\n{chain}",
                    i + 1,
                    ic.as_deref().unwrap_or("query-local constraints")
                );
            }
            println!("\n-- trace\n{}", sqo_obs::snapshot().to_text());
        }
        if report.is_empty_union() {
            println!("the whole union is provably empty.");
            return ExitCode::from(2);
        }
        println!("\nsurviving query:");
        let survivors: Vec<String> = report.surviving().map(|b| b.original.to_string()).collect();
        println!("{}", survivors.join("\nunion\n"));
        return ExitCode::SUCCESS;
    }

    let report = match opt.optimize(query) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sqo: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.explain {
        println!("{}", report.explain_json());
        return if report.is_contradiction() {
            ExitCode::from(2)
        } else {
            ExitCode::SUCCESS
        };
    }
    if args.trace {
        println!("{}", report.explain());
        return if report.is_contradiction() {
            ExitCode::from(2)
        } else {
            ExitCode::SUCCESS
        };
    }
    println!("-- datalog translation\n{}\n", report.datalog);
    match &report.verdict {
        Verdict::Contradiction { ic_name, note, .. } => {
            println!(
                "CONTRADICTION [{}]: {note}\nThe query can return no answers and need not be evaluated.",
                ic_name.as_deref().unwrap_or("query-local")
            );
            ExitCode::from(2)
        }
        Verdict::Equivalents(_) => {
            let rewrites: Vec<_> = report.proper_rewrites().collect();
            if rewrites.is_empty() {
                println!("no semantic rewrites apply; the query is already minimal.");
            }
            for (i, e) in rewrites.iter().enumerate() {
                println!("-- rewrite {} (delta: {})", i + 1, e.delta);
                for s in &e.steps {
                    println!("--   via {s}");
                }
                if args.show_datalog {
                    println!("--   datalog: {}", e.datalog);
                }
                println!("{}\n", e.oql);
                for w in &e.oql_warnings {
                    println!("--   note: {w}");
                }
            }
            ExitCode::SUCCESS
        }
    }
}
