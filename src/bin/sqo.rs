//! `sqo` — a command-line front end for the semantic query optimizer.
//!
//! ```text
//! sqo --schema school.odl [--ic constraints.dl] [--asr views.dl] "select ... from ... where ..."
//! sqo --university "select x.name from x in Person where x.age < 30"
//! sqo --university --show-schema
//! ```
//!
//! Constraint / view files use the Datalog concrete syntax, one statement
//! per line (see `sqo_datalog::parser`):
//!
//! ```text
//! ic IC4: Age >= 30 <- faculty(X, N, Age, S, R, Ad).
//! asr(X, W) <- takes(X, Y), has_ta(Y, W).
//! ```

use semantic_sqo::datalog::parser::{parse_program, Statement};
use semantic_sqo::{SemanticOptimizer, Verdict};
use std::process::ExitCode;

struct Args {
    schema: Option<String>,
    university: bool,
    ic_files: Vec<String>,
    show_schema: bool,
    show_datalog: bool,
    trace: bool,
    explain: bool,
    query: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: sqo (--schema FILE.odl | --university) [options] [OQL-QUERY]\n\
         \n\
         options:\n\
           --ic FILE         add integrity constraints / ASR views (Datalog syntax;\n\
                             may be repeated)\n\
           --show-schema     print the Step 1 Datalog schema and exit\n\
           --show-datalog    also print the Datalog form of every rewrite\n\
           --trace           append a trace section: provenance chain per\n\
                             rewrite plus pipeline counters and span timings\n\
           --explain         print the machine-readable optimization report\n\
                             (JSON: verdict, rewrites, provenance, stats)\n\
         \n\
         A contradiction verdict exits with status 2."
    );
    std::process::exit(64)
}

fn parse_args() -> Args {
    let mut args = Args {
        schema: None,
        university: false,
        ic_files: Vec::new(),
        show_schema: false,
        show_datalog: false,
        trace: false,
        explain: false,
        query: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--schema" => args.schema = Some(it.next().unwrap_or_else(|| usage())),
            "--university" => args.university = true,
            "--ic" => args.ic_files.push(it.next().unwrap_or_else(|| usage())),
            "--show-schema" => args.show_schema = true,
            "--show-datalog" => args.show_datalog = true,
            "--trace" => args.trace = true,
            "--explain" => args.explain = true,
            "--help" | "-h" => usage(),
            q if !q.starts_with('-') => args.query = Some(q.to_string()),
            _ => usage(),
        }
    }
    if args.schema.is_none() && !args.university {
        usage()
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut opt = if args.university {
        SemanticOptimizer::university()
    } else {
        let path = args.schema.as_deref().expect("checked in parse_args");
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("sqo: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match SemanticOptimizer::from_odl(&src) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("sqo: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    for f in &args.ic_files {
        let src = match std::fs::read_to_string(f) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("sqo: cannot read {f}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let statements = match parse_program(&src) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("sqo: {f}: {e}");
                return ExitCode::FAILURE;
            }
        };
        for st in statements {
            match st {
                Statement::Constraint(ic) => opt.add_constraint(ic),
                Statement::Rule(rule) => opt.add_view(rule),
                other => {
                    eprintln!("sqo: {f}: unsupported statement {other:?}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    if args.show_schema {
        println!("% Step 1 — Datalog schema");
        for rel in &opt.catalog().relations {
            let cols: Vec<&str> = rel.args.iter().map(|a| a.name.as_str()).collect();
            println!("{}({}).", rel.pred, cols.join(", "));
        }
        println!("\n% Integrity constraints");
        for ic in opt.constraints() {
            println!("{ic}.");
        }
        if args.query.is_none() {
            return ExitCode::SUCCESS;
        }
    }

    let Some(query) = &args.query else {
        eprintln!("sqo: no query given (try --show-schema or --help)");
        return ExitCode::FAILURE;
    };

    // Top-level unions: optimize each branch; prune refuted ones.
    if query
        .split_whitespace()
        .any(|w| w.eq_ignore_ascii_case("union"))
    {
        let report = match opt.optimize_union(query) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("sqo: {e}");
                return ExitCode::FAILURE;
            }
        };
        if args.explain {
            // One JSON report per branch, in source order.
            let items: Vec<String> = report.branches.iter().map(|b| b.explain_json()).collect();
            println!("[{}]", items.join(",\n"));
            return if report.is_empty_union() {
                ExitCode::from(2)
            } else {
                ExitCode::SUCCESS
            };
        }
        for (i, b) in report.branches.iter().enumerate() {
            match &b.verdict {
                semantic_sqo::Verdict::Contradiction { ic_name, note, .. } => println!(
                    "branch {}: PRUNED [{}] {note}",
                    i + 1,
                    ic_name.as_deref().unwrap_or("query-local")
                ),
                semantic_sqo::Verdict::Equivalents(v) => {
                    println!("branch {}: {} equivalent forms", i + 1, v.len())
                }
            }
        }
        if args.trace {
            for (i, ic, chain) in report.pruned_provenance() {
                println!(
                    "-- branch {} refuted by {}:\n{chain}",
                    i + 1,
                    ic.as_deref().unwrap_or("query-local constraints")
                );
            }
            println!("\n-- trace\n{}", sqo_obs::snapshot().to_text());
        }
        if report.is_empty_union() {
            println!("the whole union is provably empty.");
            return ExitCode::from(2);
        }
        println!("\nsurviving query:");
        let survivors: Vec<String> = report.surviving().map(|b| b.original.to_string()).collect();
        println!("{}", survivors.join("\nunion\n"));
        return ExitCode::SUCCESS;
    }

    let report = match opt.optimize(query) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sqo: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.explain {
        println!("{}", report.explain_json());
        return if report.is_contradiction() {
            ExitCode::from(2)
        } else {
            ExitCode::SUCCESS
        };
    }
    if args.trace {
        println!("{}", report.explain());
        return if report.is_contradiction() {
            ExitCode::from(2)
        } else {
            ExitCode::SUCCESS
        };
    }
    println!("-- datalog translation\n{}\n", report.datalog);
    match &report.verdict {
        Verdict::Contradiction { ic_name, note, .. } => {
            println!(
                "CONTRADICTION [{}]: {note}\nThe query can return no answers and need not be evaluated.",
                ic_name.as_deref().unwrap_or("query-local")
            );
            ExitCode::from(2)
        }
        Verdict::Equivalents(_) => {
            let rewrites: Vec<_> = report.proper_rewrites().collect();
            if rewrites.is_empty() {
                println!("no semantic rewrites apply; the query is already minimal.");
            }
            for (i, e) in rewrites.iter().enumerate() {
                println!("-- rewrite {} (delta: {})", i + 1, e.delta);
                for s in &e.steps {
                    println!("--   via {s}");
                }
                if args.show_datalog {
                    println!("--   datalog: {}", e.datalog);
                }
                println!("{}\n", e.oql);
                for w in &e.oql_warnings {
                    println!("--   note: {w}");
                }
            }
            ExitCode::SUCCESS
        }
    }
}
