#![warn(missing_docs)]

//! # semantic-sqo
//!
//! A reproduction of *"Semantic Query Optimization for Object
//! Databases"* (J. Grant, J. Gryz, J. Minker, L. Raschid — ICDE 1997):
//! residue-based semantic query optimization for ODMG-93 object
//! databases via a Datalog representation.
//!
//! This is the umbrella crate: it re-exports the workspace members.
//!
//! * [`sqo_core`] — the [`sqo_core::SemanticOptimizer`]
//!   facade (the full Figure 2 pipeline);
//! * [`sqo_odl`] — ODMG-93 ODL parser and schema model (Figure 1
//!   fixture included);
//! * [`sqo_oql`] — OQL parser, normalizer and pretty-printer;
//! * [`sqo_translate`] — Steps 1, 2 and 4 (schema/query translation and
//!   algorithm DATALOG_to_OQL);
//! * [`sqo_datalog`] — the Datalog substrate: residues, the constraint
//!   solver, the chase, the equivalent-query search, and a bottom-up
//!   evaluation engine;
//! * [`sqo_objdb`] — an in-memory object database with extents,
//!   relationships, methods, access support relations, a cost-accounting
//!   executor and a cardinality-based plan chooser;
//! * [`sqo_service`] — the concurrent query-serving subsystem: session
//!   registry, parameterized semantic-plan cache, admission control, and
//!   a JSON-lines-over-TCP front end (`sqo serve` / `sqo client`);
//! * [`sqo_fuzz`] — the differential semantic-equivalence fuzz harness:
//!   randomized schema/IC/query generation with an answer-set oracle,
//!   shrinking, and `.repro` replay (`sqo fuzz`).
//!
//! ## Quickstart
//!
//! ```
//! use semantic_sqo::SemanticOptimizer;
//!
//! let mut opt = SemanticOptimizer::university();
//! opt.add_constraint_text("ic IC4: Age >= 30 <- faculty(X, N, Age, S, R, Ad).").unwrap();
//! let report = opt
//!     .optimize("select x.name from x in Person where x.age < 30")
//!     .unwrap();
//! // Application 2: the optimizer derives `x not in Faculty`.
//! assert!(report
//!     .proper_rewrites()
//!     .any(|e| e.oql.to_string().contains("x not in Faculty")));
//! ```

pub use sqo_core::{
    Backend, CacheOutcome, CompileOptions, Constraint, Delta, EquivalentQuery, OptimizationReport,
    Outcome, PlanCache, PreparedOptimizer, Query, Result, Rule, Schema, SearchConfig, SelectQuery,
    SemanticOptimizer, SqoError, Step, Verdict,
};
pub use sqo_datalog as datalog;
pub use sqo_fuzz as fuzz;
pub use sqo_objdb as objdb;
pub use sqo_obs as obs;
pub use sqo_odl as odl;
pub use sqo_oql as oql;
pub use sqo_service as service;
pub use sqo_translate as translate;
