//! Error types for OQL parsing and normalization.

use std::fmt;

/// Errors produced while parsing or normalizing OQL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OqlError {
    /// Lexical or syntactic error with position.
    Parse {
        /// Human-readable description.
        message: String,
        /// 1-based line number.
        line: usize,
        /// 1-based column number.
        column: usize,
    },
    /// A `from` entry refers to a variable that is not (yet) declared,
    /// e.g. `y in x.takes` before `x` is introduced.
    UnknownVariable {
        /// The offending name.
        name: String,
    },
    /// A variable is declared twice in the `from` clause.
    DuplicateVariable {
        /// The offending name.
        name: String,
    },
    /// An unsupported OQL feature was used (the supported subset is
    /// select-from-where, per Section 4.3 of the paper).
    Unsupported {
        /// The unsupported feature.
        feature: String,
    },
}

impl fmt::Display for OqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OqlError::Parse {
                message,
                line,
                column,
            } => write!(f, "OQL parse error at {line}:{column}: {message}"),
            OqlError::UnknownVariable { name } => {
                write!(f, "unknown variable `{name}` in query")
            }
            OqlError::DuplicateVariable { name } => {
                write!(f, "variable `{name}` declared twice in the from clause")
            }
            OqlError::Unsupported { feature } => {
                write!(f, "unsupported OQL feature: {feature}")
            }
        }
    }
}

impl std::error::Error for OqlError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, OqlError>;
