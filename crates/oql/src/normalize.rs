//! Path-expression normalization to one-dot form.
//!
//! Section 4.3: "Path expressions are removed from an OQL query and
//! substituted with 'one-dot' expressions, i.e., expressions of the form
//! X.Y, where neither X nor Y are path expressions." Each intermediate
//! hop becomes a fresh iteration variable in the `from` clause:
//!
//! ```text
//! where x.takes.is_taught_by.name = "a"
//!   ==>
//! from ..., aux1 in x.takes, aux2 in aux1.is_taught_by
//! where aux2.name = "a"
//! ```

use crate::ast::*;

struct Normalizer {
    fresh: usize,
    taken: Vec<String>,
    new_from: Vec<FromEntry>,
}

impl Normalizer {
    fn fresh_var(&mut self) -> String {
        loop {
            self.fresh += 1;
            let name = format!("aux{}", self.fresh);
            if !self.taken.contains(&name) {
                self.taken.push(name.clone());
                return name;
            }
        }
    }

    /// Reduce a path to one-dot form, emitting intermediate from entries.
    /// Returns the rewritten path (at most one step).
    fn path(&mut self, p: &PathExpr) -> PathExpr {
        if p.is_one_dot() {
            return PathExpr {
                root: p.root.clone(),
                steps: p.steps.iter().map(|s| self.step(s)).collect(),
            };
        }
        let mut root = p.root.clone();
        for step in &p.steps[..p.steps.len() - 1] {
            let step = self.step(step);
            let var = self.fresh_var();
            self.new_from.push(FromEntry::In {
                var: var.clone(),
                source: Source::Path(PathExpr {
                    root,
                    steps: vec![step],
                }),
            });
            root = var;
        }
        PathExpr {
            root,
            steps: vec![self.step(&p.steps[p.steps.len() - 1])],
        }
    }

    /// Normalize the arguments inside a method-call step.
    fn step(&mut self, s: &PathStep) -> PathStep {
        match s {
            PathStep::Member(m) => PathStep::Member(m.clone()),
            PathStep::MethodCall { name, args } => PathStep::MethodCall {
                name: name.clone(),
                args: args.iter().map(|a| self.expr(a)).collect(),
            },
        }
    }

    fn expr(&mut self, e: &Expr) -> Expr {
        match e {
            Expr::Lit(l) => Expr::Lit(l.clone()),
            Expr::Path(p) => Expr::Path(self.path(p)),
        }
    }
}

/// Normalize a query so every path expression is in one-dot form.
/// From-clause sources are flattened too; fresh variables are named
/// `auxN`, skipping any names already in use.
pub fn normalize(q: &SelectQuery) -> SelectQuery {
    let mut taken: Vec<String> = q.declared_vars().iter().map(|s| s.to_string()).collect();
    taken.extend(q.exists.iter().map(|e| e.var.clone()));
    let mut n = Normalizer {
        fresh: 0,
        taken,
        new_from: Vec::new(),
    };
    // From entries first (they bind the variables), preserving order and
    // inserting auxiliary hops immediately before the entry that uses
    // them.
    let mut from: Vec<FromEntry> = Vec::new();
    for e in &q.from {
        match e {
            FromEntry::In { var, source } => {
                let source = match source {
                    Source::Extent(c) => Source::Extent(c.clone()),
                    Source::Path(p) => Source::Path(n.path(p)),
                };
                from.append(&mut n.new_from);
                from.push(FromEntry::In {
                    var: var.clone(),
                    source,
                });
            }
            FromEntry::NotIn { var, source } => {
                let source = match source {
                    Source::Extent(c) => Source::Extent(c.clone()),
                    Source::Path(p) => Source::Path(n.path(p)),
                };
                from.append(&mut n.new_from);
                from.push(FromEntry::NotIn {
                    var: var.clone(),
                    source,
                });
            }
        }
    }
    let select: Vec<SelectItem> = q
        .select
        .iter()
        .map(|item| match item {
            SelectItem::Expr(e) => SelectItem::Expr(n.expr(e)),
            SelectItem::Constructor { kind, fields } => SelectItem::Constructor {
                kind: *kind,
                fields: fields
                    .iter()
                    .map(|f| SelectField {
                        label: f.label.clone(),
                        expr: n.expr(&f.expr),
                    })
                    .collect(),
            },
        })
        .collect();
    let mut where_: Vec<Predicate> = q
        .where_
        .iter()
        .map(|p| Predicate {
            lhs: n.expr(&p.lhs),
            op: p.op,
            rhs: n.expr(&p.rhs),
        })
        .collect();
    // Desugar existentials: under set semantics `exists v in src : C`
    // is an ordinary iteration plus conjoined conditions (Datalog body
    // variables are implicitly existentially quantified).
    for e in &q.exists {
        let source = match &e.source {
            Source::Extent(c) => Source::Extent(c.clone()),
            Source::Path(p) => Source::Path(n.path(p)),
        };
        from.append(&mut n.new_from);
        from.push(FromEntry::In {
            var: e.var.clone(),
            source,
        });
        for p in &e.conds {
            where_.push(Predicate {
                lhs: n.expr(&p.lhs),
                op: p.op,
                rhs: n.expr(&p.rhs),
            });
        }
    }
    from.append(&mut n.new_from);
    SelectQuery {
        distinct: q.distinct,
        select,
        from,
        where_,
        exists: Vec::new(),
    }
}

/// Whether a query is already in one-dot form.
pub fn is_normalized(q: &SelectQuery) -> bool {
    if !q.exists.is_empty() {
        return false;
    }
    let expr_ok = |e: &Expr| match e {
        Expr::Lit(_) => true,
        Expr::Path(p) => p.is_one_dot(),
    };
    q.from.iter().all(|e| match e {
        FromEntry::In {
            source: Source::Path(p),
            ..
        }
        | FromEntry::NotIn {
            source: Source::Path(p),
            ..
        } => p.is_one_dot(),
        _ => true,
    }) && q.select.iter().all(|i| match i {
        SelectItem::Expr(e) => expr_ok(e),
        SelectItem::Constructor { fields, .. } => fields.iter().all(|f| expr_ok(&f.expr)),
    }) && q.where_.iter().all(|p| expr_ok(&p.lhs) && expr_ok(&p.rhs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_oql;

    #[test]
    fn one_dot_query_is_unchanged() {
        let q = parse_oql(
            "select z.name from x in Student, y in x.takes, z in y.is_taught_by \
             where x.name = \"john\"",
        )
        .unwrap();
        assert!(is_normalized(&q));
        assert_eq!(normalize(&q), q);
    }

    #[test]
    fn where_path_is_flattened() {
        let q =
            parse_oql("select x.name from x in Student where x.takes.is_taught_by.name = \"a\"")
                .unwrap();
        assert!(!is_normalized(&q));
        let n = normalize(&q);
        assert!(is_normalized(&n));
        assert_eq!(n.from.len(), 3);
        assert_eq!(
            n.to_string(),
            "select x.name\nfrom x in Student,\n     aux1 in x.takes,\n     \
             aux2 in aux1.is_taught_by\nwhere aux2.name = \"a\""
        );
    }

    #[test]
    fn from_path_is_flattened() {
        let q = parse_oql("select z.name from x in Student, z in x.takes.is_taught_by").unwrap();
        let n = normalize(&q);
        assert!(is_normalized(&n));
        // aux hop inserted before the entry that uses it.
        assert_eq!(n.from.len(), 3);
        let FromEntry::In { var, .. } = &n.from[1] else {
            panic!()
        };
        assert_eq!(var, "aux1");
        let FromEntry::In { var, source } = &n.from[2] else {
            panic!()
        };
        assert_eq!(var, "z");
        assert_eq!(source.to_string(), "aux1.is_taught_by");
    }

    #[test]
    fn select_path_is_flattened() {
        let q = parse_oql("select x.address.city from x in Person").unwrap();
        let n = normalize(&q);
        assert!(is_normalized(&n));
        assert_eq!(n.from.len(), 2);
        let SelectItem::Expr(Expr::Path(p)) = &n.select[0] else {
            panic!()
        };
        assert_eq!(p.to_string(), "aux1.city");
    }

    #[test]
    fn constructor_fields_are_flattened() {
        let q = parse_oql("select list(x.takes.number, x.name) from x in Student").unwrap();
        let n = normalize(&q);
        assert!(is_normalized(&n));
        let SelectItem::Constructor { fields, .. } = &n.select[0] else {
            panic!()
        };
        let Expr::Path(p) = &fields[0].expr else {
            panic!()
        };
        assert_eq!(p.to_string(), "aux1.number");
    }

    #[test]
    fn method_call_args_are_flattened() {
        let q = parse_oql(
            "select x.name from x in Employee where x.taxes_withheld(x.address.city) < 10",
        )
        .unwrap();
        let n = normalize(&q);
        assert!(is_normalized(&n));
        let Predicate { lhs, .. } = &n.where_[0];
        let Expr::Path(p) = lhs else { panic!() };
        let PathStep::MethodCall { args, .. } = &p.steps[0] else {
            panic!()
        };
        let Expr::Path(arg) = &args[0] else { panic!() };
        assert_eq!(arg.to_string(), "aux1.city");
    }

    #[test]
    fn fresh_names_avoid_existing() {
        let q = parse_oql("select aux1.name from aux1 in Student where aux1.takes.number = \"s1\"")
            .unwrap();
        let n = normalize(&q);
        assert!(is_normalized(&n));
        let FromEntry::In { var, .. } = &n.from[1] else {
            panic!()
        };
        assert_eq!(var, "aux2");
    }

    #[test]
    fn exists_desugars_to_from_and_where() {
        let q = parse_oql(
            "select x.name from x in Student \
             where exists s in x.takes : (s.number = \"a\" and x.age > 20)",
        )
        .unwrap();
        assert!(!is_normalized(&q));
        let n = normalize(&q);
        assert!(is_normalized(&n));
        assert!(n.exists.is_empty());
        assert_eq!(n.from.len(), 2);
        assert_eq!(n.where_.len(), 2);
        assert_eq!(
            n.to_string(),
            "select x.name\nfrom x in Student,\n     s in x.takes\nwhere s.number = \"a\" and x.age > 20"
        );
    }

    #[test]
    fn exists_with_long_path_source() {
        let q = parse_oql(
            "select x.name from x in Student \
             where exists c in x.takes.is_section_of : c.number = \"m\"",
        )
        .unwrap();
        let n = normalize(&q);
        assert!(is_normalized(&n));
        // aux hop for x.takes, then c in aux.is_section_of.
        assert_eq!(n.from.len(), 3);
    }

    #[test]
    fn mid_path_method_call_becomes_from_source() {
        let q =
            parse_oql("select x.name from x in Employee where x.best_friend(1).age < 30").unwrap();
        let n = normalize(&q);
        assert!(is_normalized(&n));
        let FromEntry::In { source, .. } = &n.from[1] else {
            panic!()
        };
        assert_eq!(source.to_string(), "x.best_friend(1)");
    }
}
