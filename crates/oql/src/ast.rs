//! Abstract syntax for the supported OQL subset (select-from-where).
//!
//! Per Section 4.3 of the paper, the optimizer handles unnested
//! select-from-where queries; constructors (`struct`, `list`, `set`,
//! `bag`) in the `select` clause are *carried through* optimization
//! verbatim (they are extralogical and never translated to Datalog), and
//! the `from` clause supports the `x not in C` form that algorithm
//! DATALOG_to_OQL introduces for scope reduction.

use std::fmt;

/// A comparison operator in a `where` predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=` (`<>` also accepted)
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// A literal constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer literal.
    Int(i64),
    /// Real literal; `10%` parses as `0.10`.
    Real(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(v) => write!(f, "{v}"),
            Literal::Real(v) => {
                if *v == v.trunc() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Literal::Str(s) => write!(f, "{s:?}"),
            Literal::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// One step of a path expression.
#[derive(Debug, Clone, PartialEq)]
pub enum PathStep {
    /// `.member` — an attribute or relationship traversal.
    Member(String),
    /// `.method(args)` — a method application with user-provided
    /// arguments.
    MethodCall {
        /// The method name.
        name: String,
        /// The argument expressions.
        args: Vec<Expr>,
    },
}

impl PathStep {
    /// The member/method name of the step.
    pub fn name(&self) -> &str {
        match self {
            PathStep::Member(n) => n,
            PathStep::MethodCall { name, .. } => name,
        }
    }
}

impl fmt::Display for PathStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathStep::Member(n) => write!(f, ".{n}"),
            PathStep::MethodCall { name, args } => {
                write!(f, ".{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
        }
    }
}

/// A path expression `x.a.b` rooted at an iteration variable.
#[derive(Debug, Clone, PartialEq)]
pub struct PathExpr {
    /// The root variable.
    pub root: String,
    /// The traversal steps (possibly empty: a bare variable).
    pub steps: Vec<PathStep>,
}

impl PathExpr {
    /// A bare variable.
    pub fn var(root: impl Into<String>) -> Self {
        PathExpr {
            root: root.into(),
            steps: Vec::new(),
        }
    }

    /// A one-dot expression `root.member`.
    pub fn member(root: impl Into<String>, member: impl Into<String>) -> Self {
        PathExpr {
            root: root.into(),
            steps: vec![PathStep::Member(member.into())],
        }
    }

    /// Whether the expression is in one-dot form (at most one step).
    pub fn is_one_dot(&self) -> bool {
        self.steps.len() <= 1
    }
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.root)?;
        for s in &self.steps {
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

/// An expression: a path or a literal.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A path expression.
    Path(PathExpr),
    /// A literal constant.
    Lit(Literal),
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Path(p) => p.fmt(f),
            Expr::Lit(l) => l.fmt(f),
        }
    }
}

/// Constructor kinds allowed in the `select` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstructorKind {
    /// `struct(l1: e1, ...)`
    Struct,
    /// `list(e1, ...)`
    List,
    /// `set(e1, ...)`
    Set,
    /// `bag(e1, ...)`
    Bag,
}

impl fmt::Display for ConstructorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ConstructorKind::Struct => "struct",
            ConstructorKind::List => "list",
            ConstructorKind::Set => "set",
            ConstructorKind::Bag => "bag",
        })
    }
}

/// A labelled field inside a constructor (labels only with `struct`).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectField {
    /// Field label (struct constructors only).
    pub label: Option<String>,
    /// The field expression.
    pub expr: Expr,
}

impl fmt::Display for SelectField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(l) = &self.label {
            write!(f, "{l}: ")?;
        }
        self.expr.fmt(f)
    }
}

/// One item of the `select` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// A plain expression.
    Expr(Expr),
    /// A constructor application, carried through optimization verbatim.
    Constructor {
        /// The constructor kind.
        kind: ConstructorKind,
        /// The fields.
        fields: Vec<SelectField>,
    },
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Expr(e) => e.fmt(f),
            SelectItem::Constructor { kind, fields } => {
                write!(f, "{kind}(")?;
                for (i, fl) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    fl.fmt(f)?;
                }
                f.write_str(")")
            }
        }
    }
}

/// The source of a `from` iteration variable.
#[derive(Debug, Clone, PartialEq)]
pub enum Source {
    /// A class extent, e.g. `x in Student`.
    Extent(String),
    /// A path, e.g. `y in x.takes` (or a longer path, pre-normalization).
    Path(PathExpr),
}

impl fmt::Display for Source {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Source::Extent(c) => f.write_str(c),
            Source::Path(p) => p.fmt(f),
        }
    }
}

/// One `from` clause entry.
#[derive(Debug, Clone, PartialEq)]
pub enum FromEntry {
    /// `var in source`
    In {
        /// The iteration variable.
        var: String,
        /// The collection iterated over.
        source: Source,
    },
    /// `var not in Source` — produced by algorithm DATALOG_to_OQL:
    /// `x not in C` for scope reduction (Application 2), `y not in x.R`
    /// for negated relationship literals. Restricts an already-bound
    /// variable.
    NotIn {
        /// The (already bound) variable.
        var: String,
        /// The excluded collection (extent or one-dot path).
        source: Source,
    },
}

impl fmt::Display for FromEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FromEntry::In { var, source } => write!(f, "{var} in {source}"),
            FromEntry::NotIn { var, source } => write!(f, "{var} not in {source}"),
        }
    }
}

/// An existential subquery in the `where` clause:
/// `exists v in source : (p1 and p2 …)` — the extension Section 6 of the
/// paper lists as future work ("existentially quantified queries").
///
/// Under set semantics an existential is *conjunctive sugar*: the
/// normalizer desugars it into an ordinary `from` entry plus `where`
/// predicates (Datalog body variables are implicitly existential), so
/// the optimizer needs no new machinery.
#[derive(Debug, Clone, PartialEq)]
pub struct ExistsClause {
    /// The existentially quantified variable.
    pub var: String,
    /// The collection it ranges over.
    pub source: Source,
    /// The inner conjunction.
    pub conds: Vec<Predicate>,
}

impl fmt::Display for ExistsClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "exists {} in {} : (", self.var, self.source)?;
        for (i, p) in self.conds.iter().enumerate() {
            if i > 0 {
                f.write_str(" and ")?;
            }
            p.fmt(f)?;
        }
        f.write_str(")")
    }
}

/// A `where` predicate: a comparison between two expressions.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Left operand.
    pub lhs: Expr,
    /// Operator.
    pub op: CmpOp,
    /// Right operand.
    pub rhs: Expr,
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op, self.rhs)
    }
}

/// A select-from-where query.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectQuery {
    /// `select distinct`?
    pub distinct: bool,
    /// The select items.
    pub select: Vec<SelectItem>,
    /// The from entries, in order.
    pub from: Vec<FromEntry>,
    /// The where predicates (an implicit conjunction).
    pub where_: Vec<Predicate>,
    /// Existential subqueries conjoined with the where clause.
    pub exists: Vec<ExistsClause>,
}

impl SelectQuery {
    /// Iteration variables declared by the from clause, in order.
    pub fn declared_vars(&self) -> Vec<&str> {
        self.from
            .iter()
            .filter_map(|e| match e {
                FromEntry::In { var, .. } => Some(var.as_str()),
                FromEntry::NotIn { .. } => None,
            })
            .collect()
    }
}

impl fmt::Display for SelectQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("select ")?;
        if self.distinct {
            f.write_str("distinct ")?;
        }
        for (i, s) in self.select.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            s.fmt(f)?;
        }
        f.write_str("\nfrom ")?;
        for (i, e) in self.from.iter().enumerate() {
            if i > 0 {
                f.write_str(",\n     ")?;
            }
            e.fmt(f)?;
        }
        if !self.where_.is_empty() || !self.exists.is_empty() {
            f.write_str("\nwhere ")?;
            let mut first = true;
            for p in &self.where_ {
                if !first {
                    f.write_str(" and ")?;
                }
                p.fmt(f)?;
                first = false;
            }
            for e in &self.exists {
                if !first {
                    f.write_str(" and ")?;
                }
                e.fmt(f)?;
                first = false;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let p = PathExpr {
            root: "z".into(),
            steps: vec![
                PathStep::Member("address".into()),
                PathStep::Member("city".into()),
            ],
        };
        assert_eq!(p.to_string(), "z.address.city");
        assert!(!p.is_one_dot());
        assert!(PathExpr::member("x", "name").is_one_dot());
        assert!(PathExpr::var("x").is_one_dot());
    }

    #[test]
    fn method_call_display() {
        let p = PathExpr {
            root: "z".into(),
            steps: vec![PathStep::MethodCall {
                name: "taxes_withheld".into(),
                args: vec![Expr::Lit(Literal::Real(0.1))],
            }],
        };
        assert_eq!(p.to_string(), "z.taxes_withheld(0.1)");
    }

    #[test]
    fn query_display() {
        let q = SelectQuery {
            distinct: false,
            select: vec![SelectItem::Expr(Expr::Path(PathExpr::member("x", "name")))],
            from: vec![
                FromEntry::In {
                    var: "x".into(),
                    source: Source::Extent("Person".into()),
                },
                FromEntry::NotIn {
                    var: "x".into(),
                    source: Source::Extent("Faculty".into()),
                },
            ],
            where_: vec![Predicate {
                lhs: Expr::Path(PathExpr::member("x", "age")),
                op: CmpOp::Lt,
                rhs: Expr::Lit(Literal::Int(30)),
            }],
            exists: vec![],
        };
        assert_eq!(
            q.to_string(),
            "select x.name\nfrom x in Person,\n     x not in Faculty\nwhere x.age < 30"
        );
        assert_eq!(q.declared_vars(), vec!["x"]);
    }
}
