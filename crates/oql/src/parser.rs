//! Lexer and recursive-descent parser for the OQL subset.
//!
//! Accepts the paper's layout, where `from` entries may be separated by
//! commas *or* just whitespace/newlines:
//!
//! ```text
//! select z.name, w.city
//! from x in Student
//!      y in x.takes
//!      z in y.is_taught_by
//!      w in z.address
//! where x.name = "john" and z.taxes_withheld(10%) < 1000
//! ```

use crate::ast::*;
use crate::error::{OqlError, Result};

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Real(f64),
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Colon,
    Op(CmpOp),
    KwSelect,
    KwDistinct,
    KwFrom,
    KwWhere,
    KwIn,
    KwNot,
    KwAnd,
    KwTrue,
    KwFalse,
    KwStruct,
    KwList,
    KwSet,
    KwBag,
    KwExists,
    KwUnion,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> OqlError {
        OqlError::Parse {
            message: message.into(),
            line: self.line,
            column: self.col,
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn tokens(mut self) -> Result<Vec<Spanned>> {
        let mut out = Vec::new();
        loop {
            loop {
                match self.peek() {
                    Some(c) if c.is_ascii_whitespace() => {
                        self.bump();
                    }
                    Some(b'-') if self.peek2() == Some(b'-') => {
                        while let Some(c) = self.peek() {
                            if c == b'\n' {
                                break;
                            }
                            self.bump();
                        }
                    }
                    _ => break,
                }
            }
            let (line, col) = (self.line, self.col);
            let Some(c) = self.peek() else { break };
            let tok = match c {
                b'(' => {
                    self.bump();
                    Tok::LParen
                }
                b')' => {
                    self.bump();
                    Tok::RParen
                }
                b',' => {
                    self.bump();
                    Tok::Comma
                }
                b'.' => {
                    self.bump();
                    Tok::Dot
                }
                b':' => {
                    self.bump();
                    Tok::Colon
                }
                b'=' => {
                    self.bump();
                    Tok::Op(CmpOp::Eq)
                }
                b'<' => {
                    self.bump();
                    match self.peek() {
                        Some(b'=') => {
                            self.bump();
                            Tok::Op(CmpOp::Le)
                        }
                        Some(b'>') => {
                            self.bump();
                            Tok::Op(CmpOp::Ne)
                        }
                        _ => Tok::Op(CmpOp::Lt),
                    }
                }
                b'>' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::Op(CmpOp::Ge)
                    } else {
                        Tok::Op(CmpOp::Gt)
                    }
                }
                b'!' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::Op(CmpOp::Ne)
                    } else {
                        return Err(self.err("expected `=` after `!`"));
                    }
                }
                b'"' | b'\'' => {
                    let quote = c;
                    self.bump();
                    let mut s = String::new();
                    loop {
                        match self.bump() {
                            Some(q) if q == quote => break,
                            Some(b'\\') => match self.bump() {
                                Some(b'n') => s.push('\n'),
                                Some(b't') => s.push('\t'),
                                Some(q) if q == quote => s.push(q as char),
                                Some(b'\\') => s.push('\\'),
                                _ => return Err(self.err("invalid escape in string")),
                            },
                            Some(ch) => s.push(ch as char),
                            None => return Err(self.err("unterminated string literal")),
                        }
                    }
                    Tok::Str(s)
                }
                c if c.is_ascii_digit() => {
                    let mut text = String::new();
                    let mut is_real = false;
                    while let Some(d) = self.peek() {
                        if d.is_ascii_digit() {
                            text.push(d as char);
                            self.bump();
                        } else if d == b'.'
                            && !is_real
                            && self.peek2().is_some_and(|e| e.is_ascii_digit())
                        {
                            is_real = true;
                            text.push('.');
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    if self.peek() == Some(b'%') {
                        self.bump();
                        let v: f64 = text
                            .parse()
                            .map_err(|_| self.err(format!("invalid number `{text}`")))?;
                        Tok::Real(v / 100.0)
                    } else if is_real {
                        Tok::Real(
                            text.parse()
                                .map_err(|_| self.err(format!("invalid number `{text}`")))?,
                        )
                    } else {
                        Tok::Int(
                            text.parse()
                                .map_err(|_| self.err(format!("invalid integer `{text}`")))?,
                        )
                    }
                }
                c if c.is_ascii_alphabetic() || c == b'_' => {
                    let mut s = String::new();
                    while let Some(d) = self.peek() {
                        if d.is_ascii_alphanumeric() || d == b'_' {
                            s.push(d as char);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    match s.to_ascii_lowercase().as_str() {
                        "select" => Tok::KwSelect,
                        "distinct" => Tok::KwDistinct,
                        "from" => Tok::KwFrom,
                        "where" => Tok::KwWhere,
                        "in" => Tok::KwIn,
                        "not" => Tok::KwNot,
                        "and" => Tok::KwAnd,
                        "true" => Tok::KwTrue,
                        "false" => Tok::KwFalse,
                        "struct" => Tok::KwStruct,
                        "list" => Tok::KwList,
                        "set" => Tok::KwSet,
                        "bag" => Tok::KwBag,
                        "exists" => Tok::KwExists,
                        "union" => Tok::KwUnion,
                        "or" => {
                            return Err(self.err(
                                "`or` is outside the supported conjunctive subset (Section 4.3)",
                            ))
                        }
                        _ => Tok::Ident(s),
                    }
                }
                other => return Err(self.err(format!("unexpected character `{}`", other as char))),
            };
            out.push(Spanned { tok, line, col });
        }
        Ok(out)
    }
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn err_at(&self, message: impl Into<String>) -> OqlError {
        let (line, column) = self
            .toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|s| (s.line, s.col))
            .unwrap_or((1, 1));
        OqlError::Parse {
            message: message.into(),
            line,
            column,
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn peek_at(&self, off: usize) -> Option<&Tok> {
        self.toks.get(self.pos + off).map(|s| &s.tok)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<()> {
        if self.peek() == Some(t) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err_at(format!("expected {what}")))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            _ => Err(self.err_at(format!("expected {what}"))),
        }
    }

    fn literal(&mut self) -> Result<Literal> {
        match self.bump() {
            Some(Tok::Int(v)) => Ok(Literal::Int(v)),
            Some(Tok::Real(v)) => Ok(Literal::Real(v)),
            Some(Tok::Str(s)) => Ok(Literal::Str(s)),
            Some(Tok::KwTrue) => Ok(Literal::Bool(true)),
            Some(Tok::KwFalse) => Ok(Literal::Bool(false)),
            _ => Err(self.err_at("expected a literal")),
        }
    }

    fn path_expr(&mut self) -> Result<PathExpr> {
        let root = self.ident("an identifier")?;
        let mut steps = Vec::new();
        while self.peek() == Some(&Tok::Dot) {
            self.pos += 1;
            let name = self.ident("a member name after `.`")?;
            if self.peek() == Some(&Tok::LParen) {
                self.pos += 1;
                let mut args = Vec::new();
                if self.peek() != Some(&Tok::RParen) {
                    loop {
                        args.push(self.expr()?);
                        if self.peek() == Some(&Tok::Comma) {
                            self.pos += 1;
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RParen, "`)`")?;
                steps.push(PathStep::MethodCall { name, args });
            } else {
                steps.push(PathStep::Member(name));
            }
        }
        Ok(PathExpr { root, steps })
    }

    fn expr(&mut self) -> Result<Expr> {
        match self.peek() {
            Some(Tok::Ident(_)) => Ok(Expr::Path(self.path_expr()?)),
            _ => Ok(Expr::Lit(self.literal()?)),
        }
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        let kind = match self.peek() {
            Some(Tok::KwStruct) => Some(ConstructorKind::Struct),
            Some(Tok::KwList) => Some(ConstructorKind::List),
            Some(Tok::KwSet) => Some(ConstructorKind::Set),
            Some(Tok::KwBag) => Some(ConstructorKind::Bag),
            _ => None,
        };
        let Some(kind) = kind else {
            return Ok(SelectItem::Expr(self.expr()?));
        };
        self.pos += 1;
        self.expect(&Tok::LParen, "`(`")?;
        let mut fields = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                // Optional `label:` (struct only).
                let label = if matches!(self.peek(), Some(Tok::Ident(_)))
                    && self.peek_at(1) == Some(&Tok::Colon)
                {
                    let l = self.ident("a label")?;
                    self.pos += 1; // colon
                    Some(l)
                } else {
                    None
                };
                if label.is_some() && kind != ConstructorKind::Struct {
                    return Err(self.err_at("labels are only allowed in struct constructors"));
                }
                let expr = self.expr()?;
                fields.push(SelectField { label, expr });
                if self.peek() == Some(&Tok::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen, "`)`")?;
        Ok(SelectItem::Constructor { kind, fields })
    }

    #[allow(clippy::wrong_self_convention)] // parses a `from` clause entry
    fn from_entry(&mut self) -> Result<FromEntry> {
        let var = self.ident("an iteration variable")?;
        match self.peek() {
            Some(Tok::KwIn) => {
                self.pos += 1;
                // `Extent` (bare identifier) or a path rooted at a var.
                let p = self.path_expr()?;
                let source = if p.steps.is_empty() {
                    Source::Extent(p.root)
                } else {
                    Source::Path(p)
                };
                Ok(FromEntry::In { var, source })
            }
            Some(Tok::KwNot) => {
                self.pos += 1;
                self.expect(&Tok::KwIn, "`in` after `not`")?;
                let p = self.path_expr()?;
                let source = if p.steps.is_empty() {
                    Source::Extent(p.root)
                } else {
                    Source::Path(p)
                };
                Ok(FromEntry::NotIn { var, source })
            }
            _ => Err(self.err_at("expected `in` or `not in`")),
        }
    }

    fn predicate(&mut self) -> Result<Predicate> {
        let lhs = self.expr()?;
        let Some(Tok::Op(op)) = self.bump() else {
            return Err(self.err_at("expected a comparison operator"));
        };
        let rhs = self.expr()?;
        Ok(Predicate { lhs, op, rhs })
    }

    /// `exists v in source : pred` or `exists v in source : (p1 and p2)`.
    fn exists_clause(&mut self) -> Result<ExistsClause> {
        self.expect(&Tok::KwExists, "`exists`")?;
        let var = self.ident("an iteration variable")?;
        self.expect(&Tok::KwIn, "`in`")?;
        let p = self.path_expr()?;
        let source = if p.steps.is_empty() {
            Source::Extent(p.root)
        } else {
            Source::Path(p)
        };
        self.expect(&Tok::Colon, "`:` after the exists range")?;
        let mut conds = Vec::new();
        if self.peek() == Some(&Tok::LParen) {
            self.pos += 1;
            conds.push(self.predicate()?);
            while self.peek() == Some(&Tok::KwAnd) {
                self.pos += 1;
                conds.push(self.predicate()?);
            }
            self.expect(&Tok::RParen, "`)`")?;
        } else {
            conds.push(self.predicate()?);
        }
        Ok(ExistsClause { var, source, conds })
    }

    fn query(&mut self) -> Result<SelectQuery> {
        let q = self.query_until_union()?;
        if !self.at_end() {
            return Err(self.err_at("unexpected trailing input"));
        }
        Ok(q)
    }

    fn query_until_union(&mut self) -> Result<SelectQuery> {
        // Identical to query() but without the trailing-input check.
        self.expect(&Tok::KwSelect, "`select`")?;
        let distinct = if self.peek() == Some(&Tok::KwDistinct) {
            self.pos += 1;
            true
        } else {
            false
        };
        let mut select = vec![self.select_item()?];
        while self.peek() == Some(&Tok::Comma) {
            self.pos += 1;
            select.push(self.select_item()?);
        }
        self.expect(&Tok::KwFrom, "`from`")?;
        let mut from = vec![self.from_entry()?];
        loop {
            match self.peek() {
                Some(Tok::Comma) => {
                    self.pos += 1;
                    from.push(self.from_entry()?);
                }
                Some(Tok::Ident(_)) => {
                    from.push(self.from_entry()?);
                }
                _ => break,
            }
        }
        let mut where_ = Vec::new();
        let mut exists = Vec::new();
        if self.peek() == Some(&Tok::KwWhere) {
            self.pos += 1;
            loop {
                if self.peek() == Some(&Tok::KwExists) {
                    exists.push(self.exists_clause()?);
                } else {
                    where_.push(self.predicate()?);
                }
                if self.peek() == Some(&Tok::KwAnd) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        Ok(SelectQuery {
            distinct,
            select,
            from,
            where_,
            exists,
        })
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }
}

/// Parse an OQL select-from-where query.
pub fn parse_oql(src: &str) -> Result<SelectQuery> {
    let toks = Lexer::new(src).tokens()?;
    let mut p = Parser { toks, pos: 0 };
    let q = p.query()?;
    validate_scopes(&q)?;
    Ok(q)
}

/// Parse a top-level `union` of select-from-where queries (Section 4.3
/// notes set expressions "can be represented in DATALOG"; each branch is
/// optimized independently and contradictory branches are pruned).
/// A single query parses as a one-branch union.
pub fn parse_oql_union(src: &str) -> Result<Vec<SelectQuery>> {
    let toks = Lexer::new(src).tokens()?;
    let mut p = Parser { toks, pos: 0 };
    let mut out = vec![p.query_until_union()?];
    while p.peek() == Some(&Tok::KwUnion) {
        p.pos += 1;
        out.push(p.query_until_union()?);
    }
    if !p.at_end() {
        return Err(p.err_at("unexpected trailing input"));
    }
    for q in &out {
        validate_scopes(q)?;
    }
    Ok(out)
}

/// Check from-clause scoping: every path root refers to a declared
/// variable, declared before use; no duplicate declarations; `not in`
/// variables must already be bound.
fn validate_scopes(q: &SelectQuery) -> Result<()> {
    let mut bound: Vec<&str> = Vec::new();
    for e in &q.from {
        match e {
            FromEntry::In { var, source } => {
                if let Source::Path(p) = source {
                    if !bound.contains(&p.root.as_str()) {
                        return Err(OqlError::UnknownVariable {
                            name: p.root.clone(),
                        });
                    }
                }
                if bound.contains(&var.as_str()) {
                    return Err(OqlError::DuplicateVariable { name: var.clone() });
                }
                bound.push(var);
            }
            FromEntry::NotIn { var, .. } => {
                if !bound.contains(&var.as_str()) {
                    return Err(OqlError::UnknownVariable { name: var.clone() });
                }
            }
        }
    }
    for e in &q.exists {
        match &e.source {
            Source::Path(p) if !bound.contains(&p.root.as_str()) => {
                return Err(OqlError::UnknownVariable {
                    name: p.root.clone(),
                });
            }
            _ => {}
        }
        if bound.contains(&e.var.as_str()) {
            return Err(OqlError::DuplicateVariable {
                name: e.var.clone(),
            });
        }
        bound.push(&e.var);
    }
    let check_expr = |e: &Expr| -> Result<()> {
        if let Expr::Path(p) = e {
            if !bound.contains(&p.root.as_str()) {
                return Err(OqlError::UnknownVariable {
                    name: p.root.clone(),
                });
            }
        }
        Ok(())
    };
    for item in &q.select {
        match item {
            SelectItem::Expr(e) => check_expr(e)?,
            SelectItem::Constructor { fields, .. } => {
                for f in fields {
                    check_expr(&f.expr)?;
                }
            }
        }
    }
    for p in &q.where_ {
        check_expr(&p.lhs)?;
        check_expr(&p.rhs)?;
    }
    for e in &q.exists {
        for p in &e.conds {
            check_expr(&p.lhs)?;
            check_expr(&p.rhs)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The query of Example 2 in the paper (Section 4.3).
    pub const EXAMPLE2: &str = r#"
        select z.name, w.city
        from x in Student
             y in x.takes
             z in y.is_taught_by
             w in z.address
        where x.name = "john" and z.taxes_withheld(10%) < 1000
    "#;

    #[test]
    fn parse_example2() {
        let q = parse_oql(EXAMPLE2).unwrap();
        assert_eq!(q.select.len(), 2);
        assert_eq!(q.from.len(), 4);
        assert_eq!(q.where_.len(), 2);
        assert_eq!(q.declared_vars(), vec!["x", "y", "z", "w"]);
        // Method call with a percentage argument.
        let Predicate { lhs, .. } = &q.where_[1];
        let Expr::Path(p) = lhs else { panic!() };
        let PathStep::MethodCall { name, args } = &p.steps[0] else {
            panic!()
        };
        assert_eq!(name, "taxes_withheld");
        assert_eq!(args, &vec![Expr::Lit(Literal::Real(0.10))]);
    }

    #[test]
    fn parse_comma_separated_from() {
        let q = parse_oql("select x.name from x in Person, y in x.takes where x.age < 30").unwrap();
        assert_eq!(q.from.len(), 2);
    }

    #[test]
    fn parse_application2_output_shape() {
        let q =
            parse_oql("select x.name from x in Person x not in Faculty where x.age < 30").unwrap();
        assert_eq!(q.from.len(), 2);
        assert!(
            matches!(&q.from[1], FromEntry::NotIn { var, source: Source::Extent(c) }
            if var == "x" && c == "Faculty")
        );
    }

    #[test]
    fn parse_list_constructor() {
        let q = parse_oql("select list(x.student_id, t.employee_id) from x in Student, t in TA")
            .unwrap();
        let SelectItem::Constructor { kind, fields } = &q.select[0] else {
            panic!()
        };
        assert_eq!(*kind, ConstructorKind::List);
        assert_eq!(fields.len(), 2);
    }

    #[test]
    fn parse_struct_constructor_with_labels() {
        let q = parse_oql("select struct(n: x.name, c: x.address.city) from x in Person").unwrap();
        let SelectItem::Constructor { kind, fields } = &q.select[0] else {
            panic!()
        };
        assert_eq!(*kind, ConstructorKind::Struct);
        assert_eq!(fields[0].label.as_deref(), Some("n"));
    }

    #[test]
    fn labels_rejected_outside_struct() {
        assert!(parse_oql("select list(n: x.name) from x in Person").is_err());
    }

    #[test]
    fn long_path_in_where() {
        let q =
            parse_oql("select x.name from x in Student where x.takes.is_taught_by.name = \"a\"")
                .unwrap();
        let Expr::Path(p) = &q.where_[0].lhs else {
            panic!()
        };
        assert_eq!(p.steps.len(), 3);
        assert!(!p.is_one_dot());
    }

    #[test]
    fn undeclared_variable_rejected() {
        assert!(matches!(
            parse_oql("select z.name from x in Person"),
            Err(OqlError::UnknownVariable { name }) if name == "z"
        ));
        assert!(matches!(
            parse_oql("select x.name from y in x.takes"),
            Err(OqlError::UnknownVariable { .. })
        ));
        assert!(matches!(
            parse_oql("select x.name from x in Person x in Faculty"),
            Err(OqlError::DuplicateVariable { .. })
        ));
        assert!(matches!(
            parse_oql("select x.name from x in Person z not in Faculty"),
            Err(OqlError::UnknownVariable { .. })
        ));
    }

    #[test]
    fn or_is_rejected_as_unsupported() {
        let err =
            parse_oql("select x.name from x in Person where x.age < 30 or x.age > 60").unwrap_err();
        assert!(matches!(err, OqlError::Parse { .. }));
    }

    #[test]
    fn distinct_flag() {
        let q = parse_oql("select distinct x.name from x in Person").unwrap();
        assert!(q.distinct);
    }

    #[test]
    fn ne_operator_spellings() {
        for src in [
            "select x.name from x in Person where x.age != 30",
            "select x.name from x in Person where x.age <> 30",
        ] {
            let q = parse_oql(src).unwrap();
            assert_eq!(q.where_[0].op, CmpOp::Ne);
        }
    }

    #[test]
    fn display_roundtrip() {
        let srcs = [
            EXAMPLE2,
            "select x.name from x in Person x not in Faculty where x.age < 30",
            "select list(x.student_id, t.employee_id) from x in Student, t in TA",
        ];
        for s in srcs {
            let q = parse_oql(s).unwrap();
            let q2 = parse_oql(&q.to_string()).unwrap();
            assert_eq!(q, q2, "roundtrip failed for: {s}");
        }
    }

    #[test]
    fn exists_single_predicate() {
        let q = parse_oql(
            "select x.name from x in Student where exists s in x.takes : s.number = \"a\"",
        )
        .unwrap();
        assert_eq!(q.exists.len(), 1);
        assert_eq!(q.exists[0].var, "s");
        assert_eq!(q.exists[0].conds.len(), 1);
        assert_eq!(
            q.to_string(),
            "select x.name\nfrom x in Student\nwhere exists s in x.takes : (s.number = \"a\")"
        );
    }

    #[test]
    fn exists_parenthesized_conjunction() {
        let q = parse_oql(
            "select x.name from x in Student \
             where x.age < 30 and exists s in x.takes : (s.number = \"a\" and x.age > 20)",
        )
        .unwrap();
        assert_eq!(q.where_.len(), 1);
        assert_eq!(q.exists[0].conds.len(), 2);
    }

    #[test]
    fn exists_over_extent() {
        let q =
            parse_oql("select x.name from x in Person where exists f in Faculty : f.name = x.name")
                .unwrap();
        assert!(matches!(&q.exists[0].source, Source::Extent(c) if c == "Faculty"));
    }

    #[test]
    fn exists_scoping_checked() {
        assert!(matches!(
            parse_oql(
                "select x.name from x in Person where exists s in z.takes : s.number = \"a\""
            ),
            Err(OqlError::UnknownVariable { .. })
        ));
        assert!(matches!(
            parse_oql("select x.name from x in Person where exists x in Faculty : x.age > 1"),
            Err(OqlError::DuplicateVariable { .. })
        ));
        // Inner condition may reference outer variables.
        assert!(parse_oql(
            "select x.name from x in Student where exists s in x.takes : s.number != x.name"
        )
        .is_ok());
    }

    #[test]
    fn union_of_branches() {
        let branches = parse_oql_union(
            "select x.name from x in Student where x.age < 20 \
             union select x.name from x in Faculty where x.age > 60",
        )
        .unwrap();
        assert_eq!(branches.len(), 2);
        assert_eq!(branches[0].from.len(), 1);
        assert_eq!(branches[1].where_[0].to_string(), "x.age > 60");
        // A single query is a one-branch union.
        assert_eq!(
            parse_oql_union("select x from x in Person").unwrap().len(),
            1
        );
        // Branches are scope-checked independently.
        assert!(
            parse_oql_union("select x from x in Person union select y.name from x in Person")
                .is_err()
        );
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_oql("select x.name from x in Person garbage garbage").is_err());
    }
}
