#![warn(missing_docs)]

//! # sqo-oql
//!
//! A parser, AST, pretty-printer and path-expression normalizer for the
//! subset of ODMG-93 **OQL** handled by *"Semantic Query Optimization for
//! Object Databases"* (Grant, Gryz, Minker, Raschid — ICDE 1997):
//! unnested select-from-where queries with path expressions, method
//! application, `struct`/`list`/`set`/`bag` constructors in the select
//! clause, and the `x not in C` from-entry produced by scope reduction.

pub mod ast;
pub mod error;
pub mod normalize;
pub mod parser;

pub use ast::{
    CmpOp, ConstructorKind, ExistsClause, Expr, FromEntry, Literal, PathExpr, PathStep, Predicate,
    SelectField, SelectItem, SelectQuery, Source,
};
pub use error::{OqlError, Result};
pub use normalize::{is_normalized, normalize};
pub use parser::{parse_oql, parse_oql_union};
