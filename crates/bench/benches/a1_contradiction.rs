//! A1 — Application 1: contradiction detection.
//!
//! Series reported: time for SQO to *refute* the query (independent of
//! database size) vs time to *evaluate* the original query on object
//! bases of growing size. The paper's claim: a refuted query "need not
//! be evaluated", so its cost is the (constant) optimization overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqo_bench::contradiction_scenario;
use std::hint::black_box;

fn bench_detection_vs_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1/contradiction");
    group.sample_size(10);
    for students in [100usize, 400, 1600] {
        let (mut opt, oql, db) = contradiction_scenario(students);
        // SQO path: detect the contradiction, never touch the database.
        group.bench_with_input(
            BenchmarkId::new("sqo_detect", students),
            &students,
            |b, _| {
                b.iter(|| {
                    let report = opt.optimize(oql).unwrap();
                    assert!(report.is_contradiction());
                    black_box(report)
                })
            },
        );
        // Baseline: translate and evaluate the original query anyway
        // (it returns zero rows, but only after scanning).
        let translated = {
            let plain = sqo_core::SemanticOptimizer::university();
            plain.translate(&sqo_oql::parse_oql(oql).unwrap()).unwrap()
        };
        group.bench_with_input(
            BenchmarkId::new("evaluate_anyway", students),
            &students,
            |b, _| {
                b.iter(|| {
                    let (rows, cost) = sqo_objdb::execute(&db, &translated.query).unwrap();
                    assert!(rows.is_empty(), "IC3 holds on the data");
                    black_box(cost)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_detection_vs_evaluation);
criterion_main!(benches);
