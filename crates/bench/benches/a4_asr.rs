//! A4 — Application 4: access support relations.
//!
//! Series reported: evaluation time of the 4-hop path query vs the
//! folded query probing the materialized ASR, as the object base grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqo_bench::asr_scenario;
use sqo_objdb::execute;
use std::hint::black_box;

fn bench_asr_fold(c: &mut Criterion) {
    let mut group = c.benchmark_group("a4/asr_fold");
    group.sample_size(15);
    for (students, courses) in [(200usize, 20usize), (800, 60), (3200, 200)] {
        let scenario = asr_scenario(students, courses);
        let _ = execute(&scenario.db, &scenario.original).unwrap(); // warm cache
        let label = format!("s={students}_c={courses}");
        group.bench_with_input(BenchmarkId::new("path_chain", &label), &scenario, |b, s| {
            b.iter(|| black_box(execute(&s.db, &s.original).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("asr_folded", &label), &scenario, |b, s| {
            b.iter(|| black_box(execute(&s.db, &s.optimized).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_asr_fold);
criterion_main!(benches);
