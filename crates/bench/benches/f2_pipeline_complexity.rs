//! F2 — Figure 2 + Section 4.1: the complexity claims of the pipeline.
//!
//! * Step 1 (schema translation) is linear in schema size;
//! * Steps 2 and 4 (query translation / change mapping) are linear in
//!   query size;
//! * Step 3 (SQO proper) grows with the number of applicable ICs and
//!   "will dominate the entire optimization process".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqo_bench::{optimizer_with_n_ics, synthetic_schema};
use sqo_core::SemanticOptimizer;
use sqo_translate::translate_schema;
use std::hint::black_box;

fn bench_step1_linear_in_classes(c: &mut Criterion) {
    let mut group = c.benchmark_group("f2/step1_schema_translation");
    for n in [8usize, 16, 32, 64, 128] {
        let schema = synthetic_schema(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &schema, |b, s| {
            b.iter(|| black_box(translate_schema(s)))
        });
    }
    group.finish();
}

fn query_of_hops(hops: usize) -> String {
    // A path query of the requested length over the university schema:
    // alternate section -> course -> section hops.
    let mut from = String::from("x0 in Student\n x1 in x0.takes");
    let mut i = 1;
    while i < hops {
        from.push_str(&format!("\n x{} in x{}.is_section_of", i + 1, i));
        i += 1;
        if i >= hops {
            break;
        }
        from.push_str(&format!("\n x{} in x{}.has_sections", i + 1, i));
        i += 1;
    }
    format!("select x0.name from {from} where x0.age > 20")
}

fn bench_step2_linear_in_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("f2/step2_query_translation");
    let opt = SemanticOptimizer::university();
    for hops in [1usize, 3, 5, 9, 13] {
        let src = query_of_hops(hops);
        let parsed = sqo_oql::parse_oql(&src).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(hops), &parsed, |b, q| {
            b.iter(|| black_box(opt.translate(q).unwrap()))
        });
    }
    group.finish();
}

fn bench_step3_growth_in_ics(c: &mut Criterion) {
    let mut group = c.benchmark_group("f2/step3_sqo_vs_applicable_ics");
    group.sample_size(10);
    for n in [0usize, 2, 4, 8, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            // Compilation happens once; the measured loop is Step 3 on a
            // freshly cloned optimizer state per iteration batch.
            let (mut opt, q) = optimizer_with_n_ics(n);
            opt.residue_count(); // force compilation outside the loop
            b.iter(|| black_box(opt.optimize(q).unwrap()))
        });
    }
    group.finish();
}

fn bench_step4_linear_in_delta(c: &mut Criterion) {
    // Step 4 maps literal deltas back to OQL; measure with growing
    // restriction deltas.
    let mut group = c.benchmark_group("f2/step4_change_mapping");
    for n in [1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let opt = SemanticOptimizer::university();
            let q = sqo_oql::parse_oql("select x.name from x in Faculty").unwrap();
            let t = opt.translate(&q).unwrap();
            let delta = sqo_core::Delta {
                added: (0..n)
                    .map(|i| {
                        sqo_datalog::Literal::cmp(
                            sqo_datalog::Term::var("Name"),
                            sqo_datalog::CmpOp::Ne,
                            sqo_datalog::Term::str(format!("x{i}")),
                        )
                    })
                    .collect(),
                removed: vec![],
            };
            b.iter(|| {
                black_box(
                    sqo_translate::apply_delta(&t.normalized, &t.map, opt.catalog(), &delta)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_step1_linear_in_classes,
        bench_step2_linear_in_query,
        bench_step3_growth_in_ics,
        bench_step4_linear_in_delta
);
criterion_main!(benches);
