//! E1 — Example 1 (Section 2): residue compilation and application on
//! the relational warm-up example.
//!
//! Series reported: semantic compilation time vs number of ICs; residue
//! application (query transformation) time; contradiction detection
//! time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqo_bench::optimizer_with_n_ics;
use sqo_datalog::parser::{parse_constraint, parse_query};
use sqo_datalog::residue::ResidueSet;
use sqo_datalog::search::{optimize, SearchConfig};
use sqo_datalog::transform::TransformContext;
use std::collections::BTreeMap;
use std::hint::black_box;

fn example1_ic() -> sqo_datalog::Constraint {
    parse_constraint("ic: Age > 30 <- faculty(Sec, Fac, Age).").unwrap()
}

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1/semantic_compilation");
    for n in [1usize, 4, 16, 64] {
        let ics: Vec<_> = (0..n)
            .map(|i| {
                parse_constraint(&format!("ic: Age > {} <- faculty{}(S, F, Age).", 30 + i, i))
                    .unwrap()
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &ics, |b, ics| {
            b.iter(|| black_box(ResidueSet::compile(ics.clone())))
        });
    }
    group.finish();
}

fn bench_apply(c: &mut Criterion) {
    let ctx = TransformContext::new(
        ResidueSet::compile(vec![example1_ic()]),
        vec![],
        BTreeMap::new(),
    );
    // Non-contradictory query: the residue attaches Age > 30.
    let attach =
        parse_query("Q(Name) <- student(St, Name), takes_section(St, Sec), faculty(Sec, F, Age)")
            .unwrap();
    // Contradictory query (the paper's Example 1).
    let refute = parse_query(
        "Q(Name) <- student(St, Name), takes_section(St, Sec), \
         faculty(Sec, F, Age), Age < 18",
    )
    .unwrap();
    let cfg = SearchConfig::default();
    c.bench_function("e1/attach_restriction", |b| {
        b.iter(|| black_box(optimize(&attach, &ctx, &cfg)))
    });
    c.bench_function("e1/detect_contradiction", |b| {
        b.iter(|| black_box(optimize(&refute, &ctx, &cfg)))
    });
}

fn bench_residues_against_schema(c: &mut Criterion) {
    // Compilation of the whole university schema's ICs (with derivation),
    // the amortized Step 1+compilation cost the paper says "would be
    // amortized over a large class of queries".
    c.bench_function("e1/compile_university_schema", |b| {
        b.iter(|| {
            let (mut opt, _q) = optimizer_with_n_ics(0);
            black_box(opt.residue_count())
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_compile, bench_apply, bench_residues_against_schema
);
criterion_main!(benches);
