//! A3 — Application 3: key-based join reduction.
//!
//! Series reported: evaluation time of the original query (join TAs and
//! students on the professors' *names*, which requires fetching Faculty
//! objects) vs the rewritten query (compare OIDs: `z = w`) as the number
//! of enrolled students grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqo_bench::key_join_scenario;
use sqo_objdb::execute;
use std::hint::black_box;

fn bench_key_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("a3/key_join");
    group.sample_size(10);
    for students in [40usize, 80, 160] {
        let scenario = key_join_scenario(students);
        let _ = execute(&scenario.db, &scenario.original).unwrap(); // warm cache
        group.bench_with_input(
            BenchmarkId::new("name_join_original", students),
            &scenario,
            |b, s| b.iter(|| black_box(execute(&s.db, &s.original).unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("oid_compare_rewrite", students),
            &scenario,
            |b, s| b.iter(|| black_box(execute(&s.db, &s.optimized).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_key_join);
criterion_main!(benches);
