//! Ablations for the design choices DESIGN.md calls out:
//!
//! * IC derivation (inclusion saturation + strengthening +
//!   contrapositives) on/off — scope reduction only exists with it;
//! * join-introduction policy (Off / ViewRelevant / All) — search cost;
//! * chase budget — removal-soundness checking cost;
//! * the equality-propagation evaluation strategy (measured indirectly:
//!   the A3 original-vs-rewrite gap collapses without it, see git
//!   history; here we measure the rewrite with the production engine).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqo_core::{CompileOptions, SearchConfig, SemanticOptimizer};
use sqo_datalog::search::JoinIntro;
use std::hint::black_box;

fn bench_derivation_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/ic_derivation");
    group.sample_size(20);
    for (label, derive) in [("on", true), ("off", false)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &derive, |b, &derive| {
            let mut opt = SemanticOptimizer::university();
            opt.set_compile_options(CompileOptions {
                derive_strengthened: derive,
                derive_contrapositives: derive,
            });
            opt.add_constraint_text("ic IC4: Age >= 30 <- faculty(X, N, Age, S, R, Ad).")
                .unwrap();
            opt.residue_count(); // compile outside the measured loop
            b.iter(|| {
                black_box(
                    opt.optimize("select x.name from x in Person where x.age < 30")
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_join_intro_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/join_intro_policy");
    group.sample_size(10);
    for (label, policy) in [
        ("off", JoinIntro::Off),
        ("view_relevant", JoinIntro::ViewRelevant),
        ("all", JoinIntro::All),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &policy, |b, &policy| {
            let mut opt = SemanticOptimizer::university();
            opt.add_view_text(
                "asr(X, W) <- takes(X, Y), is_section_of(Y, Z), has_sections(Z, V), has_ta(V, W)",
            )
            .unwrap();
            opt.set_search_config(SearchConfig {
                join_intro: policy,
                ..Default::default()
            });
            opt.residue_count();
            b.iter(|| {
                black_box(
                    opt.optimize(
                        r#"select w
                           from x in Student
                                y in x.takes
                                z in y.is_section_of
                                v in z.has_sections
                                w in v.has_ta"#,
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_chase_budget(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/chase_budget");
    group.sample_size(10);
    for facts in [100usize, 400, 1600] {
        group.bench_with_input(BenchmarkId::from_parameter(facts), &facts, |b, &_facts| {
            // The chase budget lives in the TransformContext; route through
            // the datalog layer directly.
            use sqo_datalog::chase::ChaseBudget;
            use sqo_datalog::residue::ResidueSet;
            use sqo_datalog::search::{optimize, SearchConfig};
            use sqo_datalog::transform::TransformContext;
            let opt = SemanticOptimizer::university();
            let ics = opt.constraints();
            let mut ctx = TransformContext::new(
                ResidueSet::compile(ics),
                vec![sqo_datalog::parser::parse_rule(
                    "asr(X, W) <- takes(X, Y), is_section_of(Y, Z), \
                     has_sections(Z, V), has_ta(V, W)",
                )
                .unwrap()],
                opt.catalog().functional.clone(),
            );
            ctx.budget = ChaseBudget {
                max_rounds: 6,
                max_facts: _facts,
                max_nulls: 64,
            };
            let q = opt
                .translate(
                    &sqo_oql::parse_oql(
                        r#"select w
                           from x in Student
                                y in x.takes
                                z in y.is_section_of
                                v in z.has_sections
                                w in v.has_ta"#,
                    )
                    .unwrap(),
                )
                .unwrap()
                .query;
            let cfg = SearchConfig::default();
            b.iter(|| black_box(optimize(&q, &ctx, &cfg)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_derivation_ablation,
    bench_join_intro_policy,
    bench_chase_budget
);
criterion_main!(benches);
