//! A2 — Application 2: access scope reduction.
//!
//! Series reported: evaluation time of the original query (fetch every
//! person) vs the scope-reduced query (`x not in Faculty`, an extent
//! anti-join) as the faculty fraction of the Person extent grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqo_bench::scope_reduction_scenario;
use sqo_objdb::execute;
use std::hint::black_box;

fn bench_fraction_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("a2/scope_reduction");
    group.sample_size(20);
    for frac in [0.1f64, 0.3, 0.6, 0.9] {
        let scenario = scope_reduction_scenario(2000, frac);
        // Warm the EDB cache so both sides measure pure evaluation.
        let _ = execute(&scenario.db, &scenario.original).unwrap();
        group.bench_with_input(
            BenchmarkId::new("original", format!("f={frac}")),
            &scenario,
            |b, s| b.iter(|| black_box(execute(&s.db, &s.original).unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("scope_reduced", format!("f={frac}")),
            &scenario,
            |b, s| b.iter(|| black_box(execute(&s.db, &s.optimized).unwrap())),
        );
    }
    group.finish();
}

fn bench_size_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("a2/scope_reduction_size");
    group.sample_size(15);
    for total in [500usize, 2000, 8000] {
        let scenario = scope_reduction_scenario(total, 0.5);
        let _ = execute(&scenario.db, &scenario.original).unwrap();
        group.bench_with_input(BenchmarkId::new("original", total), &scenario, |b, s| {
            b.iter(|| black_box(execute(&s.db, &s.original).unwrap()))
        });
        group.bench_with_input(
            BenchmarkId::new("scope_reduced", total),
            &scenario,
            |b, s| b.iter(|| black_box(execute(&s.db, &s.optimized).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fraction_sweep, bench_size_sweep);
criterion_main!(benches);
