//! The closed-loop load harness for the serving subsystem.
//!
//! Starts an in-process [`sqo_service::Server`] on an ephemeral port and
//! drives it with `clients` closed-loop TCP connections (each sends a
//! request, waits for the response line, repeats). Client-side latency is
//! recorded into one [`obs::Histogram`] per client thread and merged at
//! the end — the same merge discipline the engine's own thread-local
//! counters use, so the harness doubles as an end-to-end exercise of the
//! histogram merge path.
//!
//! Two standard shapes:
//!
//! * [`LoadConfig::warm`] — closed loop at 1x (`clients == workers`, ample
//!   queue): at most `workers` requests are ever outstanding, so nothing
//!   can shed and the measured quantiles are the service's intrinsic
//!   warm-cache latency (`serve/p50`, `serve/p99` in the bench manifest).
//! * [`LoadConfig::overload`] — 10x the server's total capacity
//!   (`clients = 10 * (workers + queue)`) against a deliberately small
//!   queue: admission control must shed, and the interesting numbers are
//!   the shed rate and the p99 of the *accepted* requests, which bounded
//!   admission keeps flat instead of letting queueing delay grow without
//!   bound.
//!
//! Both shapes run under either connection multiplexer
//! ([`LoadConfig::with_mode`]): the `serve/p50_threaded` /
//! `serve/p99_threaded` manifest rows are the warm phase replayed on
//! the thread-per-connection ablation. [`LoadConfig::pipelined`] makes
//! each client write a whole window of requests before reading, which
//! exercises the event loop's drain-all-complete-frames batching; it
//! widens the queue to fit every window so batching is measured
//! without shedding.

use sqo_obs as obs;
use sqo_service::{ServeMode, Server, ServerConfig, SessionRegistry, SessionSpec};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

/// The constraint every load session is prepared with (the paper's IC4).
pub const LOAD_IC: &str = "ic IC4: Age >= 30 <- faculty(X, N, Age, S, R, Ad).";

/// One load phase: server shape plus client population.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Worker threads in the admission pool.
    pub workers: usize,
    /// Admission queue capacity.
    pub queue_capacity: usize,
    /// Closed-loop client connections.
    pub clients: usize,
    /// Requests each client sends before disconnecting.
    pub requests_per_client: usize,
    /// Execute the chosen plan against the bound university base (makes
    /// each request do real evaluation work instead of pure optimization).
    pub execute: bool,
    /// Connection multiplexing strategy of the server under load (the
    /// event loop, or the thread-per-connection ablation).
    pub mode: ServeMode,
    /// Requests each client writes back-to-back before reading any
    /// response (1 = strict request/response lock-step). Latency is
    /// measured per response from the batch write, so pipelined numbers
    /// include the wait behind the client's own earlier requests.
    pub pipeline_depth: usize,
}

impl LoadConfig {
    /// The 1x phase: as many clients as workers, so the queue never
    /// fills and nothing sheds.
    pub fn warm(workers: usize, requests_per_client: usize) -> LoadConfig {
        LoadConfig {
            workers,
            queue_capacity: 4 * workers.max(1),
            clients: workers,
            requests_per_client,
            execute: false,
            mode: ServeMode::EventLoop,
            pipeline_depth: 1,
        }
    }

    /// The same phase against the other connection multiplexer (used
    /// for the `serve/p50_threaded` / `serve/p99_threaded` ablation
    /// rows).
    pub fn with_mode(mut self, mode: ServeMode) -> LoadConfig {
        self.mode = mode;
        self
    }

    /// The same phase with each client pipelining `depth` requests per
    /// window. The queue is widened so a full window from every client
    /// still fits: pipelining measures batching, not shedding.
    pub fn pipelined(mut self, depth: usize) -> LoadConfig {
        self.pipeline_depth = depth.max(1);
        self.queue_capacity = self.queue_capacity.max(self.clients * self.pipeline_depth);
        self
    }

    /// The overload phase: ten clients for every slot the server has
    /// (workers plus queue entries), so at full closed-loop pressure the
    /// queue is saturated and admission control must shed.
    pub fn overload(
        workers: usize,
        queue_capacity: usize,
        requests_per_client: usize,
    ) -> LoadConfig {
        LoadConfig {
            workers,
            queue_capacity,
            clients: 10 * (workers + queue_capacity),
            requests_per_client,
            execute: true,
            mode: ServeMode::EventLoop,
            pipeline_depth: 1,
        }
    }
}

/// What a load phase measured.
#[derive(Debug)]
pub struct LoadReport {
    /// Requests sent across all clients.
    pub sent: u64,
    /// Requests answered with a result.
    pub ok: u64,
    /// Requests shed by admission control (`overloaded`).
    pub shed: u64,
    /// Requests that failed any other way (should be zero).
    pub other_errors: u64,
    /// Client-observed latency of the *accepted* requests, merged across
    /// all client threads.
    pub hist: obs::Histogram,
}

impl LoadReport {
    /// Median accepted-request latency in nanoseconds.
    pub fn p50_ns(&self) -> Option<u64> {
        self.hist.quantile(0.50)
    }

    /// Tail (p99) accepted-request latency in nanoseconds.
    pub fn p99_ns(&self) -> Option<u64> {
        self.hist.quantile(0.99)
    }

    /// Fraction of requests shed, in `[0, 1]`.
    pub fn shed_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.shed as f64 / self.sent as f64
        }
    }

    /// One human-readable summary line.
    pub fn summary(&self, label: &str) -> String {
        let q = |v: Option<u64>| match v {
            Some(ns) => format!("{:.2} ms", ns as f64 / 1e6),
            None => "-".to_string(),
        };
        format!(
            "{label}: sent {} ok {} shed {} ({:.1}%) p50 {} p99 {}",
            self.sent,
            self.ok,
            self.shed,
            self.shed_rate() * 100.0,
            q(self.p50_ns()),
            q(self.p99_ns()),
        )
    }
}

/// Runs one closed-loop load phase against a fresh in-process server.
///
/// Panics on harness-level failures (bind/connect/protocol errors);
/// request-level sheds are part of the measurement, not failures.
pub fn run(cfg: &LoadConfig) -> LoadReport {
    let registry = Arc::new(SessionRegistry::new());
    registry
        .prepare("default", SessionSpec::University, Some(LOAD_IC))
        .expect("university session prepares");
    if cfg.execute {
        registry
            .get("default")
            .unwrap()
            .attach_university_data()
            .expect("university data attaches");
    }
    let server = Server::bind(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: cfg.workers,
            queue_capacity: cfg.queue_capacity,
            default_timeout_ms: 60_000,
            mode: cfg.mode,
            ..ServerConfig::default()
        },
        registry,
    )
    .expect("server binds an ephemeral port");
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run());

    let reports: Vec<LoadReport> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|c| s.spawn(move || client_loop(addr, c, cfg)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });

    let mut total = LoadReport {
        sent: 0,
        ok: 0,
        shed: 0,
        other_errors: 0,
        hist: obs::Histogram::new(),
    };
    for r in reports {
        total.sent += r.sent;
        total.ok += r.ok;
        total.shed += r.shed;
        total.other_errors += r.other_errors;
        total.hist.merge(&r.hist);
    }

    shutdown(addr);
    let _ = server_thread.join();
    total
}

/// One closed-loop client: a parameterized query family over one shared
/// cached template, so after the first few requests the server runs in
/// its warm steady state.
fn client_loop(addr: SocketAddr, client: usize, cfg: &LoadConfig) -> LoadReport {
    let mut stream = TcpStream::connect(addr).expect("client connects");
    // Without this the measured "latency" is the peer's delayed-ACK
    // timer, not the service: one-line requests sit in Nagle's buffer.
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut report = LoadReport {
        sent: 0,
        ok: 0,
        shed: 0,
        other_errors: 0,
        hist: obs::Histogram::new(),
    };
    let exec = if cfg.execute {
        r#","execute":true"#
    } else {
        ""
    };
    let depth = cfg.pipeline_depth.max(1);
    let mut i = 0;
    while i < cfg.requests_per_client {
        let window = depth.min(cfg.requests_per_client - i);
        // Distinct constants, one canonical template: cache hits after
        // the first sighting, like a parameterized production workload.
        // The whole window goes out in one write, so a depth > 1 client
        // exercises the server's drain-all-complete-frames batching.
        let mut batch = String::new();
        for j in 0..window {
            let age = 20 + (client * 7 + i + j) % 15;
            batch.push_str(&format!(
                r#"{{"op":"query","oql":"select x.name from x in Person where x.age < {age}"{exec}}}"#
            ));
            batch.push('\n');
        }
        let t0 = std::time::Instant::now();
        stream.write_all(batch.as_bytes()).expect("client write");
        stream.flush().expect("client flush");
        for _ in 0..window {
            let mut resp = String::new();
            reader.read_line(&mut resp).expect("client read");
            let elapsed_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            report.sent += 1;
            if resp.contains(r#""ok":true"#) || resp.contains(r#""ok": true"#) {
                report.ok += 1;
                report.hist.record(elapsed_ns);
            } else if resp.contains("overloaded") {
                report.shed += 1;
            } else {
                report.other_errors += 1;
            }
        }
        i += window;
    }
    report
}

fn shutdown(addr: SocketAddr) {
    if let Ok(mut stream) = TcpStream::connect(addr) {
        let _ = writeln!(stream, r#"{{"op":"shutdown"}}"#);
        let _ = stream.flush();
        let mut reader = BufReader::new(stream);
        let mut resp = String::new();
        let _ = reader.read_line(&mut resp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_phase_sheds_nothing_and_reports_quantiles() {
        let report = run(&LoadConfig::warm(2, 20));
        assert_eq!(report.sent, 40);
        assert_eq!(report.ok, 40);
        assert_eq!(report.shed, 0, "1x load cannot fill the queue");
        assert_eq!(report.other_errors, 0);
        assert_eq!(report.hist.count(), 40);
        let p50 = report.p50_ns().expect("quantiles exist");
        let p99 = report.p99_ns().expect("quantiles exist");
        assert!(p50 > 0 && p99 >= p50);
    }

    #[test]
    fn threaded_ablation_answers_everything() {
        let report = run(&LoadConfig::warm(2, 10).with_mode(ServeMode::Threaded));
        assert_eq!(report.sent, 20);
        assert_eq!(report.ok, 20);
        assert_eq!(report.shed + report.other_errors, 0);
    }

    #[test]
    fn pipelined_windows_never_shed_and_answer_in_full() {
        let report = run(&LoadConfig::warm(2, 24).pipelined(8));
        assert_eq!(report.sent, 48);
        assert_eq!(report.ok, 48);
        assert_eq!(
            report.shed, 0,
            "pipelined() widens the queue to fit every window"
        );
        assert_eq!(report.other_errors, 0);
        assert_eq!(report.hist.count(), 48);
    }

    #[test]
    fn overload_phase_sheds_and_bounds_accepted_tail() {
        let report = run(&LoadConfig::overload(1, 1, 20));
        assert_eq!(report.sent, 20 * 20);
        assert_eq!(report.other_errors, 0);
        assert!(
            report.shed > 0,
            "10x closed-loop pressure against a one-slot queue must shed"
        );
        assert_eq!(report.ok + report.shed, report.sent);
        // Accepted requests still finish: bounded admission keeps the
        // tail to real service time, not unbounded queueing delay.
        assert!(report.p99_ns().is_some());
    }
}
