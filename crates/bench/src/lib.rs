//! Shared experiment scenarios for the benchmark harness.
//!
//! The paper (Section 6) left quantitative evaluation to future work, so
//! EXPERIMENTS.md defines the experiment suite: each Application of
//! Section 5 becomes a measured comparison between the original query
//! and its SQO rewrite on the synthetic university object base, and the
//! complexity claims of Section 4.1 are measured directly. This crate
//! holds the scenario builders shared by the Criterion benches and the
//! `tables` binary.

pub mod loadgen;

use sqo_core::{SemanticOptimizer, Verdict};
use sqo_datalog::{Literal, Query};
use sqo_objdb::{ObjectDb, UniversityConfig};

/// A prepared comparison: the object base plus the original and the
/// SQO-chosen Datalog queries.
pub struct Scenario {
    /// The populated object base.
    pub db: ObjectDb,
    /// The original (translated) query.
    pub original: Query,
    /// The optimized variant under study.
    pub optimized: Query,
    /// A short label for reports.
    pub label: String,
}

/// Application 1: contradiction detection. Returns the optimizer primed
/// with IC3 plus the OQL source whose evaluation SQO avoids entirely,
/// and an object base of the requested size for the "evaluate anyway"
/// baseline.
pub fn contradiction_scenario(students: usize) -> (SemanticOptimizer, &'static str, ObjectDb) {
    let mut opt = SemanticOptimizer::university();
    opt.add_constraint_text(
        "ic IC3: Value > 3000 <- taxes_withheld(X, 0.1, Value), faculty(X, N, A, S, R, Ad).",
    )
    .expect("IC3 parses");
    // No name filter: the baseline cost of evaluating the refuted query
    // grows with the database, while detection cost does not.
    let oql = r#"select z.name, w.city
                 from x in Student
                      y in x.takes
                      z in y.is_taught_by
                      w in z.address
                 where z.taxes_withheld(10%) < 1000"#;
    let data = UniversityConfig {
        students,
        persons: students / 4,
        faculty: (students / 10).max(5),
        courses: (students / 20).max(4),
        ..Default::default()
    }
    .build()
    .expect("generator succeeds");
    (opt, oql, data.db)
}

/// Application 2: access scope reduction. `faculty_fraction` controls
/// how much of the Person extent is faculty (the reduction's win grows
/// with it).
pub fn scope_reduction_scenario(total: usize, faculty_fraction: f64) -> Scenario {
    let faculty = ((total as f64) * faculty_fraction) as usize;
    let persons = total - faculty;
    let data = UniversityConfig {
        persons,
        faculty,
        students: 0,
        courses: 0,
        young_fraction: 0.5,
        ..Default::default()
    }
    .build()
    .expect("generator succeeds");
    let mut opt = SemanticOptimizer::university();
    opt.add_constraint_text("ic IC4: Age >= 30 <- faculty(X, N, Age, S, R, Ad).")
        .expect("IC4 parses");
    let report = opt
        .optimize("select x.name from x in Person where x.age < 30")
        .expect("query optimizes");
    let Verdict::Equivalents(eqs) = &report.verdict else {
        panic!("satisfiable");
    };
    let optimized = eqs
        .iter()
        .find(|e| {
            e.datalog
                .body
                .iter()
                .any(|l| matches!(l, Literal::Neg(a) if a.pred.name() == "faculty"))
        })
        .expect("scope-reduced variant")
        .datalog
        .clone();
    Scenario {
        db: data.db,
        original: report.datalog.clone(),
        optimized,
        label: format!("A2 total={total} f={faculty_fraction}"),
    }
}

/// Application 3: key-based join reduction. Scale controls the number of
/// students/TAs joined through same-professor sections.
pub fn key_join_scenario(students: usize) -> Scenario {
    let data = UniversityConfig {
        students,
        persons: 0,
        faculty: (students / 8).max(4),
        courses: (students / 10).max(4),
        sections_per_course: 2,
        takes_per_student: 3,
        ..Default::default()
    }
    .build()
    .expect("generator succeeds");
    let mut opt = SemanticOptimizer::university();
    let report = opt
        .optimize(
            r#"select list(x.student_id, t.employee_id)
               from x in Student
                    y in x.takes
                    z in y.is_taught_by
                    t in TA
                    v in t.takes
                    w in v.is_taught_by
               where z.name = w.name"#,
        )
        .expect("query optimizes");
    let Verdict::Equivalents(eqs) = &report.verdict else {
        panic!("satisfiable");
    };
    // The paper's rewrite: Z = W added, Name1 = Name2 removed, faculty
    // atoms retained (the minimal such variant).
    let optimized = eqs
        .iter()
        .filter(|e| !e.delta.is_empty())
        .find(|e| {
            let has_eq = e.delta.added.iter().any(|l| {
                matches!(l, Literal::Cmp(c) if c.to_string().contains("Z = W")
                    || c.to_string().contains("W = Z"))
            });
            let removed_name_join = e
                .delta
                .removed
                .iter()
                .any(|l| matches!(l, Literal::Cmp(c) if c.to_string().contains("Name")));
            has_eq && removed_name_join && e.delta.removed.len() == 1 && e.delta.added.len() == 1
        })
        .expect("key-join rewrite")
        .datalog
        .clone();
    Scenario {
        db: data.db,
        original: report.datalog.clone(),
        optimized,
        label: format!("A3 students={students}"),
    }
}

/// Application 4 (Q): ASR join elimination over the 4-hop path.
pub fn asr_scenario(students: usize, courses: usize) -> Scenario {
    let mut data = UniversityConfig {
        students,
        persons: 0,
        faculty: 20,
        courses,
        sections_per_course: 3,
        takes_per_student: 4,
        ..Default::default()
    }
    .build()
    .expect("generator succeeds");
    data.db
        .define_asr(
            "asr",
            "Student",
            &["takes", "is_section_of", "has_sections", "has_ta"],
        )
        .expect("asr path resolves");
    let mut opt = SemanticOptimizer::university();
    for rule in data.db.asr_rules() {
        opt.add_view(rule);
    }
    // No selective filter: the join over the whole 4-hop path is the
    // cost under study (the paper's "queries that require evaluating
    // very long path expressions may be expensive to process").
    let report = opt
        .optimize(
            r#"select w
               from x in Student
                    y in x.takes
                    z in y.is_section_of
                    v in z.has_sections
                    w in v.has_ta"#,
        )
        .expect("query optimizes");
    let Verdict::Equivalents(eqs) = &report.verdict else {
        panic!("satisfiable");
    };
    let optimized = eqs
        .iter()
        .find(|e| {
            e.datalog.positive_atoms().any(|a| a.pred.name() == "asr") && e.datalog.body.len() <= 3
        })
        .expect("folded variant")
        .datalog
        .clone();
    Scenario {
        db: data.db,
        original: report.datalog.clone(),
        optimized,
        label: format!("A4 students={students} courses={courses}"),
    }
}

/// Application 4 (Q1): join *introduction* — the query does not mention
/// `has_ta`, but IC9 plus the one-to-one constraint let SQO route it
/// through the ASR (the paper's Q1″). Note IC9 must actually hold on the
/// data: the generator assigns a TA to every section.
pub fn asr_q1_scenario(students: usize, courses: usize) -> Scenario {
    let mut data = UniversityConfig {
        students,
        persons: 0,
        faculty: 20,
        courses,
        sections_per_course: 3,
        takes_per_student: 4,
        ..Default::default()
    }
    .build()
    .expect("generator succeeds");
    data.db
        .define_asr(
            "asr",
            "Student",
            &["takes", "is_section_of", "has_sections", "has_ta"],
        )
        .expect("asr path resolves");
    let mut opt = SemanticOptimizer::university();
    for rule in data.db.asr_rules() {
        opt.add_view(rule);
    }
    opt.add_constraint_text(
        "ic IC9: has_ta(V, W) <- takes(X, Y), is_section_of(Y, Z), has_sections(Z, V).",
    )
    .expect("IC9 parses");
    let report = opt
        .optimize(
            r#"select v
               from x in Student
                    y in x.takes
                    z in y.is_section_of
                    v in z.has_sections"#,
        )
        .expect("query optimizes");
    let Verdict::Equivalents(eqs) = &report.verdict else {
        panic!("satisfiable");
    };
    // The Q1'' shape: asr + has_ta, chain removed.
    let optimized = eqs
        .iter()
        .find(|e| {
            let preds: Vec<&str> = e.datalog.positive_atoms().map(|a| a.pred.name()).collect();
            preds.contains(&"asr")
                && preds.contains(&"has_ta")
                && !preds.contains(&"takes")
                && !preds.contains(&"has_sections")
        })
        .expect("Q1'' variant")
        .datalog
        .clone();
    Scenario {
        db: data.db,
        original: report.datalog.clone(),
        optimized,
        label: format!("A4-Q1 students={students} courses={courses}"),
    }
}

/// A synthetic schema with `n` classes for the Step 1 linearity
/// measurement (F2).
pub fn synthetic_schema(classes: usize) -> sqo_odl::Schema {
    let mut src = String::new();
    for i in 0..classes {
        let sup = if i % 4 == 0 || i == 0 {
            String::new()
        } else {
            format!(" : C{}", i - 1)
        };
        src.push_str(&format!(
            "interface C{i}{sup} {{ extent C{i}; key a{i}; \
             attribute string a{i}; attribute long b{i}; }};\n"
        ));
    }
    sqo_odl::Schema::parse(&src).expect("synthetic schema is valid")
}

/// E3: the indexed-rewrite scenario — a Step-3 rewrite reaches an access
/// path the original query cannot use.
///
/// `rank` is a non-key string attribute, so `rank = "professor"` can
/// only scan the Faculty extent. The IC `Salary >= 90000 <- faculty(…),
/// Rank = "professor"` lets SQO add a salary bound — and `salary` is a
/// numeric attribute with a declared ordered index, so the rewrite
/// becomes a range probe touching ~0.2% of the extent. The win is purely
/// physical: both queries return exactly the professors.
pub fn indexed_rewrite_scenario(faculty: usize) -> Scenario {
    let mut db = ObjectDb::new(sqo_odl::fixtures::university_schema());
    for i in 0..faculty {
        // 0.2% professors, all at or above the IC's salary bound;
        // everyone else stays strictly below it. The probe's cost is
        // O(answers), the scan's O(extent): a rare target class is
        // exactly where the indexed plan runs away from the scan.
        let professor = i % 500 == 0;
        let rank = if professor { "professor" } else { "lecturer" };
        let salary = if professor {
            90_000.0 + (i % 977) as f64
        } else {
            40_000.0 + (i % 49_000) as f64
        };
        db.create(
            "Faculty",
            vec![
                ("name", format!("f{i}").into()),
                ("age", sqo_objdb::Value::Int(30 + (i % 40) as i64)),
                ("salary", sqo_objdb::Value::Real(salary)),
                ("rank", rank.into()),
            ],
        )
        .expect("faculty created");
    }
    let mut opt = SemanticOptimizer::university();
    opt.add_constraint_text(
        "ic IC_PROF: Salary >= 90000 <- faculty(X, N, Age, Salary, Rank, Ad), \
         Rank = \"professor\".",
    )
    .expect("IC_PROF parses");
    let report = opt
        .optimize("select x.name from x in Faculty where x.rank = \"professor\"")
        .expect("query optimizes");
    let Verdict::Equivalents(eqs) = &report.verdict else {
        panic!("satisfiable");
    };
    let optimized = eqs
        .iter()
        .filter(|e| !e.delta.is_empty())
        .find(|e| {
            e.delta
                .added
                .iter()
                .any(|l| matches!(l, Literal::Cmp(c) if c.to_string().contains("90000")))
        })
        .expect("salary-bound rewrite")
        .datalog
        .clone();
    Scenario {
        db,
        original: report.datalog.clone(),
        optimized,
        label: format!("E3 faculty={faculty}"),
    }
}

/// An optimizer with `n` applicable range ICs over one relation — the
/// Step 3 growth measurement (F2).
pub fn optimizer_with_n_ics(n: usize) -> (SemanticOptimizer, &'static str) {
    let mut opt = SemanticOptimizer::university();
    for i in 0..n {
        opt.add_constraint_text(&format!(
            "ic R{i}: Age >= {} <- faculty(X, N, Age, S, R, Ad).",
            10 + i
        ))
        .expect("IC parses");
    }
    (opt, "select x.name from x in Faculty where x.age > 5")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqo_objdb::execute;

    #[test]
    fn scenarios_are_equivalent_pairs() {
        for scenario in [
            scope_reduction_scenario(200, 0.3),
            key_join_scenario(60),
            asr_scenario(80, 10),
            asr_q1_scenario(80, 10),
            indexed_rewrite_scenario(500),
        ] {
            let (orig, _) = execute(&scenario.db, &scenario.original)
                .unwrap_or_else(|e| panic!("{}: {e}", scenario.label));
            let (opt, _) = execute(&scenario.db, &scenario.optimized)
                .unwrap_or_else(|e| panic!("{}: {e}", scenario.label));
            let mut a = orig.clone();
            let mut b = opt.clone();
            a.sort();
            b.sort();
            assert_eq!(a, b, "{}: rewrite must preserve answers", scenario.label);
        }
    }

    #[test]
    fn contradiction_scenario_detects() {
        let (mut opt, oql, _db) = contradiction_scenario(50);
        assert!(opt.optimize(oql).unwrap().is_contradiction());
    }

    #[test]
    fn synthetic_schema_scales() {
        let s = synthetic_schema(40);
        assert_eq!(s.classes().len(), 40);
        let cat = sqo_translate::translate_schema(&s);
        assert!(cat.relations.len() >= 40);
    }
}
