//! Standalone closed-loop load generator for the serving subsystem.
//!
//! ```text
//! cargo run --release -p sqo-bench --bin loadgen [--smoke]
//!     [--workers N] [--queue N] [--requests N]
//! ```
//!
//! Runs the two standard phases of [`sqo_bench::loadgen`]:
//!
//! 1. **1x warm** — `clients == workers`, ample queue: nothing can shed;
//!    prints `serve/p50` and `serve/p99` (client-observed, warm cache).
//! 2. **10x overload** — clients at ten times the server's total slots
//!    against a small queue: admission control must shed; prints the shed
//!    rate and the p99 of the accepted requests.
//!
//! `--smoke` shrinks both phases to CI size and *asserts* the closed-loop
//! invariants (quantiles present; zero sheds at 1x; nonzero sheds and a
//! finite accepted-tail at 10x), exiting nonzero on violation. Manifest
//! rows are written by the `tables` binary, not here — this binary is the
//! interactive/CI entry point.

use sqo_bench::loadgen::{self, LoadConfig};

fn arg_value(name: &str) -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let workers = arg_value("--workers").unwrap_or(4);
    let queue = arg_value("--queue").unwrap_or(2);
    let requests = arg_value("--requests").unwrap_or(if smoke { 30 } else { 200 });

    let warm = loadgen::run(&LoadConfig::warm(workers, requests));
    println!("{}", warm.summary("1x warm"));

    let overload_requests = if smoke { 10 } else { requests / 4 };
    let overload = loadgen::run(&LoadConfig::overload(
        workers.min(2),
        queue,
        overload_requests,
    ));
    println!("{}", overload.summary("10x overload"));

    if smoke {
        assert_eq!(
            warm.shed, 0,
            "1x closed-loop load can never fill the queue, yet sheds occurred"
        );
        assert_eq!(warm.other_errors, 0, "1x phase hit non-shed errors");
        assert!(
            warm.p99_ns().is_some() && warm.p50_ns().is_some(),
            "1x phase must report latency quantiles"
        );
        assert_eq!(
            overload.other_errors, 0,
            "overload phase hit non-shed errors"
        );
        assert!(
            overload.shed > 0,
            "10x closed-loop pressure against a small queue must shed"
        );
        assert!(
            overload.p99_ns().is_some(),
            "accepted requests under overload must still report a tail"
        );
        println!("loadgen smoke: OK");
    }
}
