//! The experiment-table harness: regenerates every table of
//! EXPERIMENTS.md (one section per paper artifact — Figure 2's
//! complexity claims and Applications 1–4) with measured numbers.
//!
//! ```text
//! cargo run --release -p sqo-bench --bin tables [--quick]
//! ```

use sqo_bench::{
    asr_q1_scenario, asr_scenario, contradiction_scenario, key_join_scenario, optimizer_with_n_ics,
    scope_reduction_scenario, synthetic_schema,
};
use sqo_core::SemanticOptimizer;
use sqo_objdb::execute;
use sqo_translate::translate_schema;
use std::time::Instant;

fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64() * 1e3)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let k = if quick { 1 } else { 2 };

    println!("# Experiment tables (measured on this machine)\n");

    // ---------------- F2: pipeline complexity ----------------
    println!("## F2.1 — Step 1 (schema translation) vs schema size");
    println!("{:>10} {:>14} {:>16}", "classes", "relations", "time (ms)");
    for n in [8, 16, 32, 64, 128] {
        let schema = synthetic_schema(n);
        let (cat, ms) = time_ms(|| translate_schema(&schema));
        println!("{:>10} {:>14} {:>16.3}", n, cat.relations.len(), ms);
    }

    println!("\n## F2.2 — Step 3 (SQO) vs number of applicable ICs");
    println!(
        "{:>6} {:>10} {:>14} {:>16}",
        "ICs", "residues", "equivalents", "time (ms)"
    );
    for n in [0usize, 2, 4, 8, 12] {
        let (mut opt, q) = optimizer_with_n_ics(n);
        let residues = opt.residue_count();
        let (report, ms) = time_ms(|| opt.optimize(q).unwrap());
        println!(
            "{:>6} {:>10} {:>14} {:>16.2}",
            n,
            residues,
            report.equivalents().len(),
            ms
        );
    }

    // ---------------- A1: contradiction detection ----------------
    println!("\n## A1 — Contradiction detection (Application 1)");
    println!(
        "{:>10} {:>18} {:>20} {:>14}",
        "students", "SQO detect (ms)", "evaluate-anyway (ms)", "tuples scanned"
    );
    for students in [100, 400, 1600 * k] {
        let (mut opt, oql, db) = contradiction_scenario(students);
        let (report, detect_ms) = time_ms(|| opt.optimize(oql).unwrap());
        assert!(report.is_contradiction());
        let plain = SemanticOptimizer::university();
        let t = plain.translate(&sqo_oql::parse_oql(oql).unwrap()).unwrap();
        let _ = execute(&db, &t.query).unwrap(); // warm cache
        let ((rows, cost), eval_ms) = time_ms(|| execute(&db, &t.query).unwrap());
        assert!(rows.is_empty());
        println!(
            "{:>10} {:>18.2} {:>20.2} {:>14}",
            students, detect_ms, eval_ms, cost.tuples_examined
        );
    }

    // ---------------- A2: scope reduction ----------------
    println!("\n## A2 — Access scope reduction (Application 2)");
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>14} {:>10}",
        "f", "orig fetch", "opt fetch", "orig ms", "opt ms", "answers"
    );
    for frac in [0.1, 0.3, 0.6, 0.9] {
        let s = scope_reduction_scenario(2000 * k, frac);
        let _ = execute(&s.db, &s.original).unwrap();
        let ((r1, c1), ms1) = time_ms(|| execute(&s.db, &s.original).unwrap());
        let ((r2, c2), ms2) = time_ms(|| execute(&s.db, &s.optimized).unwrap());
        assert_eq!(r1.len(), r2.len());
        println!(
            "{:>8} {:>14} {:>14} {:>14.2} {:>14.2} {:>10}",
            frac,
            c1.object_fetches,
            c2.object_fetches,
            ms1,
            ms2,
            r1.len()
        );
    }

    // ---------------- A3: key join reduction ----------------
    println!("\n## A3 — Key-based join reduction (Application 3)");
    println!(
        "{:>10} {:>14} {:>14} {:>12} {:>12} {:>10}",
        "students", "orig fetch", "opt fetch", "orig ms", "opt ms", "answers"
    );
    for students in [40, 80, 160 * k] {
        let s = key_join_scenario(students);
        let _ = execute(&s.db, &s.original).unwrap();
        let ((r1, c1), ms1) = time_ms(|| execute(&s.db, &s.original).unwrap());
        let ((r2, c2), ms2) = time_ms(|| execute(&s.db, &s.optimized).unwrap());
        assert_eq!(r1.len(), r2.len());
        println!(
            "{:>10} {:>14} {:>14} {:>12.2} {:>12.2} {:>10}",
            students,
            c1.object_fetches,
            c2.object_fetches,
            ms1,
            ms2,
            r1.len()
        );
    }

    // ---------------- A4: access support relations ----------------
    println!("\n## A4 — ASR join elimination (Application 4, query Q)");
    println!(
        "{:>16} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "scale", "chain rel", "asr probes", "orig ms", "opt ms", "answers"
    );
    for (students, courses) in [(200, 20), (800, 60), (3200 * k, 200 * k)] {
        let s = asr_scenario(students, courses);
        let _ = execute(&s.db, &s.original).unwrap();
        let ((r1, c1), ms1) = time_ms(|| execute(&s.db, &s.original).unwrap());
        let ((r2, c2), ms2) = time_ms(|| execute(&s.db, &s.optimized).unwrap());
        assert_eq!(r1.len(), r2.len());
        println!(
            "{:>16} {:>12} {:>12} {:>12.2} {:>12.2} {:>10}",
            format!("s={students},c={courses}"),
            c1.rel_traversals,
            c2.view_probes,
            ms1,
            ms2,
            r1.len()
        );
    }

    // ---------------- A4-Q1: join introduction ----------------
    println!("\n## A4-Q1 — ASR via join introduction (Application 4, query Q1)");
    println!(
        "{:>16} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "scale", "chain rel", "asr+ta", "orig ms", "opt ms", "answers"
    );
    for (students, courses) in [(200, 20), (800, 60)] {
        let s = asr_q1_scenario(students, courses);
        let _ = execute(&s.db, &s.original).unwrap();
        let ((r1, c1), ms1) = time_ms(|| execute(&s.db, &s.original).unwrap());
        let ((r2, c2), ms2) = time_ms(|| execute(&s.db, &s.optimized).unwrap());
        assert_eq!(r1.len(), r2.len());
        println!(
            "{:>16} {:>12} {:>12} {:>12.2} {:>12.2} {:>10}",
            format!("s={students},c={courses}"),
            c1.rel_traversals,
            c2.view_probes + c2.rel_traversals,
            ms1,
            ms2,
            r1.len()
        );
    }

    println!("\n(done — see EXPERIMENTS.md for the expectations each table is checked against)");
}
