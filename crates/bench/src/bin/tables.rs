//! The experiment-table harness: regenerates every table of
//! EXPERIMENTS.md (one section per paper artifact — Figure 2's
//! complexity claims and Applications 1–4) with measured numbers.
//!
//! ```text
//! cargo run --release -p sqo-bench --bin tables [--quick]
//! cargo run --release -p sqo-bench --bin tables -- --serve           # serve/* rows only
//! cargo run --release -p sqo-bench --bin tables -- --store-recovery  # store/* row only
//! ```
//!
//! Besides the human-readable tables, the run writes
//! `BENCH_pipeline.json` at the repo root: a flat `{"name": median_ns}`
//! map covering the e1/f2 pipeline benchmarks in both the current
//! engine configuration and the pre-optimization baseline paths kept as
//! ablation knobs ([`DedupMode::CanonicalKey`], `optimize_sequential`),
//! plus the derived `speedup/…` ratios and `stage/…` entries carrying the
//! mean per-stage span timings from the observability registry, and the
//! `serve/…` rows measuring the query-serving path (cold per-request
//! search vs warm semantic-plan-cache hits, sequential and concurrent,
//! plus closed-loop TCP latency under the event loop, its
//! thread-per-connection ablation, and 8-deep client pipelining).

use sqo_bench::loadgen::{self, LoadConfig};
use sqo_bench::{
    asr_q1_scenario, asr_scenario, contradiction_scenario, indexed_rewrite_scenario,
    key_join_scenario, optimizer_with_n_ics, scope_reduction_scenario, synthetic_schema,
};
use sqo_core::{PlanCache, SemanticOptimizer};
use sqo_datalog::parser::{parse_constraint, parse_query};
use sqo_datalog::residue::ResidueSet;
use sqo_datalog::search::{self, DedupMode, Outcome, SearchConfig};
use sqo_datalog::transform::TransformContext;
use sqo_datalog::Query;
use sqo_objdb::{choose_best, execute, execute_with, ExecOptions};
use sqo_obs as obs;
use sqo_service::ServeMode;
use sqo_translate::translate_schema;
use std::collections::{BTreeMap, HashSet};
use std::time::Instant;

fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64() * 1e3)
}

/// Median wall-clock time of `reps` runs of `f`, in nanoseconds (one
/// unrecorded warmup run first).
fn median_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e9
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let k = if quick { 1 } else { 2 };

    // Standalone store-recovery mode: measure just the durable-store
    // cold open and merge its row into the committed manifest, so the
    // multi-second recovery number can be refreshed without re-running
    // the full table sweep.
    if std::env::args().any(|a| a == "--store-recovery") {
        let (n, ns) = bench_store_recovery(quick);
        if quick {
            println!("(quick mode — {n}-object recovery not persisted)");
            return;
        }
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
        let mut bench = read_manifest(path);
        bench.insert("store/recover_1m_objects".to_string(), ns);
        write_manifest(path, &bench);
        println!("(updated store/recover_1m_objects in {path})");
        return;
    }

    // Standalone serving mode: re-run just the closed-loop TCP phases
    // (event-loop and thread-per-connection warm latency, pipelined
    // warm latency, 10x-overload shed rate) and merge their rows into
    // the committed manifest without re-running the full table sweep.
    if std::env::args().any(|a| a == "--serve") {
        let mut rows = BTreeMap::new();
        bench_serve_phases(quick, &mut rows);
        if quick {
            println!("(quick mode — serve/* rows not persisted)");
            return;
        }
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
        let mut bench = read_manifest(path);
        bench.extend(rows);
        write_manifest(path, &bench);
        println!("(updated serve/* closed-loop rows in {path})");
        return;
    }

    println!("# Experiment tables (measured on this machine)\n");

    // ---------------- F2: pipeline complexity ----------------
    println!("## F2.1 — Step 1 (schema translation) vs schema size");
    println!("{:>10} {:>14} {:>16}", "classes", "relations", "time (ms)");
    for n in [8, 16, 32, 64, 128] {
        let schema = synthetic_schema(n);
        let (cat, ms) = time_ms(|| translate_schema(&schema));
        println!("{:>10} {:>14} {:>16.3}", n, cat.relations.len(), ms);
    }

    println!("\n## F2.2 — Step 3 (SQO) vs number of applicable ICs");
    println!(
        "{:>6} {:>10} {:>14} {:>16}",
        "ICs", "residues", "equivalents", "time (ms)"
    );
    for n in [0usize, 2, 4, 8, 12, 32, 64] {
        let (mut opt, q) = optimizer_with_n_ics(n);
        let residues = opt.residue_count();
        let (report, ms) = time_ms(|| opt.optimize(q).unwrap());
        println!(
            "{:>6} {:>10} {:>14} {:>16.2}",
            n,
            residues,
            report.equivalents().len(),
            ms
        );
    }

    // ---------------- A1: contradiction detection ----------------
    println!("\n## A1 — Contradiction detection (Application 1)");
    println!(
        "{:>10} {:>18} {:>20} {:>14}",
        "students", "SQO detect (ms)", "evaluate-anyway (ms)", "tuples scanned"
    );
    for students in [100, 400, 1600 * k] {
        let (mut opt, oql, db) = contradiction_scenario(students);
        let (report, detect_ms) = time_ms(|| opt.optimize(oql).unwrap());
        assert!(report.is_contradiction());
        let plain = SemanticOptimizer::university();
        let t = plain.translate(&sqo_oql::parse_oql(oql).unwrap()).unwrap();
        let _ = execute(&db, &t.query).unwrap(); // warm cache
        let ((rows, cost), eval_ms) = time_ms(|| execute(&db, &t.query).unwrap());
        assert!(rows.is_empty());
        println!(
            "{:>10} {:>18.2} {:>20.2} {:>14}",
            students, detect_ms, eval_ms, cost.tuples_examined
        );
    }

    // ---------------- A2: scope reduction ----------------
    println!("\n## A2 — Access scope reduction (Application 2)");
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>14} {:>10}",
        "f", "orig fetch", "opt fetch", "orig ms", "opt ms", "answers"
    );
    for frac in [0.1, 0.3, 0.6, 0.9] {
        let s = scope_reduction_scenario(2000 * k, frac);
        let _ = execute(&s.db, &s.original).unwrap();
        let ((r1, c1), ms1) = time_ms(|| execute(&s.db, &s.original).unwrap());
        let ((r2, c2), ms2) = time_ms(|| execute(&s.db, &s.optimized).unwrap());
        assert_eq!(r1.len(), r2.len());
        println!(
            "{:>8} {:>14} {:>14} {:>14.2} {:>14.2} {:>10}",
            frac,
            c1.object_fetches,
            c2.object_fetches,
            ms1,
            ms2,
            r1.len()
        );
    }

    // ---------------- A3: key join reduction ----------------
    println!("\n## A3 — Key-based join reduction (Application 3)");
    println!(
        "{:>10} {:>14} {:>14} {:>12} {:>12} {:>10}",
        "students", "orig fetch", "opt fetch", "orig ms", "opt ms", "answers"
    );
    for students in [40, 80, 160 * k] {
        let s = key_join_scenario(students);
        let _ = execute(&s.db, &s.original).unwrap();
        let ((r1, c1), ms1) = time_ms(|| execute(&s.db, &s.original).unwrap());
        let ((r2, c2), ms2) = time_ms(|| execute(&s.db, &s.optimized).unwrap());
        assert_eq!(r1.len(), r2.len());
        println!(
            "{:>10} {:>14} {:>14} {:>12.2} {:>12.2} {:>10}",
            students,
            c1.object_fetches,
            c2.object_fetches,
            ms1,
            ms2,
            r1.len()
        );
    }

    // ---------------- A4: access support relations ----------------
    println!("\n## A4 — ASR join elimination (Application 4, query Q)");
    println!(
        "{:>16} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "scale", "chain rel", "asr probes", "orig ms", "opt ms", "answers"
    );
    for (students, courses) in [(200, 20), (800, 60), (3200 * k, 200 * k)] {
        let s = asr_scenario(students, courses);
        let _ = execute(&s.db, &s.original).unwrap();
        let ((r1, c1), ms1) = time_ms(|| execute(&s.db, &s.original).unwrap());
        let ((r2, c2), ms2) = time_ms(|| execute(&s.db, &s.optimized).unwrap());
        assert_eq!(r1.len(), r2.len());
        println!(
            "{:>16} {:>12} {:>12} {:>12.2} {:>12.2} {:>10}",
            format!("s={students},c={courses}"),
            c1.rel_traversals,
            c2.view_probes,
            ms1,
            ms2,
            r1.len()
        );
    }

    // ---------------- A4-Q1: join introduction ----------------
    println!("\n## A4-Q1 — ASR via join introduction (Application 4, query Q1)");
    println!(
        "{:>16} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "scale", "chain rel", "asr+ta", "orig ms", "opt ms", "answers"
    );
    for (students, courses) in [(200, 20), (800, 60)] {
        let s = asr_q1_scenario(students, courses);
        let _ = execute(&s.db, &s.original).unwrap();
        let ((r1, c1), ms1) = time_ms(|| execute(&s.db, &s.original).unwrap());
        let ((r2, c2), ms2) = time_ms(|| execute(&s.db, &s.optimized).unwrap());
        assert_eq!(r1.len(), r2.len());
        println!(
            "{:>16} {:>12} {:>12} {:>12.2} {:>12.2} {:>10}",
            format!("s={students},c={courses}"),
            c1.rel_traversals,
            c2.view_probes + c2.rel_traversals,
            ms1,
            ms2,
            r1.len()
        );
    }

    // ---------------- E3: indexed rewrite ----------------
    println!("\n## E3 — Index-reaching rewrite (semantic + physical)");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "faculty", "orig scans", "opt probes", "orig ms", "opt ms", "answers"
    );
    for faculty in [2000, 10_000 * k] {
        let s = indexed_rewrite_scenario(faculty);
        let _ = execute(&s.db, &s.original).unwrap();
        let ((r1, c1), ms1) = time_ms(|| execute(&s.db, &s.original).unwrap());
        let ((r2, c2), ms2) = time_ms(|| execute(&s.db, &s.optimized).unwrap());
        assert_eq!(r1.len(), r2.len());
        // The index-aware cost model must pick the range-probing rewrite.
        let (best, costs) = choose_best(&s.db, &[s.original.clone(), s.optimized.clone()]);
        assert_eq!(best, 1, "cost model must pick the rewrite: {costs:?}");
        println!(
            "{:>10} {:>12} {:>12} {:>12.2} {:>12.2} {:>10}",
            faculty,
            c1.scans,
            c2.range_probes,
            ms1,
            ms2,
            r1.len()
        );
    }

    // ---------------- BENCH_pipeline.json ----------------
    bench_pipeline(quick);

    println!("\n(done — see EXPERIMENTS.md for the expectations each table is checked against)");
}

/// Parse the flat `{"name": number}` manifest (the same line-based
/// reader the merge step has always used — the file is written by
/// [`write_manifest`], one entry per line).
fn read_manifest(path: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    if let Ok(existing) = std::fs::read_to_string(path) {
        for line in existing.lines() {
            let Some((k, v)) = line.trim().trim_end_matches(',').split_once(':') else {
                continue;
            };
            let k = k.trim().trim_matches('"');
            if k.is_empty() {
                continue;
            }
            if let Ok(v) = v.trim().parse::<f64>() {
                out.insert(k.to_string(), v);
            }
        }
    }
    out
}

/// Write the manifest as deterministic one-entry-per-line JSON.
fn write_manifest(path: &str, bench: &BTreeMap<String, f64>) {
    let mut json = String::from("{\n");
    for (i, (name, v)) in bench.iter().enumerate() {
        let sep = if i + 1 == bench.len() { "" } else { "," };
        // Sub-100 values (speedup ratios, shed rates) need more digits
        // than nanosecond medians: one decimal would round a 4% shed
        // rate to 0.0 and fail the manifest's positivity check.
        let rendered = if *v < 100.0 {
            format!("{v:.4}")
        } else {
            format!("{v:.1}")
        };
        json.push_str(&format!("  \"{name}\": {rendered}{sep}\n"));
    }
    json.push_str("}\n");
    std::fs::write(path, json).expect("write BENCH_pipeline.json");
}

/// The closed-loop serving phases over real TCP, recorded into `bench`:
///
/// * warm 1x under the event loop (`serve/p50`, `serve/p99`) — clients
///   equal workers, so admission can never shed and the quantiles are
///   the service's intrinsic warm-cache latency;
/// * the identical phase on the thread-per-connection ablation
///   (`serve/p50_threaded`, `serve/p99_threaded`), the baseline the
///   manifest gate compares the event loop against;
/// * warm 1x with each client pipelining 8-request windows
///   (`serve/p50_pipelined`, `serve/p99_pipelined`), which exercises
///   the event loop's drain-all-complete-frames batching — per-request
///   latency includes the wait behind the client's own window;
/// * 10x overload (`serve/shed_rate_overload`) — ten clients per server
///   slot against a small queue, where bounded admission must shed.
///
/// Warm quantiles keep the minimum over a few rounds (the same
/// min-of-rounds rule the concurrent ns/query row uses), so the
/// event-loop-vs-threaded comparison gates on intrinsic latency rather
/// than on whichever round caught a scheduler hiccup. The quick run
/// keeps the phases tiny but still asserts the closed-loop invariants.
fn bench_serve_phases(quick: bool, bench: &mut BTreeMap<String, f64>) {
    let reqs = if quick { 30 } else { 200 };
    let rounds = if quick { 1 } else { 3 };
    let warm_quantiles = |cfg: LoadConfig, label: &str| -> (f64, f64) {
        let (mut p50, mut p99) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..rounds {
            let r = loadgen::run(&cfg);
            println!("{}", r.summary(label));
            assert_eq!(r.shed, 0, "1x closed-loop load must never shed");
            assert_eq!(r.other_errors, 0, "1x phase hit non-shed errors");
            p50 = p50.min(r.p50_ns().expect("1x phase records latencies") as f64);
            p99 = p99.min(r.p99_ns().expect("1x phase records latencies") as f64);
        }
        (p50, p99)
    };
    let (p50, p99) = warm_quantiles(LoadConfig::warm(4, reqs), "serve 1x warm (event loop)");
    bench.insert("serve/p50".to_string(), p50);
    bench.insert("serve/p99".to_string(), p99);
    let (p50, p99) = warm_quantiles(
        LoadConfig::warm(4, reqs).with_mode(ServeMode::Threaded),
        "serve 1x warm (threaded ablation)",
    );
    bench.insert("serve/p50_threaded".to_string(), p50);
    bench.insert("serve/p99_threaded".to_string(), p99);
    let (p50, p99) = warm_quantiles(
        LoadConfig::warm(4, reqs).pipelined(8),
        "serve 1x warm (pipelined x8)",
    );
    bench.insert("serve/p50_pipelined".to_string(), p50);
    bench.insert("serve/p99_pipelined".to_string(), p99);

    let overload = loadgen::run(&LoadConfig::overload(2, 2, if quick { 10 } else { 50 }));
    println!("{}", overload.summary("serve 10x overload (closed loop)"));
    assert!(
        overload.shed > 0,
        "10x closed-loop overload against a bounded queue must shed"
    );
    assert_eq!(
        overload.other_errors, 0,
        "overload phase hit non-shed errors"
    );
    bench.insert("serve/shed_rate_overload".to_string(), overload.shed_rate());
}

/// Store durability: build an n-object store on disk — a compact
/// snapshot holding 90% of the objects plus a live WAL tail with the
/// rest — then measure a cold [`sqo_store::ShardedStore::open`], i.e.
/// snapshot load + checksum verification + WAL-tail replay across all
/// shards. Full runs use one million objects (the manifest row
/// `store/recover_1m_objects`); quick runs shrink the store and never
/// persist the number.
fn bench_store_recovery(quick: bool) -> (usize, f64) {
    let n: u64 = if quick { 20_000 } else { 1_000_000 };
    let dir = std::env::temp_dir().join(format!("sqo-bench-recover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let snap_upto = n * 9 / 10;
    {
        let store = sqo_store::ShardedStore::open(&dir, 8).expect("create store dir");
        let put = |oid: u64| {
            store
                .apply(&sqo_store::StoreOp::PutObject {
                    oid,
                    class: "Bench".to_string(),
                    attrs: vec![
                        ("n".to_string(), sqo_store::StoreValue::Int(oid as i64)),
                        (
                            "name".to_string(),
                            sqo_store::StoreValue::Str(format!("obj{oid}")),
                        ),
                    ],
                })
                .expect("apply put");
        };
        for oid in 1..=snap_upto {
            put(oid);
        }
        store.persist().expect("persist snapshot");
        for oid in snap_upto + 1..=n {
            put(oid);
        }
        store.bump_next_oid(n + 1);
        store.sync().expect("sync wal tail");
    }
    let t0 = Instant::now();
    let store = sqo_store::ShardedStore::open(&dir, 8).expect("recover store");
    let ns = t0.elapsed().as_secs_f64() * 1e9;
    assert_eq!(store.object_count() as u64, n, "recovery lost objects");
    let report = store.recover_report().clone();
    assert!(report.had_snapshot, "recovery should load the snapshot");
    assert!(
        report.wal_records_replayed > 0,
        "recovery should replay the WAL tail"
    );
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "store recovery: {n} objects (snapshot {snap_upto} + WAL tail {}) in {:.0} ms",
        n - snap_upto,
        ns / 1e6
    );
    (n as usize, ns)
}

/// Measure the e1/f2 pipeline benchmarks in the current engine
/// configuration and in the pre-optimization baseline (string
/// canonical-key dedup + sequential frontier, both kept as ablation
/// knobs), then write the flat `{"name": median_ns}` map to
/// `BENCH_pipeline.json` at the repo root.
fn bench_pipeline(quick: bool) {
    println!("\n## Pipeline benchmarks — current engine vs. baseline paths");
    // The microsecond-scale e1 entries need many repetitions for a
    // stable median on a busy machine; the f2 search is ~tens of ms.
    let reps_small = if quick { 25 } else { 201 };
    let reps = if quick { 7 } else { 21 };
    let mut bench: BTreeMap<String, f64> = BTreeMap::new();
    let current = SearchConfig::default();
    // The pre-optimization baseline: the exhaustive level-BFS engine with
    // string canonical-key dedup, run sequentially. `strategy` is pinned
    // because the config default is now the best-first engine.
    let baseline = SearchConfig {
        strategy: search::Strategy::Bfs,
        dedup: DedupMode::CanonicalKey,
        ..Default::default()
    };
    // The pre-PR *default* engine (parallel BFS with fingerprint dedup):
    // unlike the historical `*_seed` medians merged from the manifest,
    // this path is still compiled in behind `--search=bfs`, so the wide-IC
    // seed rows below are re-measured on every full run.
    let seed_cfg = SearchConfig {
        strategy: search::Strategy::Bfs,
        ..Default::default()
    };

    // Setup shared by every measurement round.
    //
    // e1: Example 1's residue application and contradiction detection.
    let e1_ctx = TransformContext::new(
        ResidueSet::compile(vec![parse_constraint(
            "ic: Age > 30 <- faculty(Sec, Fac, Age).",
        )
        .unwrap()]),
        vec![],
        BTreeMap::new(),
    );
    let attach =
        parse_query("Q(Name) <- student(St, Name), takes_section(St, Sec), faculty(Sec, F, Age)")
            .unwrap();
    let refute = parse_query(
        "Q(Name) <- student(St, Name), takes_section(St, Sec), \
         faculty(Sec, F, Age), Age < 18",
    )
    .unwrap();
    // e1: semantic compilation at the largest configured size (indexed
    // inclusion-closure path; absolute number for regression tracking).
    let ics: Vec<_> = (0..64)
        .map(|i| {
            parse_constraint(&format!("ic: Age > {} <- faculty{}(S, F, Age).", 30 + i, i)).unwrap()
        })
        .collect();
    // f2: Step-3 search at the historically largest configured IC count.
    let (mut opt, oql) = optimizer_with_n_ics(12);
    let parsed = sqo_oql::parse_oql(oql).unwrap();
    let q = opt.translate(&parsed).unwrap().query;
    let ctx = opt.compile();
    // f2 wide-IC: the 32- and 64-IC scenarios the best-first engine's
    // analysis cache and exactness prefilter are built for.
    let (mut opt32, oql32) = optimizer_with_n_ics(32);
    let q32 = opt32
        .translate(&sqo_oql::parse_oql(oql32).unwrap())
        .unwrap()
        .query;
    let ctx32 = opt32.compile();
    let (mut opt64, oql64) = optimizer_with_n_ics(64);
    let q64 = opt64
        .translate(&sqo_oql::parse_oql(oql64).unwrap())
        .unwrap()
        .query;
    let ctx64 = opt64.compile();
    // The variant-dedup kernel the search's seen-set runs on: structural
    // canonical_hash fingerprints vs. the baseline rendered canonical_key
    // strings, over the equivalence class Step 3 just produced.
    let variants: Vec<Query> = match search::optimize(&q, ctx, &current) {
        Outcome::Equivalents(vs) => vs.into_iter().map(|v| v.query).collect(),
        Outcome::Contradiction { .. } => unreachable!("range query is satisfiable"),
    };
    // serve: the query-serving path — a prepared (frozen) optimizer
    // answering a parameterized query cold (fresh search per request)
    // vs warm (semantic-plan-cache hit with retargeting).
    let prep = {
        let mut o = SemanticOptimizer::university();
        o.add_constraint_text("ic IC4: Age >= 30 <- faculty(X, N, Age, S, R, Ad).")
            .unwrap();
        o.prepare()
    };
    let serve_q = "select x.name from x in Person where x.age < 25";
    // e3: the indexed-rewrite scenario — the semantic rewrite binds an
    // ordered-indexed column (`salary`) the original query never touches.
    // Three rows: the rewrite on the indexed engine (current), the
    // original on the scan-only engine (baseline — what a user without
    // SQO *and* without indexes pays), and the rewrite on the scan-only
    // engine (seed — the pre-index executor, which is exactly what the
    // seed engine was).
    let e3 = indexed_rewrite_scenario(if quick { 2000 } else { 40_000 });
    {
        // Answer-set sanity once per process: all four engine/query
        // combinations agree.
        let (a, _) = execute(&e3.db, &e3.original).unwrap();
        let (b, _) = execute(&e3.db, &e3.optimized).unwrap();
        let (c, _) = execute_with(&e3.db, &e3.original, ExecOptions::scan_only()).unwrap();
        let (d, _) = execute_with(&e3.db, &e3.optimized, ExecOptions::scan_only()).unwrap();
        let sorted = |mut v: Vec<Vec<sqo_datalog::Const>>| {
            v.sort();
            v
        };
        let (a, b, c, d) = (sorted(a), sorted(b), sorted(c), sorted(d));
        assert!(a == b && b == c && c == d, "e3 answer sets must agree");
    }

    // Record the minimum of the per-round medians: the machine this runs
    // on flaps between performance modes on a seconds scale, so a single
    // pass can land entries in different modes; round-robin rounds give
    // every entry a shot at an unloaded window, and the min-of-medians is
    // a standard robust estimator under one-sided noise.
    let rounds = if quick { 1 } else { 3 };
    let record = |bench: &mut BTreeMap<String, f64>, key: &str, v: f64| {
        let e = bench.entry(key.to_string()).or_insert(f64::INFINITY);
        if v < *e {
            *e = v;
        }
    };
    // Always-on instrumentation guard: the same e1 residue workload with
    // obs recording on vs. off (min of per-round medians for both). The
    // workload is microsecond-scale, so full repetitions cost milliseconds
    // — the guard runs at full strength and asserts even in quick mode.
    // Each round measures on and off back-to-back so the per-round ratio
    // cancels whatever performance mode the machine is in; the median of
    // the paired ratios is then robust to both one-sided spikes and mode
    // flapping (independent min-of-on / min-of-off is not: the two mins
    // can land in different modes and report ±2% phantom overhead).
    // Both arms also record a per-request latency histogram sample, as
    // the serving path does on every request, so the budget covers the
    // counter cells *and* the log-bucketed histogram hot path (with obs
    // disabled the record is the same early-return as the counters).
    let mut ratios = Vec::new();
    let mut obs_on_ns = f64::INFINITY;
    let mut obs_off_ns = f64::INFINITY;
    for _round in 0..7 {
        let on = median_ns(501, || {
            let t0 = Instant::now();
            std::hint::black_box(search::optimize(&attach, &e1_ctx, &current));
            obs::record_hist(
                "e1.request",
                u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
            );
        });
        obs::set_enabled(false);
        let off = median_ns(501, || {
            let t0 = Instant::now();
            std::hint::black_box(search::optimize(&attach, &e1_ctx, &current));
            obs::record_hist(
                "e1.request",
                u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
            );
        });
        obs::set_enabled(true);
        ratios.push(on / off);
        obs_on_ns = obs_on_ns.min(on);
        obs_off_ns = obs_off_ns.min(off);
    }
    ratios.sort_by(f64::total_cmp);
    let overhead = ratios[ratios.len() / 2] - 1.0;
    println!(
        "instrumentation overhead on e1/attach_restriction: {:+.2}% (median paired ratio; min on {obs_on_ns:.0} ns, min off {obs_off_ns:.0} ns)",
        overhead * 100.0
    );
    assert!(
        overhead <= 0.02,
        "always-on instrumentation overhead {:.2}% exceeds the 2% budget",
        overhead * 100.0
    );
    for _round in 0..rounds {
        for (name, query) in [
            ("attach_restriction", &attach),
            ("detect_contradiction", &refute),
        ] {
            record(
                &mut bench,
                &format!("e1/{name}"),
                median_ns(reps_small, || {
                    std::hint::black_box(search::optimize(query, &e1_ctx, &current));
                }),
            );
            record(
                &mut bench,
                &format!("e1/{name}_baseline"),
                median_ns(reps_small, || {
                    std::hint::black_box(search::optimize_sequential(query, &e1_ctx, &baseline));
                }),
            );
        }
        record(
            &mut bench,
            "e1/semantic_compilation/64",
            median_ns(reps_small, || {
                std::hint::black_box(ResidueSet::compile(ics.clone()));
            }),
        );
        record(
            &mut bench,
            "f2/step3_sqo_vs_applicable_ics/12",
            median_ns(reps, || {
                std::hint::black_box(search::optimize(&q, ctx, &current));
            }),
        );
        record(
            &mut bench,
            "f2/step3_sqo_vs_applicable_ics/12_baseline",
            median_ns(reps, || {
                std::hint::black_box(search::optimize_sequential(&q, ctx, &baseline));
            }),
        );
        for (label, wq, wctx) in [("32", &q32, ctx32), ("64", &q64, ctx64)] {
            record(
                &mut bench,
                &format!("f2/step3_sqo_vs_applicable_ics/{label}"),
                median_ns(reps, || {
                    std::hint::black_box(search::optimize(wq, wctx, &current));
                }),
            );
            record(
                &mut bench,
                &format!("f2/step3_sqo_vs_applicable_ics/{label}_baseline"),
                median_ns(reps, || {
                    std::hint::black_box(search::optimize_sequential(wq, wctx, &baseline));
                }),
            );
            record(
                &mut bench,
                &format!("f2/step3_sqo_vs_applicable_ics/{label}_seed"),
                median_ns(reps, || {
                    std::hint::black_box(search::optimize(wq, wctx, &seed_cfg));
                }),
            );
        }
        record(
            &mut bench,
            "e1/canonical_dedup/hash",
            median_ns(reps_small, || {
                let mut seen = HashSet::new();
                for v in &variants {
                    std::hint::black_box(seen.insert(v.canonical_hash()));
                }
            }),
        );
        record(
            &mut bench,
            "e1/canonical_dedup/string_baseline",
            median_ns(reps_small, || {
                let mut seen = HashSet::new();
                for v in &variants {
                    std::hint::black_box(seen.insert(v.canonical_key()));
                }
            }),
        );
        record(
            &mut bench,
            "e3/indexed_rewrite",
            median_ns(reps, || {
                std::hint::black_box(execute(&e3.db, &e3.optimized).unwrap());
            }),
        );
        record(
            &mut bench,
            "e3/indexed_rewrite_baseline",
            median_ns(reps, || {
                std::hint::black_box(
                    execute_with(&e3.db, &e3.original, ExecOptions::scan_only()).unwrap(),
                );
            }),
        );
        record(
            &mut bench,
            "e3/indexed_rewrite_seed",
            median_ns(reps, || {
                std::hint::black_box(
                    execute_with(&e3.db, &e3.optimized, ExecOptions::scan_only()).unwrap(),
                );
            }),
        );
        // Cold: every request pays translation + Step-3 search.
        record(
            &mut bench,
            "serve/cold_miss",
            median_ns(reps, || {
                let cache = PlanCache::new();
                std::hint::black_box(prep.optimize_cached(&cache, serve_q).unwrap());
            }),
        );
        // Warm: the template is cached; requests retarget the cached
        // rewrite set (the baseline is the same request uncached).
        {
            let cache = PlanCache::new();
            record(
                &mut bench,
                "serve/warm_hit",
                median_ns(reps_small, || {
                    std::hint::black_box(prep.optimize_cached(&cache, serve_q).unwrap());
                }),
            );
        }
        record(
            &mut bench,
            "serve/warm_hit_baseline",
            median_ns(reps, || {
                std::hint::black_box(prep.optimize(serve_q).unwrap());
            }),
        );
        // Concurrent warm throughput: every hardware thread hammering
        // one shared cache; recorded as ns/query so the min-of-rounds
        // rule applies (the derived `serve/warm_qps` is written below).
        {
            let cache = PlanCache::new();
            let _ = prep.optimize_cached(&cache, serve_q).unwrap();
            let threads = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2);
            let per_thread = if quick { 16 } else { 64 };
            let t0 = Instant::now();
            std::thread::scope(|s| {
                for _ in 0..threads {
                    s.spawn(|| {
                        for _ in 0..per_thread {
                            std::hint::black_box(prep.optimize_cached(&cache, serve_q).unwrap());
                        }
                    });
                }
            });
            record(
                &mut bench,
                "serve/warm_concurrent_ns_per_query",
                t0.elapsed().as_secs_f64() * 1e9 / (threads * per_thread) as f64,
            );
        }
    }

    // Closed-loop serving phases over real TCP (see bench_serve_phases).
    println!();
    bench_serve_phases(quick, &mut bench);

    // Durable-store cold recovery (snapshot + WAL-tail replay).
    let (_, recover_ns) = bench_store_recovery(quick);
    bench.insert("store/recover_1m_objects".to_string(), recover_ns);

    // Merge with any entries already recorded in the file (notably the
    // `*_seed` medians measured once against the pre-PR seed build,
    // which this binary cannot regenerate), then derive the speedup
    // ratios from the merged map.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    for (k, v) in read_manifest(path) {
        // `speedup/…` is re-derived and `stage/…` re-snapshotted below,
        // so stale entries under either prefix never survive a rewrite.
        if k.starts_with("speedup") || k.starts_with("stage/") || bench.contains_key(&k) {
            continue;
        }
        bench.insert(k, v);
    }
    // Stage-level breakdown: mean span time per pipeline stage, from the
    // observability registry populated by all the work this process did
    // above (parse, translate, search, eval, execute). These carry their
    // own `stage/` namespace and take no part in the speedup derivation.
    for (name, stat) in &obs::snapshot().spans {
        bench.insert(format!("stage/{name}"), stat.mean_ns() as f64);
    }
    let measured: Vec<String> = bench
        .keys()
        .filter(|n| {
            !n.ends_with("_baseline")
                && !n.ends_with("_seed")
                && !n.ends_with("_qps")
                && !n.starts_with("speedup")
                && !n.starts_with("stage/")
                && !n.contains("shed_rate")
        })
        .cloned()
        .collect();
    for name in &measured {
        let cur = bench[name];
        let base_name = if name == "e1/canonical_dedup/hash" {
            "e1/canonical_dedup/string_baseline".to_string()
        } else {
            format!("{name}_baseline")
        };
        if let Some(base) = bench.get(&base_name).copied() {
            bench.insert(format!("speedup/{name}"), base / cur);
        }
        if let Some(seed) = bench.get(&format!("{name}_seed")).copied() {
            bench.insert(format!("speedup_vs_seed/{name}"), seed / cur);
        }
    }
    // Queries/sec is derived, not measured: re-computed from the
    // (min-of-rounds) concurrent ns/query on every full run.
    if let Some(ns) = bench.get("serve/warm_concurrent_ns_per_query").copied() {
        bench.insert("serve/warm_qps".to_string(), 1e9 / ns);
    }

    println!(
        "{:>44} {:>14} {:>10} {:>10}",
        "bench", "median (ns)", "vs base", "vs seed"
    );
    for name in &measured {
        let fmt = |r: Option<&f64>| match r {
            Some(r) => format!("{r:.2}x"),
            None => "-".into(),
        };
        println!(
            "{name:>44} {:>14.0} {:>10} {:>10}",
            bench[name],
            fmt(bench.get(&format!("speedup/{name}"))),
            fmt(bench.get(&format!("speedup_vs_seed/{name}"))),
        );
    }
    if let Some(qps) = bench.get("serve/warm_qps") {
        println!("{:>44} {qps:>14.0} (derived)", "serve/warm_qps");
    }
    if let Some(rate) = bench.get("serve/shed_rate_overload") {
        println!(
            "{:>44} {:>13.1}% (10x overload)",
            "serve/shed_rate_overload",
            rate * 100.0
        );
    }

    // Quick mode trades repetitions for speed; its medians are too noisy
    // to record, so it never overwrites the manifest — and says so, so a
    // CI log never reads as if the manifest were refreshed.
    if quick {
        if std::path::Path::new(path).exists() {
            println!(
                "\n(quick mode — declining to overwrite {path}: quick-run medians \
                 are too noisy to persist; existing manifest kept as-is)"
            );
        } else {
            println!(
                "\n(quick mode — declining to write {path}: quick-run medians are \
                 too noisy to persist; run without --quick to generate it)"
            );
        }
        return;
    }
    write_manifest(path, &bench);
    println!("\n(wrote {path})");
}
