//! Durability and snapshot-isolation integration tests: save/open
//! round-trips through the sharded store, WAL-tail recovery, and the
//! generation-tagged EDB cache that keeps pinned readers isolated from
//! (and unaffected by) later writers.

use sqo_datalog::program::EdbDatabase;
use sqo_objdb::{ObjectDb, Oid, UniversityConfig, Value};
use sqo_obs as obs;
use sqo_odl::fixtures::university_schema;
use std::path::PathBuf;

/// A fresh per-test scratch directory under the system temp dir.
fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sqo_objdb_{}_{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Every base relation of `db`'s EDB as (pred, sorted tuples) — the
/// canonical logical fingerprint we compare across recoveries.
fn edb_fingerprint(db: &ObjectDb) -> Vec<(String, Vec<Vec<sqo_datalog::Const>>)> {
    let edb = db.edb();
    let mut out = Vec::new();
    for decl in &db.catalog().relations {
        if let Some(rel) = edb.relation(&decl.pred) {
            let mut tuples = rel.tuples().to_vec();
            tuples.sort();
            out.push((decl.pred.name().to_string(), tuples));
        }
    }
    out.sort();
    out
}

fn relation_len(edb: &EdbDatabase, pred: &str) -> usize {
    edb.relation(&pred.into()).map(|r| r.len()).unwrap_or(0)
}

#[test]
fn university_save_open_round_trip_is_identical() {
    let data = UniversityConfig {
        persons: 30,
        students: 40,
        faculty: 10,
        courses: 8,
        sections_per_course: 2,
        takes_per_student: 3,
        ..UniversityConfig::default()
    }
    .build()
    .unwrap();
    let mut db = data.db;
    db.define_asr("takes_course", "Student", &["takes", "is_section_of"])
        .unwrap();

    let dir = test_dir("uni_round_trip");
    db.save_to(&dir, 8).unwrap();
    let back = ObjectDb::open(university_schema(), &dir, 8).unwrap();

    assert_eq!(back.object_count(), db.object_count());
    for class in ["Person", "Student", "Faculty", "TA", "Course", "Section"] {
        assert_eq!(back.extent(class), db.extent(class), "extent {class}");
    }
    for &s in &data.students {
        assert_eq!(back.get(s).unwrap().attrs, db.get(s).unwrap().attrs);
        assert_eq!(
            back.linked(s, "takes").unwrap(),
            db.linked(s, "takes").unwrap()
        );
    }
    assert_eq!(back.asr_rules().len(), 1);
    assert_eq!(
        back.asr_rules()[0].to_string(),
        db.asr_rules()[0].to_string()
    );
    assert_eq!(edb_fingerprint(&back), edb_fingerprint(&db));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn wal_only_recovery_replays_every_mutation_kind() {
    let dir = test_dir("wal_only");
    let (s, sec) = {
        let mut db = ObjectDb::open(university_schema(), &dir, 4).unwrap();
        let s = db
            .create(
                "Student",
                vec![("name", "ann".into()), ("age", Value::Int(20))],
            )
            .unwrap();
        let sec = db.create("Section", vec![]).unwrap();
        let sec2 = db.create("Section", vec![]).unwrap();
        let course = db.create("Course", vec![]).unwrap();
        db.link(s, "takes", sec).unwrap();
        db.link(s, "takes", sec2).unwrap();
        db.link(sec, "is_section_of", course).unwrap();
        db.set_attr(s, "age", Value::Int(21)).unwrap();
        db.unlink(s, "takes", sec2).unwrap();
        db.delete(course).unwrap();
        db.define_asr("enrolled", "Student", &["takes"]).unwrap();
        (s, sec)
        // Dropped without persist(): the WAL is the only durable state.
    };
    let back = ObjectDb::open(university_schema(), &dir, 4).unwrap();
    assert_eq!(back.attr(s, "age"), Some(&Value::Int(21)));
    assert_eq!(back.linked(s, "takes").unwrap(), vec![sec]);
    assert_eq!(back.linked(sec, "taken_by").unwrap(), vec![s]);
    assert_eq!(back.extent("Course").len(), 0);
    assert!(back.linked(sec, "is_section_of").unwrap().is_empty());
    assert_eq!(back.asr_rules().len(), 1);
    // New writes allocate past the recovered watermark.
    let mut back = back;
    let fresh = back.create("Person", vec![]).unwrap();
    assert!(fresh.0 > sec.0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn snapshot_plus_wal_tail_recovery() {
    let dir = test_dir("snap_tail");
    let (a, b) = {
        let mut db = ObjectDb::open(university_schema(), &dir, 4).unwrap();
        let a = db
            .create("Person", vec![("name", "before".into())])
            .unwrap();
        let report = db.persist().unwrap().expect("durable");
        assert!(report.snapshot_bytes > 0);
        // Post-snapshot writes live only in the WAL tail.
        let b = db.create("Person", vec![("name", "after".into())]).unwrap();
        db.set_attr(a, "age", Value::Int(33)).unwrap();
        (a, b)
    };
    let back = ObjectDb::open(university_schema(), &dir, 4).unwrap();
    assert_eq!(back.attr(a, "name"), Some(&Value::Str("before".into())));
    assert_eq!(back.attr(a, "age"), Some(&Value::Int(33)));
    assert_eq!(back.attr(b, "name"), Some(&Value::Str("after".into())));
    let report = back.store().unwrap().recover_report().clone();
    assert!(report.had_snapshot);
    assert!(report.wal_records_replayed >= 2);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Satellite regression: a `create` must not disturb cached EDB state
/// pinned at an older generation, and must bump only the written
/// shard's generation — no whole-store invalidation.
#[test]
fn pinned_edb_snapshot_survives_later_writes() {
    obs::set_enabled(true);
    let dir = test_dir("pinned_edb");
    let mut db = ObjectDb::open(university_schema(), &dir, 8).unwrap();
    for i in 0..16 {
        db.create("Person", vec![("name", format!("p{i}").into())])
            .unwrap();
    }
    let g = db.generation();
    let pinned = db.edb_pinned();
    let pinned_people = relation_len(&pinned, "person");
    assert_eq!(pinned_people, 16);

    let store = db.store().unwrap().clone();
    let before_gens: Vec<u64> = (1..=16).map(|oid| store.shard_generation(oid)).collect();
    let snap_before = {
        obs::flush_local();
        obs::snapshot()
    };

    // Writers advance to G+k.
    let fresh = db.create("Person", vec![("name", "late".into())]).unwrap();
    db.set_attr(fresh, "age", Value::Int(9)).unwrap();
    assert!(db.generation() > g);

    // The pinned snapshot is bitwise-stable: same relation contents.
    assert_eq!(relation_len(&pinned, "person"), pinned_people);
    // A fresh read sees the new state.
    assert_eq!(relation_len(&db.edb(), "person"), 17);

    // Only the shards owning the written OIDs advanced. The create
    // wrote two objects (the person and its auto-created Address
    // struct), so up to two shards may legitimately move.
    let store_after = db.store().unwrap();
    let addr = db.attr(fresh, "address").and_then(Value::as_oid).unwrap();
    let shard_of = |oid: u64| {
        (oid.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % store_after.shard_count()
    };
    let written = [shard_of(fresh.0), shard_of(addr.0)];
    for oid in 1..=16u64 {
        if store_after.shard_generation(oid) != before_gens[(oid - 1) as usize] {
            assert!(
                written.contains(&shard_of(oid)),
                "untouched shard generation moved for oid {oid}"
            );
        }
    }

    obs::flush_local();
    let delta = obs::snapshot().since(&snap_before);
    // The writes hit the WAL but did not invalidate any plan cache.
    assert!(delta.counter(obs::Counter::StoreWalAppends) >= 2);
    assert_eq!(delta.counter(obs::Counter::PlanCacheInvalidations), 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Late method materialization copies-on-write: facts land in the
/// current cache entry without leaking into pinned snapshots.
#[test]
fn method_facts_do_not_leak_into_pinned_snapshots() {
    let mut db = ObjectDb::new(university_schema());
    db.create("Faculty", vec![("salary", Value::Real(50_000.0))])
        .unwrap();
    db.register_method(
        "Employee",
        "taxes_withheld",
        Box::new(|db, oid, args| {
            let salary = db
                .attr(oid, "salary")
                .and_then(Value::as_f64)
                .unwrap_or(0.0);
            let rate = args.first().and_then(Value::as_f64).unwrap_or(0.0);
            Ok(Value::Real(salary * rate))
        }),
    )
    .unwrap();
    let pinned = db.edb_pinned();
    assert_eq!(relation_len(&pinned, "taxes_withheld"), 0);
    db.ensure_method_facts("taxes_withheld", &[sqo_datalog::Const::Real(0.1.into())])
        .unwrap();
    // Pinned snapshot untouched; the live cache carries the facts.
    assert_eq!(relation_len(&pinned, "taxes_withheld"), 0);
    assert_eq!(relation_len(&db.edb(), "taxes_withheld"), 1);
    // And the materialization is remembered (no re-invocation).
    let calls = db
        .ensure_method_facts("taxes_withheld", &[sqo_datalog::Const::Real(0.1.into())])
        .unwrap();
    assert_eq!(calls, 0);
}

/// Isolation acceptance check: answers computed against a pinned
/// generation are identical before and after writers advance.
#[test]
fn pinned_generation_answers_are_stable_under_writes() {
    let data = UniversityConfig {
        persons: 10,
        students: 12,
        faculty: 6,
        courses: 4,
        sections_per_course: 2,
        takes_per_student: 2,
        ..UniversityConfig::default()
    }
    .build()
    .unwrap();
    let mut db = data.db;
    let pinned = db.edb_pinned();
    let answers_at_g: Vec<Vec<sqo_datalog::Const>> = {
        let mut t = pinned
            .relation(&"faculty".into())
            .unwrap()
            .tuples()
            .to_vec();
        t.sort();
        t
    };
    for k in 0..25 {
        db.create(
            "Faculty",
            vec![
                ("name", format!("late{k}").into()),
                ("salary", Value::Real(90_000.0)),
            ],
        )
        .unwrap();
    }
    let mut answers_again: Vec<Vec<sqo_datalog::Const>> = pinned
        .relation(&"faculty".into())
        .unwrap()
        .tuples()
        .to_vec();
    answers_again.sort();
    assert_eq!(answers_again, answers_at_g);
    // The live view has moved on.
    assert_eq!(relation_len(&db.edb(), "faculty"), answers_at_g.len() + 25);
}

/// `edb_for_view` builds against a pinned store view: a consistent
/// generation even while the attached store keeps advancing.
#[test]
fn edb_for_view_reads_a_consistent_generation() {
    let dir = test_dir("edb_for_view");
    let mut db = ObjectDb::open(university_schema(), &dir, 4).unwrap();
    let p = db.create("Person", vec![("name", "pin".into())]).unwrap();
    let view = db.store().unwrap().view();
    let g = view.generation();
    db.create("Person", vec![("name", "later".into())]).unwrap();
    let edb = db.edb_for_view(&view).unwrap();
    assert_eq!(relation_len(&edb, "person"), 1);
    assert!(edb
        .relation(&"person".into())
        .unwrap()
        .tuples()
        .iter()
        .any(|t| t[0] == sqo_datalog::Const::Oid(p.0)));
    assert!(db.store().unwrap().generation() > g);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Deleting in one session and recovering in the next leaves no
/// dangling extent or link entries.
#[test]
fn delete_is_durable() {
    let dir = test_dir("delete_durable");
    let (s, sec) = {
        let mut db = ObjectDb::open(university_schema(), &dir, 4).unwrap();
        let s = db.create("Student", vec![]).unwrap();
        let sec = db.create("Section", vec![]).unwrap();
        db.link(s, "takes", sec).unwrap();
        db.delete(s).unwrap();
        (s, sec)
    };
    let back = ObjectDb::open(university_schema(), &dir, 4).unwrap();
    assert!(back.get(s).is_none());
    assert!(back.get(sec).is_some());
    assert_eq!(back.extent("Student").len(), 0);
    assert!(back.linked(sec, "taken_by").unwrap().is_empty());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Compound mutations are crash-atomic: a `link` (relation + inverse)
/// and a `delete` (unlink sweep + removal) each commit as exactly ONE
/// WAL frame, so no crash point can persist a forward link whose
/// inverse is missing, or a half-severed object.
#[test]
fn link_and_delete_commit_as_single_wal_frames() {
    let dir = test_dir("compound_atomic");
    let (s, sec) = {
        let mut db = ObjectDb::open(university_schema(), &dir, 4).unwrap();
        let s = db.create("Student", vec![]).unwrap();
        let sec = db.create("Section", vec![]).unwrap();
        (s, sec)
    };
    let frames = |dir: &PathBuf| {
        let db = ObjectDb::open(university_schema(), dir, 4).unwrap();
        db.store().unwrap().recover_report().wal_records_replayed
    };
    let base = frames(&dir);
    {
        let mut db = ObjectDb::open(university_schema(), &dir, 4).unwrap();
        db.link(s, "takes", sec).unwrap();
    }
    assert_eq!(frames(&dir), base + 1, "link + inverse must be one frame");
    {
        let db = ObjectDb::open(university_schema(), &dir, 4).unwrap();
        assert_eq!(db.linked(sec, "taken_by").unwrap(), vec![s]);
    }
    {
        let mut db = ObjectDb::open(university_schema(), &dir, 4).unwrap();
        db.delete(s).unwrap();
    }
    assert_eq!(
        frames(&dir),
        base + 2,
        "delete's unlinks + removal must be one frame"
    );
    let back = ObjectDb::open(university_schema(), &dir, 4).unwrap();
    assert!(back.get(s).is_none());
    assert!(back.linked(sec, "taken_by").unwrap().is_empty());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Re-opening with a different shard count re-distributes cleanly.
#[test]
fn reshard_on_reopen_preserves_answers() {
    let dir = test_dir("reshard");
    let fingerprint = {
        let data = UniversityConfig {
            persons: 12,
            students: 15,
            faculty: 5,
            courses: 4,
            sections_per_course: 2,
            takes_per_student: 2,
            ..UniversityConfig::default()
        }
        .build()
        .unwrap();
        data.db.save_to(&dir, 8).unwrap();
        let db = ObjectDb::open(university_schema(), &dir, 8).unwrap();
        edb_fingerprint(&db)
    };
    let back = ObjectDb::open(university_schema(), &dir, 3).unwrap();
    assert_eq!(edb_fingerprint(&back), fingerprint);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// OIDs handed out before a crash are never re-issued after recovery.
#[test]
fn oid_watermark_survives_recovery() {
    let dir = test_dir("watermark");
    let last = {
        let mut db = ObjectDb::open(university_schema(), &dir, 4).unwrap();
        let mut last = Oid(0);
        for _ in 0..10 {
            last = db.create("Person", vec![]).unwrap();
        }
        db.delete(last).unwrap();
        last
    };
    let mut back = ObjectDb::open(university_schema(), &dir, 4).unwrap();
    let fresh = back.create("Person", vec![]).unwrap();
    assert!(
        fresh.0 > last.0,
        "fresh {fresh} must outrank deleted {last}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
