//! Deterministic synthetic data for the Figure 1 university schema.
//!
//! The paper evaluates nothing quantitatively (experiments were future
//! work), so our benchmark harness needs a workload: this generator
//! populates the university object base at configurable scale with
//! distributions that make every integrity constraint of the experiments
//! true (faculty older than 30 and paid more than 40K for IC1/IC4, one
//! TA per section for the one-to-one constraint, unique names for the
//! Person key) — see EXPERIMENTS.md.

use crate::error::Result;
use crate::store::ObjectDb;
use crate::value::{Oid, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqo_odl::fixtures::university_schema;
use std::collections::{BTreeMap, BTreeSet};

/// Scale and distribution knobs for the university workload.
#[derive(Debug, Clone)]
pub struct UniversityConfig {
    /// Plain persons (neither students nor employees).
    pub persons: usize,
    /// Students (TAs are created separately).
    pub students: usize,
    /// Faculty members.
    pub faculty: usize,
    /// Courses.
    pub courses: usize,
    /// Sections per course. One TA is created per section (the
    /// one-to-one `has_ta`).
    pub sections_per_course: usize,
    /// Sections each student (and TA) takes.
    pub takes_per_student: usize,
    /// Fraction of plain persons and students younger than 30 (faculty
    /// are always 30+, per IC4).
    pub young_fraction: f64,
    /// Minimum faculty salary (IC1 keeps this above 40 000).
    pub min_faculty_salary: f64,
    /// Salary spread above the minimum.
    pub salary_spread: f64,
    /// RNG seed (the generator is fully deterministic).
    pub seed: u64,
}

impl Default for UniversityConfig {
    fn default() -> Self {
        UniversityConfig {
            persons: 200,
            students: 300,
            faculty: 50,
            courses: 40,
            sections_per_course: 3,
            takes_per_student: 4,
            young_fraction: 0.5,
            min_faculty_salary: 40_001.0,
            salary_spread: 80_000.0,
            seed: 42,
        }
    }
}

/// The generated object base plus handles to the created OIDs.
#[derive(Debug)]
pub struct UniversityData {
    /// The populated store (with `taxes_withheld` registered).
    pub db: ObjectDb,
    /// Plain persons.
    pub persons: Vec<Oid>,
    /// Students (excluding TAs).
    pub students: Vec<Oid>,
    /// Faculty.
    pub faculty: Vec<Oid>,
    /// TAs (one per section).
    pub tas: Vec<Oid>,
    /// Courses.
    pub courses: Vec<Oid>,
    /// Sections.
    pub sections: Vec<Oid>,
}

impl UniversityConfig {
    /// Build the object base.
    pub fn build(&self) -> Result<UniversityData> {
        let mut db = ObjectDb::new(university_schema());
        let mut rng = StdRng::seed_from_u64(self.seed);
        let cities = ["college park", "baltimore", "towson", "annapolis"];

        let mut persons = Vec::with_capacity(self.persons);
        for i in 0..self.persons {
            let young = rng.gen_bool(self.young_fraction);
            let age = if young {
                rng.gen_range(16..30)
            } else {
                rng.gen_range(30..80)
            };
            let addr = db.create_struct(
                "Address",
                vec![
                    ("street", format!("{i} main st").into()),
                    ("city", (*cities.get(i % cities.len()).unwrap()).into()),
                ],
            )?;
            persons.push(db.create(
                "Person",
                vec![
                    ("name", format!("person{i}").into()),
                    ("age", Value::Int(age)),
                    ("address", addr.into()),
                ],
            )?);
        }

        let mut faculty = Vec::with_capacity(self.faculty);
        for i in 0..self.faculty {
            let addr = db.create_struct(
                "Address",
                vec![
                    ("street", format!("{i} faculty row").into()),
                    ("city", (*cities.get(i % cities.len()).unwrap()).into()),
                ],
            )?;
            faculty.push(db.create(
                "Faculty",
                vec![
                    ("name", format!("faculty{i}").into()),
                    ("age", Value::Int(rng.gen_range(30..70))),
                    (
                        "salary",
                        Value::Real(if self.salary_spread > 0.0 {
                            self.min_faculty_salary + rng.gen_range(0.0..self.salary_spread)
                        } else {
                            self.min_faculty_salary
                        }),
                    ),
                    (
                        "rank",
                        if i % 3 == 0 { "professor" } else { "assistant" }.into(),
                    ),
                    ("address", addr.into()),
                ],
            )?);
        }

        let mut students = Vec::with_capacity(self.students);
        for i in 0..self.students {
            let young = rng.gen_bool(self.young_fraction);
            let age = if young {
                rng.gen_range(17..30)
            } else {
                rng.gen_range(30..55)
            };
            students.push(db.create(
                "Student",
                vec![
                    ("name", format!("student{i}").into()),
                    ("age", Value::Int(age)),
                    ("student_id", format!("s{i}").into()),
                ],
            )?);
        }

        let mut courses = Vec::with_capacity(self.courses);
        let mut sections = Vec::new();
        for i in 0..self.courses {
            let c = db.create(
                "Course",
                vec![
                    ("number", format!("cmsc{i}").into()),
                    ("title", format!("course {i}").into()),
                ],
            )?;
            courses.push(c);
            for j in 0..self.sections_per_course {
                let s = db.create("Section", vec![("number", format!("cmsc{i}.{j}").into())])?;
                db.link(s, "is_section_of", c)?;
                if !faculty.is_empty() {
                    let f = faculty[rng.gen_range(0..faculty.len())];
                    db.link(s, "is_taught_by", f)?;
                }
                sections.push(s);
            }
        }

        // One TA per section (the one-to-one has_ta / assists pair).
        let mut tas = Vec::with_capacity(sections.len());
        for (i, s) in sections.iter().enumerate() {
            let ta = db.create(
                "TA",
                vec![
                    ("name", format!("ta{i}").into()),
                    ("age", Value::Int(rng.gen_range(20..35))),
                    ("student_id", format!("t{i}").into()),
                    ("employee_id", format!("e{i}").into()),
                ],
            )?;
            db.link(*s, "has_ta", ta)?;
            tas.push(ta);
        }

        // Enrollment: students and TAs take random sections.
        if !sections.is_empty() {
            for &st in students.iter().chain(&tas) {
                let mut chosen = std::collections::HashSet::new();
                for _ in 0..self.takes_per_student {
                    let s = sections[rng.gen_range(0..sections.len())];
                    if chosen.insert(s) {
                        db.link(st, "takes", s)?;
                    }
                }
            }
        }

        register_university_methods(&mut db)?;

        Ok(UniversityData {
            db,
            persons,
            students,
            faculty,
            tas,
            courses,
            sections,
        })
    }
}

/// Register the university schema's method implementations on `db`.
///
/// Methods are Rust closures and are not persisted by the durable
/// store, so a database recovered with `ObjectDb::open` needs them
/// re-registered before method-bearing queries execute. The paper's
/// method: `taxes_withheld(rate) = salary * rate` — monotone in salary
/// (IC2) and positive.
pub fn register_university_methods(db: &mut ObjectDb) -> Result<()> {
    db.register_method(
        "Employee",
        "taxes_withheld",
        Box::new(|db, oid, args| {
            let salary = db
                .attr(oid, "salary")
                .and_then(Value::as_f64)
                .unwrap_or(0.0);
            let rate = args.first().and_then(Value::as_f64).unwrap_or(0.0);
            Ok(Value::Real(salary * rate))
        }),
    )
}

/// Population knobs for an *arbitrary* schema — the IC-aware generator
/// behind the differential fuzz harness.
///
/// The caller (the fuzz case generator) guarantees integrity constraints
/// by construction: every range IC it emits narrows the corresponding
/// attribute's entry in [`GenericConfig::int_ranges`], so any population
/// drawn from the final ranges satisfies every IC — including ICs over
/// subclass relations, because the ranges are global per attribute name
/// and class relations include their subclass members.
#[derive(Debug, Clone, Default)]
pub struct GenericConfig {
    /// Objects to create per concrete class, in creation order.
    pub counts: Vec<(String, usize)>,
    /// Inclusive value range per integer attribute name (default `0..=100`).
    pub int_ranges: BTreeMap<String, (i64, i64)>,
    /// Value pool per string attribute name (default a small fixed pool).
    pub str_domains: BTreeMap<String, Vec<String>>,
    /// Attributes (key members) that must be globally unique; they draw
    /// sequential values instead of sampling the domain.
    pub unique_attrs: BTreeSet<String>,
    /// Random targets linked per source object on set-valued
    /// relationships (to-one sides always link exactly once).
    pub links_per_object: usize,
    /// RNG seed (the generator is fully deterministic).
    pub seed: u64,
}

/// A populated store plus the created OIDs per concrete class.
#[derive(Debug)]
pub struct GenericData {
    /// The populated store.
    pub db: ObjectDb,
    /// OIDs created per class name (exactly the objects whose concrete
    /// class is the key — superclass extents additionally include them).
    pub oids: BTreeMap<String, Vec<Oid>>,
}

impl GenericConfig {
    /// Populate `schema` deterministically from the configured
    /// distributions.
    pub fn build(&self, schema: sqo_odl::Schema) -> Result<GenericData> {
        let mut db = ObjectDb::new(schema);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut unique_next: BTreeMap<String, u64> = BTreeMap::new();
        let default_pool = ["alpha", "beta", "gamma", "delta"];
        let mut oids: BTreeMap<String, Vec<Oid>> = BTreeMap::new();

        for (class, n) in &self.counts {
            let decls: Vec<(String, sqo_odl::Type)> = db
                .schema()
                .all_attributes(class)
                .into_iter()
                .map(|(_, a)| (a.name.clone(), a.ty.clone()))
                .collect();
            for _ in 0..*n {
                let mut attrs: Vec<(String, Value)> = Vec::new();
                for (name, ty) in &decls {
                    let unique = self.unique_attrs.contains(name);
                    let value = match ty {
                        sqo_odl::Type::Base(sqo_odl::BaseType::Int) => {
                            if unique {
                                let c = unique_next.entry(name.clone()).or_insert(0);
                                *c += 1;
                                Value::Int(*c as i64)
                            } else {
                                let (lo, hi) =
                                    self.int_ranges.get(name).copied().unwrap_or((0, 100));
                                Value::Int(rng.gen_range(lo..hi + 1))
                            }
                        }
                        sqo_odl::Type::Base(sqo_odl::BaseType::Real) => {
                            let (lo, hi) = self.int_ranges.get(name).copied().unwrap_or((0, 100));
                            Value::Real(rng.gen_range(lo as f64..(hi + 1) as f64))
                        }
                        sqo_odl::Type::Base(sqo_odl::BaseType::Str) => {
                            if unique {
                                let c = unique_next.entry(name.clone()).or_insert(0);
                                *c += 1;
                                Value::Str(format!("{name}_{c}"))
                            } else {
                                let pool = self.str_domains.get(name);
                                let len = pool.map_or(default_pool.len(), Vec::len).max(1);
                                let i = rng.gen_range(0usize..len);
                                Value::Str(match pool {
                                    Some(p) if !p.is_empty() => p[i].clone(),
                                    _ => default_pool[i].to_string(),
                                })
                            }
                        }
                        sqo_odl::Type::Base(sqo_odl::BaseType::Bool) => {
                            Value::Bool(rng.gen_bool(0.5))
                        }
                        // Structure attributes get auto-created defaults.
                        _ => continue,
                    };
                    attrs.push((name.clone(), value));
                }
                let attrs_ref: Vec<(&str, Value)> =
                    attrs.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
                let oid = db.create(class, attrs_ref)?;
                oids.entry(class.clone()).or_default().push(oid);
            }
        }

        // Link relationships. Each relationship pair is processed from
        // exactly one of its two declared sides: the to-one side when
        // cardinalities differ (so the cardinality bound can never be
        // violated), the lexicographically smaller side otherwise.
        let rels: Vec<(String, String, bool, String, String, bool)> = db
            .schema()
            .classes()
            .iter()
            .flat_map(|c| {
                c.relationships.iter().map(|r| {
                    let inv_many = r
                        .inverse
                        .as_ref()
                        .and_then(|(icls, irel)| {
                            db.schema()
                                .class(icls)?
                                .relationships
                                .iter()
                                .find(|x| x.name == *irel)
                        })
                        .is_none_or(|x| x.many);
                    let inv_name = r
                        .inverse
                        .as_ref()
                        .map(|(_, n)| n.clone())
                        .unwrap_or_default();
                    (
                        c.name.clone(),
                        r.name.clone(),
                        r.many,
                        r.target.clone(),
                        inv_name,
                        inv_many,
                    )
                })
            })
            .collect();
        for (class, rel, many, target, inv_name, inv_many) in rels {
            let process = match (many, inv_many) {
                (false, true) => true,
                (true, false) => false, // handled from the to-one side
                _ => (class.as_str(), rel.as_str()) <= (target.as_str(), inv_name.as_str()),
            };
            if !process {
                continue;
            }
            let sources = db.extent(&class).to_vec();
            let targets = db.extent(&target).to_vec();
            if targets.is_empty() {
                continue;
            }
            if !many && !inv_many {
                // One-to-one: pair by index.
                for (s, t) in sources.iter().zip(&targets) {
                    db.link(*s, &rel, *t)?;
                }
            } else if !many {
                // To-one side of a one-to-many pair: one target each.
                for s in sources {
                    let t = targets[rng.gen_range(0usize..targets.len())];
                    db.link(s, &rel, t)?;
                }
            } else {
                // Many-to-many: a few random targets each (idempotent
                // links make duplicate draws harmless).
                for s in sources {
                    for _ in 0..self.links_per_object {
                        let t = targets[rng.gen_range(0usize..targets.len())];
                        db.link(s, &rel, t)?;
                    }
                }
            }
        }

        Ok(GenericData { db, oids })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_build_is_consistent() {
        let data = UniversityConfig::default().build().unwrap();
        assert_eq!(data.persons.len(), 200);
        assert_eq!(data.faculty.len(), 50);
        assert_eq!(data.sections.len(), 40 * 3);
        assert_eq!(data.tas.len(), data.sections.len());
        // Person extent includes everyone.
        let person_extent = data.db.extent("Person").len();
        assert_eq!(
            person_extent,
            200 + 300 + 50 + data.tas.len(),
            "persons + students + faculty + tas"
        );
        // Faculty invariants: age ≥ 30, salary > 40000 (IC4/IC1).
        for f in &data.faculty {
            let age = data.db.attr(*f, "age").unwrap();
            let salary = data.db.attr(*f, "salary").and_then(Value::as_f64).unwrap();
            assert!(matches!(age, Value::Int(a) if *a >= 30));
            assert!(salary > 40_000.0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = UniversityConfig {
            persons: 10,
            students: 10,
            faculty: 5,
            courses: 3,
            ..Default::default()
        }
        .build()
        .unwrap();
        let b = UniversityConfig {
            persons: 10,
            students: 10,
            faculty: 5,
            courses: 3,
            ..Default::default()
        }
        .build()
        .unwrap();
        for (x, y) in a.persons.iter().zip(&b.persons) {
            assert_eq!(
                a.db.attr(*x, "age"),
                b.db.attr(*y, "age"),
                "same seed, same data"
            );
        }
    }

    #[test]
    fn method_registered_and_monotone() {
        let data = UniversityConfig {
            faculty: 10,
            ..Default::default()
        }
        .build()
        .unwrap();
        let mut pairs: Vec<(f64, f64)> = data
            .faculty
            .iter()
            .map(|f| {
                let salary = data.db.attr(*f, "salary").and_then(Value::as_f64).unwrap();
                let tax = data
                    .db
                    .call_method("taxes_withheld", *f, &[Value::Real(0.1)])
                    .unwrap()
                    .as_f64()
                    .unwrap();
                (salary, tax)
            })
            .collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in pairs.windows(2) {
            assert!(w[1].1 >= w[0].1, "monotone in salary (IC2)");
        }
        // All faculty taxes at 10% exceed 4000 (salary > 40000) — the
        // basis of IC3 in Application 1.
        for (_, tax) in pairs {
            assert!(tax > 4000.0);
        }
    }

    #[test]
    fn generic_build_respects_ranges_and_uniques() {
        let cfg = GenericConfig {
            counts: vec![("Person".into(), 12), ("Faculty".into(), 6)],
            int_ranges: [("age".to_string(), (30, 40))].into_iter().collect(),
            unique_attrs: ["name".to_string()].into_iter().collect(),
            links_per_object: 2,
            seed: 7,
            ..Default::default()
        };
        let data = cfg.build(university_schema()).unwrap();
        assert_eq!(data.oids["Person"].len(), 12);
        assert_eq!(data.db.extent("Person").len(), 18);
        let mut names = std::collections::HashSet::new();
        for oid in data.db.extent("Person").to_vec() {
            let Value::Int(age) = data.db.attr(oid, "age").unwrap() else {
                panic!("age is an int");
            };
            assert!((30..=40).contains(age), "age {age} within range");
            let Value::Str(name) = data.db.attr(oid, "name").unwrap().clone() else {
                panic!("name is a string");
            };
            assert!(names.insert(name), "key attribute is unique");
        }
        // Determinism: same seed, same store.
        let again = cfg.build(university_schema()).unwrap();
        for (a, b) in data.oids["Faculty"].iter().zip(&again.oids["Faculty"]) {
            assert_eq!(data.db.attr(*a, "age"), again.db.attr(*b, "age"));
        }
    }

    #[test]
    fn tas_enroll_like_students() {
        let data = UniversityConfig {
            students: 5,
            courses: 4,
            ..Default::default()
        }
        .build()
        .unwrap();
        let ta = data.tas[0];
        assert!(!data.db.linked(ta, "takes").unwrap().is_empty());
    }
}
