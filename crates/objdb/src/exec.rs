//! Query execution with an object-level cost model.
//!
//! The paper's optimizations pay off in *object accesses*, not only in
//! generic join work, so the executor distinguishes:
//!
//! * **object fetches** — probes of full class/structure relations
//!   (reading attributes requires fetching the object);
//! * **extent probes** — membership tests against a class extent. A
//!   class atom none of whose attribute variables is used elsewhere is
//!   rewritten to a unary `{pred}__extent` atom before evaluation; this
//!   is exactly the plan the paper sketches for Application 2 ("use the
//!   class extents … and then retrieve only those object instances") and
//!   Application 3 (compare OIDs without retrieving Faculty objects);
//! * **relationship traversals**, **view (ASR) probes** and **method
//!   invocations**.

use crate::error::{ObjDbError, Result};
use crate::store::ObjectDb;
use sqo_datalog::eval::{answer_query_with, EvalOptions};
use sqo_datalog::{Atom, Const, Literal, PredSym, Query, Term, Var};
use sqo_translate::RelKind;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// The cost of one query evaluation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CostReport {
    /// Number of answer tuples.
    pub answers: usize,
    /// Probes of full class/structure relations.
    pub object_fetches: u64,
    /// Probes of unary extent relations (positive or anti-join).
    pub extent_probes: u64,
    /// Probes of relationship relations.
    pub rel_traversals: u64,
    /// Probes of access-support-relation (view) relations.
    pub view_probes: u64,
    /// Probes of method relations (the physical analogue of invoking the
    /// method on a candidate object).
    pub method_invocations: u64,
    /// Total tuples examined (all relation kinds).
    pub tuples_examined: u64,
    /// Intermediate join bindings produced.
    pub bindings_produced: u64,
    /// Anti-join probes.
    pub negation_probes: u64,
    /// Equality probes against declared hash indexes.
    pub index_probes: u64,
    /// Range probes against declared ordered indexes.
    pub range_probes: u64,
    /// Full relation passes (explicit scans plus ephemeral index builds).
    pub scans: u64,
    /// Path-expression chains fused into index-nested-loop walks.
    pub chains_fused: u64,
    /// Wall-clock evaluation time.
    pub elapsed: Duration,
    /// Tuples examined per relation (predicate name → count), for
    /// per-class breakdowns in experiment reports.
    pub per_pred: HashMap<String, u64>,
}

impl std::fmt::Display for CostReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "answers={} fetches={} extent={} rel={} view={} method={} tuples={} time={:?}",
            self.answers,
            self.object_fetches,
            self.extent_probes,
            self.rel_traversals,
            self.view_probes,
            self.method_invocations,
            self.tuples_examined,
            self.elapsed
        )
    }
}

/// Rewrite class/structure atoms whose attributes are never used into
/// unary extent atoms (cheap membership tests). Public so the planner can
/// estimate against the same physical shape. Assumes the default
/// (indexed) executor; see [`rewrite_for_extents_with`].
pub fn rewrite_for_extents(db: &ObjectDb, q: &Query) -> Query {
    rewrite_for_extents_with(db, q, ExecOptions::default())
}

/// [`rewrite_for_extents`] for an explicit executor configuration: the
/// extent-first anti-join decomposition is suppressed only when an
/// ordered-index range probe will actually be taken.
pub fn rewrite_for_extents_with(db: &ObjectDb, q: &Query, opts: ExecOptions) -> Query {
    // Count variable occurrences across the whole query.
    let mut occurrences: HashMap<Var, usize> = HashMap::new();
    let bump = |v: &Var, occ: &mut HashMap<Var, usize>| {
        *occ.entry(*v).or_insert(0) += 1;
    };
    for t in &q.projection {
        if let Term::Var(v) = t {
            bump(v, &mut occurrences);
        }
    }
    for l in &q.body {
        for v in l.vars() {
            bump(v, &mut occurrences);
        }
    }
    let is_object_rel = |pred: &PredSym| {
        matches!(
            db.catalog().relation_by_pred(pred).map(|d| &d.kind),
            Some(RelKind::Class { .. }) | Some(RelKind::Struct { .. })
        )
    };
    let rewrite_atom = |a: &Atom| -> Option<Atom> {
        if !is_object_rel(&a.pred) || a.args.is_empty() {
            return None;
        }
        // An attribute position is "used" if its variable occurs anywhere
        // else in the query (more often than inside this atom alone) or
        // is a constant.
        let mut local: HashMap<&Var, usize> = HashMap::new();
        for t in &a.args[1..] {
            if let Term::Var(v) = t {
                *local.entry(v).or_insert(0) += 1;
            }
        }
        let attr_used = a.args[1..].iter().any(|t| match t {
            Term::Const(_) => true,
            Term::Var(v) => occurrences.get(v).copied().unwrap_or(0) > local[v],
        });
        if attr_used {
            None
        } else {
            Some(Atom::new(
                format!("{}__extent", a.pred.name()),
                vec![a.args[0]],
            ))
        }
    };
    // A negated class atom reduces to an extent anti-join when every
    // attribute position either is negation-local or repeats, by attribute
    // name, the value some positive class/structure atom with the same OID
    // already pins (OID functionality + hierarchy consistency make the
    // attribute comparison vacuous) — the faculty case of Application 2.
    let rewrite_neg = |a: &Atom| -> Option<Atom> {
        let decl = db.catalog().relation_by_pred(&a.pred)?;
        if !matches!(decl.kind, RelKind::Class { .. } | RelKind::Struct { .. }) {
            return None;
        }
        let mut local: HashMap<&Var, usize> = HashMap::new();
        for v in a.vars() {
            *local.entry(v).or_insert(0) += 1;
        }
        let oid = a.args.first()?;
        let consistent = a.args[1..].iter().enumerate().all(|(i, t)| {
            let attr = &decl.args[i + 1].name;
            match t {
                Term::Const(_) => false,
                Term::Var(v) => {
                    // Negation-local?
                    if occurrences.get(v).copied().unwrap_or(0) <= local[v] {
                        return true;
                    }
                    // Pinned by a positive object atom with the same OID?
                    q.body.iter().any(|l| match l {
                        Literal::Pos(b) => {
                            let Some(bd) = db.catalog().relation_by_pred(&b.pred) else {
                                return false;
                            };
                            if !matches!(bd.kind, RelKind::Class { .. } | RelKind::Struct { .. }) {
                                return false;
                            }
                            b.args.first() == Some(oid)
                                && bd
                                    .arg_position(attr)
                                    .is_some_and(|j| b.args.get(j) == Some(t))
                        }
                        _ => false,
                    })
                }
            }
        });
        if consistent {
            Some(Atom::new(format!("{}__extent", a.pred.name()), vec![*oid]))
        } else {
            None
        }
    };
    let mut body: Vec<Literal> = q
        .body
        .iter()
        .map(|l| match l {
            Literal::Pos(a) => rewrite_atom(a)
                .map(Literal::Pos)
                .unwrap_or_else(|| l.clone()),
            Literal::Neg(a) => rewrite_atom(a)
                .or_else(|| rewrite_neg(a))
                .map(Literal::Neg)
                .unwrap_or_else(|| l.clone()),
            Literal::Cmp(_) => l.clone(),
        })
        .collect();
    // The paper's Application 2 plan: "first identify those objects that
    // are in class Person but not in class Faculty, and then retrieve
    // only those object instances". When an anti-join restricts the OID
    // of a full class atom, prepend the cheap extent scan so the
    // anti-join runs *before* the object fetches.
    let anti_joined: Vec<Term> = body
        .iter()
        .filter_map(|l| match l {
            Literal::Neg(a) => a.args.first().cloned(),
            _ => None,
        })
        .collect();
    // Dedup by (extent predicate, OID term): several negated atoms
    // restricting the same OID — or several positive atoms sharing one —
    // must not prepend the same extent scan twice. Skip the prefix
    // entirely when the class atom can be range-probed through an
    // ordered index (a harvested bound on an indexed attribute): the
    // extent-first decomposition would force a full extent scan where
    // the index already restricts the fetches.
    let ranges = sqo_datalog::eval::collect_ranges(&body);
    let can_range_probe = |a: &Atom| {
        if opts.scan_only {
            return false;
        }
        let edb = db.edb();
        let Some(rel) = edb.relation(&a.pred) else {
            return false;
        };
        a.args.iter().enumerate().any(|(pos, t)| {
            let Term::Var(v) = t else { return false };
            rel.has_ordered_index(pos)
                && ranges
                    .get(v)
                    .is_some_and(|(lo, hi)| lo.is_some() || hi.is_some())
        })
    };
    let mut prefix: Vec<Literal> = Vec::new();
    let mut seen: Vec<(PredSym, Term)> = Vec::new();
    for l in &body {
        let Literal::Pos(a) = l else { continue };
        if !is_object_rel(&a.pred) || a.args.len() <= 1 || can_range_probe(a) {
            continue;
        }
        if a.args.first().is_some_and(|oid| anti_joined.contains(oid)) {
            let extent = PredSym::new(format!("{}__extent", a.pred.name()));
            let key = (extent, a.args[0]);
            if seen.contains(&key) {
                continue;
            }
            seen.push(key);
            prefix.push(Literal::Pos(Atom {
                pred: extent,
                args: vec![a.args[0]],
            }));
        }
    }
    if !prefix.is_empty() {
        prefix.append(&mut body);
        body = prefix;
    }
    Query::new(q.name.clone(), q.projection.clone(), body)
}

/// Physical knobs for one objdb execution, forwarded to the Datalog
/// engine. [`ExecOptions::scan_only`] reproduces the pre-index executor;
/// the differential tests and the `*_seed`/`*_baseline` bench rows use it
/// as the reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecOptions {
    /// Evaluate without declared-index probes or chain fusion.
    pub scan_only: bool,
}

impl ExecOptions {
    /// The pre-index executor: scans and ephemeral join indexes only.
    pub fn scan_only() -> Self {
        ExecOptions { scan_only: true }
    }

    fn eval_options(self) -> EvalOptions {
        if self.scan_only {
            EvalOptions::scan_only()
        } else {
            EvalOptions::default()
        }
    }
}

/// Execute a Datalog query against the object store, with cost
/// accounting, using the full access-path repertoire.
pub fn execute(db: &ObjectDb, q: &Query) -> Result<(Vec<Vec<Const>>, CostReport)> {
    execute_with(db, q, ExecOptions::default())
}

/// Execute with explicit physical options (see [`ExecOptions`]).
pub fn execute_with(
    db: &ObjectDb,
    q: &Query,
    opts: ExecOptions,
) -> Result<(Vec<Vec<Const>>, CostReport)> {
    let _span = sqo_obs::span!("objdb.execute");
    sqo_obs::bump(sqo_obs::Counter::ExecQueries);
    let physical = rewrite_for_extents_with(db, q, opts);

    // Materialize method facts for every method atom's constant args.
    for l in &physical.body {
        let Literal::Pos(a) = l else { continue };
        let Some(decl) = db.catalog().relation_by_pred(&a.pred) else {
            continue;
        };
        if !matches!(decl.kind, RelKind::Method { .. }) {
            continue;
        }
        if a.args.len() < 2 {
            return Err(ObjDbError::Unsupported {
                feature: format!("method atom `{a}` needs a receiver and a result position"),
            });
        }
        let arg_consts: Option<Vec<Const>> = a.args[1..a.args.len() - 1]
            .iter()
            .map(|t| t.as_const().cloned())
            .collect();
        let Some(arg_consts) = arg_consts else {
            return Err(ObjDbError::Unsupported {
                feature: format!("method atom `{a}` with non-constant arguments"),
            });
        };
        db.ensure_method_facts(a.pred.name(), &arg_consts)?;
    }

    let start = Instant::now();
    let (rows, stats) = {
        let edb = db.edb();
        answer_query_with(&edb, &physical, &opts.eval_options())?
    };
    let elapsed = start.elapsed();

    // Join cardinalities flow into the global observability snapshot so
    // experiment reports read them from one place rather than re-deriving
    // them from per-predicate conversions at the report edge.
    sqo_obs::add(
        sqo_obs::Counter::EvalJoinInputTuples,
        stats.join_input_tuples,
    );
    sqo_obs::add(
        sqo_obs::Counter::EvalJoinOutputTuples,
        stats.join_output_tuples,
    );
    sqo_obs::add(sqo_obs::Counter::ExecIndexProbes, stats.index_probes);
    sqo_obs::add(sqo_obs::Counter::ExecRangeProbes, stats.range_probes);
    sqo_obs::add(sqo_obs::Counter::ExecScans, stats.scans);
    sqo_obs::add(sqo_obs::Counter::ExecChainsFused, stats.chains_fused);

    let mut report = CostReport {
        answers: rows.len(),
        tuples_examined: stats.tuples_examined,
        bindings_produced: stats.bindings_produced,
        negation_probes: stats.negation_probes,
        index_probes: stats.index_probes,
        range_probes: stats.range_probes,
        scans: stats.scans,
        chains_fused: stats.chains_fused,
        elapsed,
        ..Default::default()
    };
    report.per_pred = stats
        .per_pred
        .iter()
        .map(|(k, v)| (k.name().to_string(), *v))
        .collect();
    for (pred, count) in &stats.per_pred {
        if pred.name().ends_with("__extent") {
            report.extent_probes += count;
            continue;
        }
        match db.catalog().relation_by_pred(pred).map(|d| &d.kind) {
            Some(RelKind::Class { .. }) | Some(RelKind::Struct { .. }) => {
                report.object_fetches += count
            }
            Some(RelKind::Relationship { .. }) => report.rel_traversals += count,
            Some(RelKind::View { .. }) => report.view_probes += count,
            Some(RelKind::Method { .. }) => report.method_invocations += count,
            None => {}
        }
    }
    Ok((rows, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use sqo_datalog::parser::parse_query;
    use sqo_odl::fixtures::university_schema;

    fn sample_db() -> ObjectDb {
        let mut d = ObjectDb::new(university_schema());
        for i in 0..10 {
            d.create(
                "Person",
                vec![
                    ("name", format!("p{i}").into()),
                    ("age", Value::Int(20 + i)),
                ],
            )
            .unwrap();
        }
        for i in 0..5 {
            d.create(
                "Faculty",
                vec![
                    ("name", format!("f{i}").into()),
                    ("age", Value::Int(40 + i)),
                    ("salary", Value::Real(50000.0)),
                ],
            )
            .unwrap();
        }
        d
    }

    #[test]
    fn extent_rewrite_applies_when_attrs_unused() {
        let d = sample_db();
        let q = parse_query("Q(X) <- person(X, N, A, Ad)").unwrap();
        let r = rewrite_for_extents(&d, &q);
        assert_eq!(r.to_string(), "q(X) <- person__extent(X)");
        // With an attribute used, the full relation stays.
        let q2 = parse_query("Q(N) <- person(X, N, A, Ad)").unwrap();
        let r2 = rewrite_for_extents(&d, &q2);
        assert_eq!(r2.to_string(), "q(N) <- person(X, N, A, Ad)");
    }

    #[test]
    fn extent_rewrite_handles_negation() {
        let d = sample_db();
        let q =
            parse_query("Q(N) <- person(X, N, A, Ad), A < 30, not faculty(X, N2, A2, S, R, Ad2)")
                .unwrap();
        let r = rewrite_for_extents(&d, &q);
        assert!(r.to_string().contains("not faculty__extent(X)"), "{r}");
        // `A < 30` range-probes the ordered index on age, so the
        // extent-first decomposition is NOT applied — it would force a
        // full extent scan where the index already restricts fetches.
        assert!(
            !r.to_string().starts_with("q(N) <- person__extent(X)"),
            "{r}"
        );
        // Without a range-probe opportunity the anti-joined class atom
        // gets the extent-first decomposition (the paper's Application 2
        // plan).
        let q_no_range =
            parse_query("Q(N) <- person(X, N, A, Ad), not faculty(X, N2, A2, S, R, Ad2)").unwrap();
        let r_no_range = rewrite_for_extents(&d, &q_no_range);
        assert!(
            r_no_range
                .to_string()
                .starts_with("q(N) <- person__extent(X)"),
            "{r_no_range}"
        );
        // A negated atom whose attribute position is pinned by the SAME
        // object's positive atom is still an extent test (consistent
        // storage makes the comparison vacuous).
        let q2 =
            parse_query("Q(N) <- person(X, N, A, Ad), A < 30, not faculty(X, N, A2, S, R, Ad2)")
                .unwrap();
        let r2 = rewrite_for_extents(&d, &q2);
        assert!(r2.to_string().contains("not faculty__extent(X)"), "{r2}");
        // But a constant or a variable pinned by a *different* object
        // keeps the full anti-join (it genuinely filters on attributes).
        let q3 = parse_query("Q(N) <- person(X, N, A, Ad), not faculty(X, \"bob\", A2, S, R, Ad2)")
            .unwrap();
        let r3 = rewrite_for_extents(&d, &q3);
        assert!(r3.to_string().contains("not faculty(X, \"bob\","), "{r3}");
        let q4 = parse_query(
            "Q(N) <- person(X, N, A, Ad), person(Y, N2, A4, Ad4), \
             not faculty(X, N2, A2, S, R, Ad2)",
        )
        .unwrap();
        let r4 = rewrite_for_extents(&d, &q4);
        assert!(r4.to_string().contains("not faculty(X, N2,"), "{r4}");
    }

    #[test]
    fn execute_counts_fetches_vs_extent_probes() {
        let d = sample_db();
        // Attribute-reading query: person fetches.
        let q = parse_query("Q(N) <- person(X, N, A, Ad), A < 25").unwrap();
        let (rows, report) = execute(&d, &q).unwrap();
        assert_eq!(rows.len(), 5); // ages 20..24
                                   // The ordered index on `age` pre-filters: only the matching
                                   // tuples are fetched, and the range probe is counted.
        assert!(report.object_fetches >= 5);
        assert!(report.range_probes >= 1);
        assert_eq!(report.extent_probes, 0);
        // The pre-index executor scans all persons incl faculty.
        let (rows_s, report_s) = execute_with(&d, &q, ExecOptions::scan_only()).unwrap();
        assert_eq!(rows_s, rows);
        assert!(report_s.object_fetches >= 15);
        assert_eq!(report_s.range_probes, 0);
        // OID-only query: extent probes, no fetches.
        let q2 = parse_query("Q(X) <- person(X, N, A, Ad)").unwrap();
        let (rows2, report2) = execute(&d, &q2).unwrap();
        assert_eq!(rows2.len(), 15);
        assert_eq!(report2.object_fetches, 0);
        assert!(report2.extent_probes >= 15);
    }

    #[test]
    fn scope_reduction_reduces_fetches() {
        let d = sample_db();
        // Original: read every person's age.
        let q = parse_query("Q(N) <- person(X, N, A, Ad), A < 45").unwrap();
        let (rows, r1) = execute(&d, &q).unwrap();
        // Scope-reduced: also anti-join the faculty extent.
        let q2 =
            parse_query("Q(N) <- person(X, N, A, Ad), A < 45, not faculty(X, N2, A2, S, R, Ad2)")
                .unwrap();
        let (rows2, r2) = execute(&d, &q2).unwrap();
        // Faculty ages are 40..44, all < 45 — but they are excluded by
        // the anti-join, so answers differ accordingly.
        assert_eq!(rows.len(), 15);
        assert_eq!(rows2.len(), 10);
        assert!(r2.extent_probes > 0);
        assert_eq!(r1.extent_probes, 0);
    }

    #[test]
    fn method_materialization_and_cost() {
        let mut d = sample_db();
        d.register_method(
            "Employee",
            "taxes_withheld",
            Box::new(|db, oid, args| {
                let salary = db
                    .attr(oid, "salary")
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0);
                let rate = args.first().and_then(Value::as_f64).unwrap_or(0.0);
                Ok(Value::Real(salary * rate))
            }),
        )
        .unwrap();
        let q =
            parse_query("Q(X) <- faculty__extent(X), taxes_withheld(X, 0.1, V), V > 1000").unwrap();
        let (rows, report) = execute(&d, &q).unwrap();
        assert_eq!(rows.len(), 5);
        assert!(report.method_invocations >= 5);
    }

    #[test]
    fn non_constant_method_args_rejected() {
        let d = sample_db();
        let q =
            parse_query("Q(X) <- faculty(X, N, A, S, R, Ad), taxes_withheld(X, S, V), V > 1000")
                .unwrap();
        assert!(matches!(
            execute(&d, &q),
            Err(ObjDbError::Unsupported { .. })
        ));
    }
}
