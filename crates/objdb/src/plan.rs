//! A simple cardinality-based cost estimator: the "conventional
//! cost-based optimizer" of the paper's pipeline, which receives the
//! semantically equivalent queries produced by SQO and picks the one
//! whose (estimated) evaluation plan is cheapest.
//!
//! The model is deliberately textbook: greedy join ordering (the same
//! policy as the evaluator), independence-assumption selectivities
//! (`1/distinct` per bound join column, fixed factors for comparisons),
//! and per-relation-kind access weights reflecting the object-level cost
//! of each probe (object fetch ≫ extent probe).
//!
//! The estimator is *index-aware*: each positive atom is priced against
//! the access path the executor would actually pick — a declared hash
//! index on a bound column examines only the expected matches, an
//! ordered index with a harvested range bound examines the true
//! in-range count (probed from the index itself), an ephemeral join
//! index pays a one-time build pass, and everything else is a scan.
//! Distinct counts come from index postings when a hash index exists.

use crate::exec::rewrite_for_extents;
use crate::store::ObjectDb;
use sqo_datalog::eval::{collect_ranges, RangeMap};
use sqo_datalog::program::Relation;
use sqo_datalog::{CmpOp, Literal, PredSym, Query, Term, Var};
use sqo_translate::RelKind;
use std::collections::{HashMap, HashSet};

/// Access weight per probe, by relation kind.
fn weight(db: &ObjectDb, pred: &PredSym) -> f64 {
    if pred.name().ends_with("__extent") {
        return 1.0;
    }
    match db.catalog().relation_by_pred(pred).map(|d| &d.kind) {
        Some(RelKind::Class { .. }) | Some(RelKind::Struct { .. }) => 5.0,
        Some(RelKind::Relationship { .. }) => 2.0,
        Some(RelKind::View { .. }) => 2.0,
        Some(RelKind::Method { .. }) => 8.0,
        None => 2.0,
    }
}

/// Relation cardinality (0 for unknown relations).
fn cardinality(db: &ObjectDb, pred: &PredSym) -> f64 {
    if let Some(stripped) = pred.name().strip_suffix("__extent") {
        return db
            .edb()
            .relation(&PredSym::new(stripped))
            .map(|r| r.len() as f64)
            .unwrap_or(0.0);
    }
    db.edb()
        .relation(pred)
        .map(|r| r.len() as f64)
        .unwrap_or(0.0)
}

/// Distinct-count memo shared across all [`estimate_cost`] calls within
/// one [`choose_best`] — keyed by interned symbol, not by name string.
pub type DistinctMemo = HashMap<(PredSym, usize), f64>;

/// Distinct values in one column of a relation. Reads the declared-index
/// postings count when a hash (or ordered) index covers the column;
/// otherwise falls back to a set-building pass, memoized.
fn distinct(db: &ObjectDb, pred: &PredSym, pos: usize, memo: &mut DistinctMemo) -> f64 {
    let key = (*pred, pos);
    if let Some(&d) = memo.get(&key) {
        return d;
    }
    let d = db
        .edb()
        .relation(pred)
        .map(|r| {
            if let Some(k) = r.index_distinct(pos) {
                return k.max(1) as f64;
            }
            let mut set = HashSet::new();
            for t in r.tuples() {
                if let Some(c) = t.get(pos) {
                    set.insert(*c);
                }
            }
            set.len().max(1) as f64
        })
        .unwrap_or(1.0);
    memo.insert(key, d);
    d
}

/// Selectivity of a range probe on one indexed column: the true in-range
/// fraction, probed from the ordered index, clamped away from 0 and 1 so
/// an estimate never claims a probe is free or useless.
fn range_selectivity(rel: &Relation, pos: usize, v: &Var, ranges: &RangeMap) -> Option<f64> {
    let (lo, hi) = ranges.get(v)?;
    if lo.is_none() && hi.is_none() {
        return None;
    }
    let n = rel.len();
    if n == 0 {
        return None;
    }
    let k = rel.range_count(pos, lo.as_ref(), hi.as_ref())?;
    Some((k as f64 / n as f64).clamp(0.01, 0.95))
}

/// Estimate the evaluation cost of a query against the store. Lower is
/// cheaper. The query is first rewritten to the same physical shape the
/// executor uses (extent atoms for attribute-free class atoms).
pub fn estimate_cost(db: &ObjectDb, q: &Query) -> f64 {
    estimate_cost_memo(db, q, &mut DistinctMemo::new())
}

/// Adapt the store's index-aware plan cost into a best-first search
/// [`CostModel`](sqo_datalog::search::CostModel): the frontier then pops
/// the cheapest-looking variant first. Takes ownership of a store
/// snapshot — [`ObjectDb`] is not `Sync`, so the mutex both serializes
/// estimates and guards the store's interior caches — and shares one
/// [`DistinctMemo`] across every estimate the search makes, so column
/// statistics are computed once per search rather than once per variant.
pub fn search_cost_model(db: ObjectDb) -> sqo_datalog::search::CostModel {
    let state = std::sync::Mutex::new((db, DistinctMemo::new()));
    sqo_datalog::search::CostModel::Estimator(std::sync::Arc::new(move |q: &Query| {
        let mut state = state.lock().expect("cost state poisoned");
        let (db, memo) = &mut *state;
        estimate_cost_memo(db, q, memo)
    }))
}

/// [`estimate_cost`] with a caller-owned distinct memo, so one
/// [`choose_best`] reuses column statistics across all candidates.
pub fn estimate_cost_memo(db: &ObjectDb, q: &Query, memo: &mut DistinctMemo) -> f64 {
    let q = rewrite_for_extents(db, q);
    let ranges = collect_ranges(&q.body);
    let mut bound: HashSet<Var> = HashSet::new();
    let mut remaining: Vec<&Literal> = q.body.iter().collect();
    let mut card = 1.0f64;
    let mut cost = 0.0f64;
    while !remaining.is_empty() {
        // Flush fully-bound non-positive literals first (same policy as
        // the evaluator).
        if let Some(i) = remaining.iter().position(|l| match l {
            Literal::Pos(_) => false,
            _ => l.vars().iter().all(|v| bound.contains(v)),
        }) {
            let l = remaining.remove(i);
            match l {
                Literal::Cmp(c) => {
                    let sel = match c.op {
                        CmpOp::Eq => 0.1,
                        CmpOp::Ne => 0.9,
                        _ => 0.33,
                    };
                    card = (card * sel).max(0.0);
                }
                Literal::Neg(a) => {
                    cost += card * weight(db, &a.pred);
                    card *= 0.5;
                }
                Literal::Pos(_) => unreachable!(),
            }
            continue;
        }
        // Pick the positive literal sharing the most bound variables.
        let best = remaining
            .iter()
            .enumerate()
            .filter(|(_, l)| l.is_positive())
            .max_by(|(i, a), (j, b)| {
                let sa = a.vars().iter().filter(|v| bound.contains(**v)).count();
                let sb = b.vars().iter().filter(|v| bound.contains(**v)).count();
                sa.cmp(&sb).then(j.cmp(i))
            })
            .map(|(i, _)| i);
        let Some(i) = best else {
            // Only unbound negatives/cmps remain; charge a flat penalty.
            cost += card;
            break;
        };
        let l = remaining.remove(i);
        let Literal::Pos(a) = l else { unreachable!() };
        let n = cardinality(db, &a.pred);
        let w = weight(db, &a.pred);
        let mut sel = 1.0;
        let mut bound_pos: Vec<usize> = Vec::new();
        for (pos, t) in a.args.iter().enumerate() {
            let is_bound = match t {
                Term::Const(_) => true,
                Term::Var(v) => bound.contains(v),
            };
            if is_bound {
                bound_pos.push(pos);
                sel /= distinct(db, &a.pred, pos, memo);
            }
        }
        // Repeated variables within the atom also filter.
        let mut seen: HashSet<&Var> = HashSet::new();
        for t in &a.args {
            if let Term::Var(v) = t {
                if !seen.insert(v) {
                    sel *= 0.1;
                }
            }
        }
        // Access-path pricing, mirroring the executor's choice order:
        // hash probe on a bound indexed column examines only the expected
        // matches; a range probe examines the true in-range count (read
        // off the ordered index); an ephemeral join index pays a one-time
        // build pass then examines matches; everything else scans.
        let (hash_hit, range_sel) = {
            let edb = db.edb();
            match edb.relation(&a.pred) {
                None => (false, None),
                Some(rel) => {
                    let hash_hit = bound_pos.iter().any(|&p| rel.has_hash_index(p));
                    let range_sel = if !hash_hit && bound_pos.is_empty() {
                        a.args
                            .iter()
                            .enumerate()
                            .filter_map(|(pos, t)| {
                                let Term::Var(v) = t else { return None };
                                if !rel.has_ordered_index(pos) {
                                    return None;
                                }
                                range_selectivity(rel, pos, v, &ranges)
                            })
                            .fold(None, |acc: Option<f64>, s| {
                                Some(acc.map_or(s, |a| a.min(s)))
                            })
                    } else {
                        None
                    };
                    (hash_hit, range_sel)
                }
            }
        };
        let examined = if hash_hit {
            (n * sel).max(1.0)
        } else if let Some(rsel) = range_sel {
            (n * rsel).max(1.0)
        } else if !bound_pos.is_empty() {
            cost += n * w; // ephemeral index build: one full pass
            (n * sel).max(1.0)
        } else {
            n.max(1.0)
        };
        let produced = (card * n * sel).max(0.0);
        cost += card.max(1.0) * examined * w;
        card = produced;
        for v in a.vars() {
            bound.insert(*v);
        }
    }
    // Result materialization: a more selective query produces fewer
    // output tuples.
    cost + card
}

/// Choose the cheapest query among semantically equivalent candidates.
/// Returns the winning index and all estimates.
///
/// Exact cost ties are broken deterministically: prefer the candidate
/// with fewer body literals, then the lower index — so the winner does
/// not depend on the enumeration order of the equivalent set.
pub fn choose_best(db: &ObjectDb, queries: &[Query]) -> (usize, Vec<f64>) {
    let mut memo = DistinctMemo::new();
    let costs: Vec<f64> = queries
        .iter()
        .map(|q| estimate_cost_memo(db, q, &mut memo))
        .collect();
    let mut best = 0;
    for (i, c) in costs.iter().enumerate() {
        if *c < costs[best]
            || (*c == costs[best] && queries[i].body.len() < queries[best].body.len())
        {
            best = i;
        }
    }
    (best, costs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use sqo_datalog::parser::parse_query;
    use sqo_odl::fixtures::university_schema;

    fn db_with_path() -> ObjectDb {
        let mut d = ObjectDb::new(university_schema());
        let mut sections = Vec::new();
        for i in 0..20 {
            let c = d
                .create("Course", vec![("number", format!("c{i}").into())])
                .unwrap();
            for j in 0..3 {
                let s = d
                    .create("Section", vec![("number", format!("c{i}s{j}").into())])
                    .unwrap();
                d.link(s, "is_section_of", c).unwrap();
                sections.push(s);
            }
        }
        for i in 0..40 {
            let st = d
                .create("Student", vec![("name", format!("st{i}").into())])
                .unwrap();
            d.link(st, "takes", sections[i % sections.len()]).unwrap();
            d.link(st, "takes", sections[(i * 7 + 1) % sections.len()])
                .unwrap();
        }
        for (i, s) in sections.iter().enumerate() {
            let ta = d
                .create(
                    "TA",
                    vec![
                        ("name", format!("ta{i}").into()),
                        ("employee_id", format!("e{i}").into()),
                    ],
                )
                .unwrap();
            d.link(*s, "has_ta", ta).unwrap();
        }
        d
    }

    #[test]
    fn asr_variant_estimates_cheaper_than_chain() {
        let mut d = db_with_path();
        d.define_asr(
            "asr",
            "Student",
            &["takes", "is_section_of", "has_sections", "has_ta"],
        )
        .unwrap();
        let chain = parse_query(
            "Q(W) <- student(X, N, A, Sid, Ad), takes(X, Y), is_section_of(Y, Z), \
             has_sections(Z, V), has_ta(V, W), N = \"st1\"",
        )
        .unwrap();
        let folded =
            parse_query("Q(W) <- student(X, N, A, Sid, Ad), asr(X, W), N = \"st1\"").unwrap();
        let (best, costs) = choose_best(&d, &[chain, folded]);
        assert_eq!(best, 1, "costs: {costs:?}");
    }

    #[test]
    fn extent_shape_estimates_cheaper_than_fetch() {
        let d = db_with_path();
        // OID-only person atom (rewritten to an extent probe) vs
        // attribute-reading one.
        let cheap = parse_query("Q(X) <- student(X, N, A, Sid, Ad)").unwrap();
        let costly = parse_query("Q(N) <- student(X, N, A, Sid, Ad)").unwrap();
        assert!(estimate_cost(&d, &cheap) < estimate_cost(&d, &costly));
    }

    #[test]
    fn restriction_lowers_estimate() {
        let mut d = db_with_path();
        d.create("Person", vec![("age", Value::Int(20))]).unwrap();
        let broad = parse_query("Q(N) <- person(X, N, A, Ad)").unwrap();
        let narrow = parse_query("Q(N) <- person(X, N, A, Ad), A < 30").unwrap();
        assert!(estimate_cost(&d, &narrow) < estimate_cost(&d, &broad));
    }

    #[test]
    fn choose_best_returns_all_costs() {
        let d = db_with_path();
        let q1 = parse_query("Q(X) <- student(X, N, A, Sid, Ad)").unwrap();
        let q2 = parse_query("Q(X) <- ta(X, N, A, Sid, Eid, Ad)").unwrap();
        let (best, costs) = choose_best(&d, &[q1, q2]);
        assert_eq!(costs.len(), 2);
        assert!(best < 2);
    }

    #[test]
    fn search_cost_model_drives_best_first_frontier() {
        use sqo_datalog::parser::parse_constraint;
        use sqo_datalog::residue::ResidueSet;
        use sqo_datalog::search::{optimize, Outcome, SearchConfig};
        use sqo_datalog::transform::TransformContext;
        use std::collections::{BTreeMap, BTreeSet};

        let db = db_with_path();
        let q = parse_query("Q(N) <- student(X, N, A, Sid, Ad), A < 30").unwrap();

        // The adapter must agree with the unmemoized estimate. The store
        // construction is deterministic, so a second instance carries
        // identical statistics.
        let model = search_cost_model(db_with_path());
        let sqo_datalog::search::CostModel::Estimator(est) = &model else {
            panic!("adapter returns an estimator");
        };
        assert_eq!(est(&q), estimate_cost(&db, &q));
        // Memoized second call: same statistics, same answer.
        assert_eq!(est(&q), estimate_cost(&db, &q));

        // Plugged into the search, a cost-ordered single-node frontier
        // must still explore exactly the variant set BFS order explores.
        let ics: Vec<_> = [
            "ic A1: A >= 16 <- student(X, N, A, Sid, Ad).",
            "ic A2: A >= 17 <- ta(X, N, A, Sid, Eid, Ad).",
        ]
        .iter()
        .map(|s| parse_constraint(s).unwrap())
        .collect();
        let ctx = TransformContext::new(ResidueSet::compile(ics), vec![], BTreeMap::new());
        let costed = optimize(
            &q,
            &ctx,
            &SearchConfig {
                cost_model: model,
                frontier_slice: Some(1),
                ..Default::default()
            },
        );
        let default = optimize(&q, &ctx, &SearchConfig::default());
        let keys = |o: &Outcome| -> BTreeSet<String> {
            o.variants()
                .iter()
                .map(|va| va.query.canonical_key())
                .collect()
        };
        assert_eq!(keys(&costed), keys(&default));
    }

    #[test]
    fn choose_best_breaks_exact_ties_by_body_length() {
        let d = ObjectDb::new(university_schema());
        // Both probe one unknown relation (cost 2.0 exactly); the ground
        // comparison is free, so the costs tie to the bit. The shorter
        // candidate must win even though it is enumerated second.
        let longer = Query::new(
            "q",
            vec![],
            vec![
                Literal::pos("u1", vec![Term::var("X")]),
                Literal::cmp(Term::int(1), CmpOp::Lt, Term::int(2)),
            ],
        );
        let shorter = Query::new("q", vec![], vec![Literal::pos("u2", vec![Term::var("X")])]);
        let (best, costs) = choose_best(&d, &[longer.clone(), shorter.clone()]);
        assert_eq!(costs[0], costs[1], "test premise: an exact cost tie");
        assert_eq!(best, 1, "shorter body wins the tie");
        // Among equal-length, equal-cost candidates the lower index wins,
        // so the choice is stable under permutation of the rest.
        let (best, _) = choose_best(&d, &[shorter.clone(), shorter]);
        assert_eq!(best, 0);
    }
}
