//! Object identifiers and attribute values.

use sqo_datalog::{Const, R64};
use std::fmt;

/// An object identifier. Opaque: only identity is meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Oid(pub u64);

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// An attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// Real.
    Real(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// A reference to another object (structure attributes).
    Obj(Oid),
}

impl Value {
    /// Convert to the Datalog constant representation.
    pub fn to_const(&self) -> Const {
        match self {
            Value::Int(v) => Const::Int(*v),
            Value::Real(v) => Const::Real(R64::new(*v)),
            Value::Str(s) => Const::Str(sqo_datalog::Sym::intern(s)),
            Value::Bool(b) => Const::Bool(*b),
            Value::Obj(o) => Const::Oid(o.0),
        }
    }

    /// Convert from a Datalog constant.
    pub fn from_const(c: &Const) -> Value {
        match c {
            Const::Int(v) => Value::Int(*v),
            Const::Real(r) => Value::Real(r.get()),
            Const::Str(s) => Value::Str(s.as_str().to_string()),
            Const::Bool(b) => Value::Bool(*b),
            Const::Oid(o) => Value::Obj(Oid(*o)),
        }
    }

    /// The OID inside, if this is an object reference.
    pub fn as_oid(&self) -> Option<Oid> {
        match self {
            Value::Obj(o) => Some(*o),
            _ => None,
        }
    }

    /// The float inside (int or real), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Real(v) => Some(*v),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Real(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Obj(o) => o.fmt(f),
        }
    }
}

impl Value {
    /// Convert to the durable store's value representation.
    pub fn to_store(&self) -> sqo_store::StoreValue {
        match self {
            Value::Int(v) => sqo_store::StoreValue::Int(*v),
            Value::Real(v) => sqo_store::StoreValue::Real(*v),
            Value::Str(s) => sqo_store::StoreValue::Str(s.clone()),
            Value::Bool(b) => sqo_store::StoreValue::Bool(*b),
            Value::Obj(o) => sqo_store::StoreValue::Obj(o.0),
        }
    }

    /// Convert from the durable store's value representation.
    pub fn from_store(v: &sqo_store::StoreValue) -> Value {
        match v {
            sqo_store::StoreValue::Int(i) => Value::Int(*i),
            sqo_store::StoreValue::Real(r) => Value::Real(*r),
            sqo_store::StoreValue::Str(s) => Value::Str(s.clone()),
            sqo_store::StoreValue::Bool(b) => Value::Bool(*b),
            sqo_store::StoreValue::Obj(o) => Value::Obj(Oid(*o)),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Real(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<Oid> for Value {
    fn from(o: Oid) -> Self {
        Value::Obj(o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_roundtrip() {
        for v in [
            Value::Int(3),
            Value::Real(0.5),
            Value::Str("a".into()),
            Value::Bool(true),
            Value::Obj(Oid(7)),
        ] {
            assert_eq!(Value::from_const(&v.to_const()), v);
        }
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Obj(Oid(1)).as_oid(), Some(Oid(1)));
        assert_eq!(Value::Int(1).as_oid(), None);
        assert_eq!(Value::Int(2).as_f64(), Some(2.0));
        assert_eq!(Value::Real(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
    }
}
