#![warn(missing_docs)]

//! # sqo-objdb
//!
//! An in-memory ODMG-style object database substrate: objects with OIDs,
//! class extents (including subclass members), binary relationships with
//! inverse maintenance and cardinality enforcement, registered Rust
//! closures as methods, and materialized access support relations —
//! everything the paper's optimization opportunities need to be
//! *measured* rather than asserted.
//!
//! [`exec`] evaluates translated Datalog queries against the store with
//! an object-level cost model (object fetches vs extent probes vs
//! relationship traversals vs method invocations), and [`plan`] provides
//! the simple cardinality-based cost estimator that plays the role of
//! the paper's "conventional cost-based optimizer" choosing among the
//! semantically equivalent queries produced by SQO.

pub mod error;
pub mod exec;
pub mod generate;
pub mod plan;
pub mod store;
pub mod value;

pub use error::{ObjDbError, Result};
pub use exec::{execute, execute_with, CostReport, ExecOptions};
pub use generate::{
    register_university_methods, GenericConfig, GenericData, UniversityConfig, UniversityData,
};
pub use plan::{choose_best, estimate_cost, estimate_cost_memo, search_cost_model, DistinctMemo};
pub use store::{AsrDef, MethodFn, Object, ObjectDb};
pub use value::{Oid, Value};
