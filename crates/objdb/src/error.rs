//! Error types for the object-database substrate.

use std::fmt;

/// Errors produced by the object store and executor.
#[derive(Debug)]
pub enum ObjDbError {
    /// The class (or structure) does not exist in the schema.
    UnknownClass {
        /// The offending name.
        name: String,
    },
    /// The OID does not identify a live object.
    UnknownObject {
        /// The unresolved object identifier.
        oid: u64,
    },
    /// An attribute is missing or has the wrong shape.
    BadAttribute {
        /// The class involved.
        class: String,
        /// The attribute involved.
        attribute: String,
        /// Additional detail.
        detail: String,
    },
    /// The relationship does not exist on the class.
    UnknownRelationship {
        /// The class involved.
        class: String,
        /// The offending name.
        name: String,
    },
    /// Linking would violate a cardinality constraint.
    Cardinality {
        /// The relationship involved.
        relationship: String,
        /// Additional detail.
        detail: String,
    },
    /// The object is not an instance of the expected class.
    TypeMismatch {
        /// What was expected.
        expected: String,
        /// What was found instead.
        found: String,
    },
    /// A method is not registered or failed.
    Method {
        /// The offending name.
        name: String,
        /// Additional detail.
        detail: String,
    },
    /// An access-support-relation path segment could not be resolved.
    BadAsrPath {
        /// Additional detail.
        detail: String,
    },
    /// Wrapped Datalog error (evaluation).
    Datalog(sqo_datalog::DatalogError),
    /// Wrapped durable-store error (WAL append, snapshot, recovery).
    Store(sqo_store::StoreError),
    /// The query uses a feature the executor cannot ground (e.g. a
    /// method call with non-constant arguments).
    Unsupported {
        /// The unsupported feature.
        feature: String,
    },
}

impl fmt::Display for ObjDbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjDbError::UnknownClass { name } => write!(f, "unknown class `{name}`"),
            ObjDbError::UnknownObject { oid } => write!(f, "no object with OID #{oid}"),
            ObjDbError::BadAttribute {
                class,
                attribute,
                detail,
            } => write!(f, "bad attribute `{class}.{attribute}`: {detail}"),
            ObjDbError::UnknownRelationship { class, name } => {
                write!(f, "unknown relationship `{class}::{name}`")
            }
            ObjDbError::Cardinality {
                relationship,
                detail,
            } => write!(f, "cardinality violation on `{relationship}`: {detail}"),
            ObjDbError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected `{expected}`, found `{found}`")
            }
            ObjDbError::Method { name, detail } => write!(f, "method `{name}`: {detail}"),
            ObjDbError::BadAsrPath { detail } => write!(f, "bad ASR path: {detail}"),
            ObjDbError::Datalog(e) => e.fmt(f),
            ObjDbError::Store(e) => e.fmt(f),
            ObjDbError::Unsupported { feature } => write!(f, "unsupported: {feature}"),
        }
    }
}

impl std::error::Error for ObjDbError {}

impl From<sqo_datalog::DatalogError> for ObjDbError {
    fn from(e: sqo_datalog::DatalogError) -> Self {
        ObjDbError::Datalog(e)
    }
}

impl From<sqo_store::StoreError> for ObjDbError {
    fn from(e: sqo_store::StoreError) -> Self {
        ObjDbError::Store(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, ObjDbError>;
