//! The in-memory object store: objects, extents, relationships, methods
//! and access support relations.
//!
//! This is the execution substrate the paper assumes: an ODMG-style
//! object base that maintains **class extents** (including subclass
//! members — the basis for Application 2's scope reduction), binary
//! **relationships** with inverse maintenance and cardinality
//! enforcement, registered Rust closures as **methods**, and
//! materialized **access support relations** over relationship paths
//! (Kemper–Moerkotte; Application 4).
//!
//! [`ObjectDb::edb`] exposes the whole store in the Datalog
//! representation of Step 1, so translated queries run directly against
//! it; a generation-tagged, `Arc`-shared cache keeps repeated query
//! evaluation cheap while letting callers pin a consistent snapshot
//! with [`ObjectDb::edb_pinned`] — writers that arrive later bump the
//! generation and rebuild lazily without disturbing pinned readers.
//!
//! When a durable [`ShardedStore`] is attached (via [`ObjectDb::open`]
//! or [`ObjectDb::from_store`]), every mutation is mirrored into the
//! store before the in-memory maps change, so the WAL always leads the
//! materialized state and recovery replays to exactly the acknowledged
//! prefix. Compound mutations commit as a single atomic
//! [`StoreOp::Batch`] (one WAL frame): a `link` batches the relation
//! with its inverse, a `delete` batches one `Unlink` per severed pair
//! with the `RemoveObject` — so a crash can never persist a forward
//! link whose inverse is missing, or a half-severed object.

use crate::error::{ObjDbError, Result};
use crate::value::{Oid, Value};
use sqo_datalog::program::EdbDatabase;
use sqo_datalog::{Atom, Const, Literal, PredSym, Rule, Term};
use sqo_odl::{BaseType, Member, Schema, Type};
use sqo_store::{PersistReport, ShardedStore, StoreOp, StoreView};
use sqo_translate::{translate_schema, ArgType, Catalog, RelKind};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::Path;
use std::sync::Arc;

/// A stored object (or structure instance).
#[derive(Debug, Clone)]
pub struct Object {
    /// The most specific class (or structure) name.
    pub class: String,
    /// Attribute values by attribute name.
    pub attrs: BTreeMap<String, Value>,
}

/// A registered method implementation. `Send` so a populated store can
/// move behind a `Mutex` shared across service worker threads.
pub type MethodFn = Box<dyn Fn(&ObjectDb, Oid, &[Value]) -> Result<Value> + Send>;

/// A defined access support relation.
#[derive(Debug, Clone)]
pub struct AsrDef {
    /// The view predicate name.
    pub name: String,
    /// The class the path starts at, as given to `define_asr` (kept so
    /// the definition can be re-played from a durable store).
    pub src_class: String,
    /// The relationship *member* names along the path, as given to
    /// `define_asr`.
    pub src_path: Vec<String>,
    /// The relationship predicates along the path, in order.
    pub path: Vec<String>,
    /// The view definition rule `asr(X0, Xn) ← r1(X0, X1), …`.
    pub rule: Rule,
}

/// The in-memory object database.
pub struct ObjectDb {
    schema: Schema,
    catalog: Catalog,
    objects: HashMap<Oid, Object>,
    /// Extents per class/structure name — a class's extent includes its
    /// subclasses' instances.
    extents: HashMap<String, Vec<Oid>>,
    /// Relationship pairs per relation predicate name.
    links: HashMap<String, Vec<(Oid, Oid)>>,
    link_sets: HashMap<String, HashSet<(Oid, Oid)>>,
    methods: HashMap<String, MethodFn>,
    asrs: Vec<AsrDef>,
    next_oid: u64,
    /// Local cache epoch: bumped on every mutation. When a store is
    /// attached this moves in lockstep with store writes but remains a
    /// purely local counter (method registration also bumps it).
    generation: u64,
    /// Attached durable store; `None` for a purely in-memory database.
    store: Option<Arc<ShardedStore>>,
    /// Cached Datalog representation, tagged with the generation it was
    /// built at. Stale entries are replaced lazily; pinned `Arc` clones
    /// handed out earlier stay valid and unchanged.
    edb_cache: RefCell<Option<EdbCacheEntry>>,
}

/// One generation's cached EDB plus the method/argument combinations
/// already materialized into it.
struct EdbCacheEntry {
    generation: u64,
    edb: Arc<EdbDatabase>,
    methods: HashSet<(String, Vec<Const>)>,
}

impl std::fmt::Debug for ObjectDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObjectDb")
            .field("objects", &self.objects.len())
            .field("classes", &self.extents.len())
            .field("asrs", &self.asrs.len())
            .finish()
    }
}

impl ObjectDb {
    /// Create an empty database over a schema.
    pub fn new(schema: Schema) -> Self {
        let catalog = translate_schema(&schema);
        ObjectDb {
            schema,
            catalog,
            objects: HashMap::new(),
            extents: HashMap::new(),
            links: HashMap::new(),
            link_sets: HashMap::new(),
            methods: HashMap::new(),
            asrs: Vec::new(),
            next_oid: 1,
            generation: 0,
            store: None,
            edb_cache: RefCell::new(None),
        }
    }

    /// Open (or create) a durable database at `dir`: recovers the store
    /// (latest snapshot plus WAL tail) and attaches it so subsequent
    /// mutations are logged. Registered methods are *not* persisted —
    /// re-register them after opening.
    pub fn open(schema: Schema, dir: &Path, n_shards: usize) -> Result<ObjectDb> {
        let store = Arc::new(ShardedStore::open(dir, n_shards)?);
        Self::from_store(schema, store)
    }

    /// Build a database from an already-opened store, replaying its
    /// current view into the in-memory representation, then attach it.
    pub fn from_store(schema: Schema, store: Arc<ShardedStore>) -> Result<ObjectDb> {
        let mut db = ObjectDb::new(schema);
        let view = store.view();
        db.load_view(&view)?;
        db.next_oid = view.next_oid().max(1);
        db.generation = view.generation();
        db.store = Some(store);
        Ok(db)
    }

    /// Dump the current logical state into a fresh store at `dir` and
    /// write a snapshot. The target directory must not already hold
    /// store state. The receiver keeps (or keeps lacking) its own
    /// attachment; use [`ObjectDb::open`] on `dir` to work against the
    /// copy.
    pub fn save_to(&self, dir: &Path, n_shards: usize) -> Result<PersistReport> {
        let store = ShardedStore::open(dir, n_shards)?;
        if store.object_count() != 0 {
            return Err(ObjDbError::Store(sqo_store::StoreError::Invalid {
                detail: format!("save_to target {} is not empty", dir.display()),
            }));
        }
        let mut oids: Vec<&Oid> = self.objects.keys().collect();
        oids.sort_unstable();
        for oid in oids {
            let obj = &self.objects[oid];
            store.apply(&StoreOp::PutObject {
                oid: oid.0,
                class: obj.class.clone(),
                attrs: obj
                    .attrs
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_store()))
                    .collect(),
            })?;
        }
        let mut preds: Vec<&String> = self.links.keys().collect();
        preds.sort_unstable();
        for pred in preds {
            for (f, t) in &self.links[pred] {
                store.apply(&StoreOp::Link {
                    pred: pred.clone(),
                    from: f.0,
                    to: t.0,
                })?;
            }
        }
        for def in &self.asrs {
            store.apply(&StoreOp::DefineAsr {
                name: def.name.clone(),
                class: def.src_class.clone(),
                path: def.src_path.clone(),
            })?;
        }
        store.bump_next_oid(self.next_oid);
        Ok(store.persist()?)
    }

    /// Replay a pinned store view into the (empty) in-memory maps.
    fn load_view(&mut self, view: &StoreView) -> Result<()> {
        // Objects in OID order: OIDs allocate monotonically in creation
        // order, so this reproduces every extent's original order.
        for (oid, obj) in view.objects_sorted() {
            self.restore_object(Oid(oid), &obj.class, &obj.attrs)?;
        }
        // Links ordered by their global sequence stamps: per-predicate
        // insertion order comes back exactly.
        for (pred, pairs) in view.links_by_pred() {
            for (f, t) in pairs {
                self.restore_link(&pred, Oid(f), Oid(t));
            }
        }
        for asr in view.asrs() {
            let path: Vec<&str> = asr.path.iter().map(String::as_str).collect();
            self.define_asr_inner(&asr.name, &asr.class, &path)?;
        }
        Ok(())
    }

    /// Reinstate one stored object (no type checks: the data was
    /// validated when originally written).
    fn restore_object(
        &mut self,
        oid: Oid,
        class: &str,
        attrs: &BTreeMap<String, sqo_store::StoreValue>,
    ) -> Result<()> {
        let attrs: BTreeMap<String, Value> = attrs
            .iter()
            .map(|(k, v)| (k.clone(), Value::from_store(v)))
            .collect();
        if self.schema.class(class).is_some() {
            for c in self.schema.chain(class) {
                let name = c.name.clone();
                self.extents.entry(name).or_default().push(oid);
            }
        } else if self.schema.structure(class).is_some() {
            self.extents.entry(class.to_string()).or_default().push(oid);
        } else {
            return Err(ObjDbError::UnknownClass {
                name: class.to_string(),
            });
        }
        self.objects.insert(
            oid,
            Object {
                class: class.to_string(),
                attrs,
            },
        );
        Ok(())
    }

    /// Reinstate one stored link pair (inverses are stored as their own
    /// pairs, so no inverse maintenance here).
    fn restore_link(&mut self, pred: &str, from: Oid, to: Oid) {
        self.links
            .entry(pred.to_string())
            .or_default()
            .push((from, to));
        self.link_sets
            .entry(pred.to_string())
            .or_default()
            .insert((from, to));
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The Step 1 catalog (with registered ASR views).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The defined access support relations.
    pub fn asrs(&self) -> &[AsrDef] {
        &self.asrs
    }

    /// View rules for all defined ASRs (for the SQO transform context).
    pub fn asr_rules(&self) -> Vec<Rule> {
        self.asrs.iter().map(|a| a.rule.clone()).collect()
    }

    /// The local cache epoch. Bumped by every mutation; EDB snapshots
    /// pinned at an older generation remain valid but are no longer
    /// served for fresh reads.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The attached durable store, if any.
    pub fn store(&self) -> Option<&Arc<ShardedStore>> {
        self.store.as_ref()
    }

    /// The attached store's generation (0 for an in-memory database).
    pub fn store_generation(&self) -> u64 {
        self.store.as_ref().map(|s| s.generation()).unwrap_or(0)
    }

    /// Force a snapshot of the attached store and truncate its WALs.
    /// `Ok(None)` for an in-memory database.
    pub fn persist(&self) -> Result<Option<PersistReport>> {
        match &self.store {
            Some(store) => Ok(Some(store.persist()?)),
            None => Ok(None),
        }
    }

    /// Bump the cache epoch without logging a store operation (used for
    /// changes that do not touch durable state, e.g. method
    /// registration).
    fn touch(&mut self) {
        self.generation += 1;
    }

    /// Mirror one shard-local operation into the attached store (if
    /// any), then bump the cache epoch. Called *before* the in-memory
    /// mutation so a failed append leaves memory untouched.
    fn log(&mut self, op: &StoreOp) -> Result<()> {
        if let Some(store) = &self.store {
            store.apply(op)?;
        }
        self.touch();
        Ok(())
    }

    /// Mirror a compound mutation into the attached store as a single
    /// atomic [`StoreOp::Batch`] — one WAL frame, so a crash persists
    /// either every component or none. Bumps the cache epoch once.
    fn log_batch(&mut self, ops: Vec<StoreOp>) -> Result<()> {
        if let Some(store) = &self.store {
            match ops.len() {
                0 => {}
                1 => {
                    store.apply(&ops[0])?;
                }
                _ => {
                    store.apply(&StoreOp::Batch { ops })?;
                }
            }
        }
        self.touch();
        Ok(())
    }

    fn alloc_oid(&mut self) -> Oid {
        let o = Oid(self.next_oid);
        self.next_oid += 1;
        o
    }

    fn default_value(&mut self, ty: &Type) -> Result<Value> {
        Ok(match ty {
            Type::Base(BaseType::Int) => Value::Int(0),
            Type::Base(BaseType::Real) => Value::Real(0.0),
            Type::Base(BaseType::Str) => Value::Str(String::new()),
            Type::Base(BaseType::Bool) => Value::Bool(false),
            Type::Named(n) => {
                let n = n.clone();
                // Auto-create a default structure instance.
                Value::Obj(self.create_struct(&n, Vec::new())?)
            }
            Type::Collection(..) => {
                return Err(ObjDbError::Unsupported {
                    feature: "collection-valued attributes".into(),
                })
            }
        })
    }

    /// Create an object of a class; missing attributes get defaults
    /// (structure attributes get auto-created structure instances).
    pub fn create(&mut self, class: &str, attrs: Vec<(&str, Value)>) -> Result<Oid> {
        if self.schema.class(class).is_none() {
            return Err(ObjDbError::UnknownClass {
                name: class.to_string(),
            });
        }
        let declared: Vec<(String, Type)> = self
            .schema
            .all_attributes(class)
            .into_iter()
            .map(|(_, a)| (a.name.clone(), a.ty.clone()))
            .collect();
        let mut provided: BTreeMap<&str, Value> = BTreeMap::new();
        for (k, v) in attrs {
            if !declared.iter().any(|(n, _)| n == k) {
                return Err(ObjDbError::BadAttribute {
                    class: class.to_string(),
                    attribute: k.to_string(),
                    detail: "not declared".into(),
                });
            }
            provided.insert(k, v);
        }
        let mut final_attrs = BTreeMap::new();
        for (name, ty) in &declared {
            let value = match provided.remove(name.as_str()) {
                Some(v) => self.check_type(class, name, ty, v)?,
                None => self.default_value(ty)?,
            };
            final_attrs.insert(name.clone(), value);
        }
        let oid = self.alloc_oid();
        self.log(&StoreOp::PutObject {
            oid: oid.0,
            class: class.to_string(),
            attrs: final_attrs
                .iter()
                .map(|(k, v)| (k.clone(), v.to_store()))
                .collect(),
        })?;
        self.objects.insert(
            oid,
            Object {
                class: class.to_string(),
                attrs: final_attrs,
            },
        );
        // Register in its own extent and every superclass extent.
        for c in self.schema.chain(class) {
            let name = c.name.clone();
            self.extents.entry(name).or_default().push(oid);
        }
        Ok(oid)
    }

    /// Create a structure instance.
    pub fn create_struct(&mut self, strct: &str, fields: Vec<(&str, Value)>) -> Result<Oid> {
        let declared: Vec<(String, Type)> = self
            .schema
            .structure(strct)
            .ok_or_else(|| ObjDbError::UnknownClass {
                name: strct.to_string(),
            })?
            .fields
            .iter()
            .map(|f| (f.name.clone(), f.ty.clone()))
            .collect();
        let mut provided: BTreeMap<&str, Value> = fields.into_iter().collect();
        let mut final_attrs = BTreeMap::new();
        for (name, ty) in &declared {
            let value = match provided.remove(name.as_str()) {
                Some(v) => self.check_type(strct, name, ty, v)?,
                None => self.default_value(ty)?,
            };
            final_attrs.insert(name.clone(), value);
        }
        let oid = self.alloc_oid();
        self.log(&StoreOp::PutObject {
            oid: oid.0,
            class: strct.to_string(),
            attrs: final_attrs
                .iter()
                .map(|(k, v)| (k.clone(), v.to_store()))
                .collect(),
        })?;
        self.objects.insert(
            oid,
            Object {
                class: strct.to_string(),
                attrs: final_attrs,
            },
        );
        self.extents.entry(strct.to_string()).or_default().push(oid);
        Ok(oid)
    }

    fn check_type(&self, owner: &str, attr: &str, ty: &Type, v: Value) -> Result<Value> {
        let ok = match (ty, &v) {
            (Type::Base(BaseType::Int), Value::Int(_)) => true,
            (Type::Base(BaseType::Real), Value::Real(_) | Value::Int(_)) => true,
            (Type::Base(BaseType::Str), Value::Str(_)) => true,
            (Type::Base(BaseType::Bool), Value::Bool(_)) => true,
            (Type::Named(n), Value::Obj(o)) => match self.objects.get(o) {
                Some(obj) => obj.class == *n || self.schema.is_subclass_of(&obj.class, n),
                None => false,
            },
            _ => false,
        };
        if ok {
            // Coerce ints to reals where declared real.
            if let (Type::Base(BaseType::Real), Value::Int(i)) = (ty, &v) {
                return Ok(Value::Real(*i as f64));
            }
            Ok(v)
        } else {
            Err(ObjDbError::BadAttribute {
                class: owner.to_string(),
                attribute: attr.to_string(),
                detail: format!("value {v} does not match type {ty}"),
            })
        }
    }

    /// Set an attribute on an existing object.
    pub fn set_attr(&mut self, oid: Oid, attr: &str, v: Value) -> Result<()> {
        let class = self
            .objects
            .get(&oid)
            .ok_or(ObjDbError::UnknownObject { oid: oid.0 })?
            .class
            .clone();
        let ty = self
            .schema
            .all_attributes(&class)
            .into_iter()
            .find(|(_, a)| a.name == attr)
            .map(|(_, a)| a.ty.clone())
            .or_else(|| {
                self.schema
                    .structure(&class)
                    .and_then(|s| s.fields.iter().find(|f| f.name == attr))
                    .map(|f| f.ty.clone())
            })
            .ok_or_else(|| ObjDbError::BadAttribute {
                class: class.clone(),
                attribute: attr.to_string(),
                detail: "not declared".into(),
            })?;
        let v = self.check_type(&class, attr, &ty, v)?;
        self.log(&StoreOp::SetAttr {
            oid: oid.0,
            attr: attr.to_string(),
            value: v.to_store(),
        })?;
        self.objects
            .get_mut(&oid)
            .expect("checked above")
            .attrs
            .insert(attr.to_string(), v);
        Ok(())
    }

    /// Look up an object.
    pub fn get(&self, oid: Oid) -> Option<&Object> {
        self.objects.get(&oid)
    }

    /// Read an attribute value.
    pub fn attr(&self, oid: Oid, name: &str) -> Option<&Value> {
        self.objects.get(&oid).and_then(|o| o.attrs.get(name))
    }

    /// The extent of a class (including subclass instances), in creation
    /// order.
    pub fn extent(&self, class: &str) -> &[Oid] {
        self.extents.get(class).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of live objects (including structure instances).
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Resolve the relationship declaration reachable from an object's
    /// class, returning (declaring class, target, many, pred name,
    /// inverse pred name if any).
    fn resolve_rel(
        &self,
        class: &str,
        rel: &str,
    ) -> Result<(String, String, bool, String, Option<String>)> {
        let Some(Member::Relationship(decl_cls, r)) = self.schema.find_member(class, rel) else {
            return Err(ObjDbError::UnknownRelationship {
                class: class.to_string(),
                name: rel.to_string(),
            });
        };
        let pred = self
            .catalog
            .relationship_relation(decl_cls, &r.name)
            .expect("relationship in catalog")
            .pred
            .name()
            .to_string();
        let inv_pred = r.inverse.as_ref().and_then(|(icls, irel)| {
            self.catalog
                .relationship_relation(icls, irel)
                .map(|d| d.pred.name().to_string())
        });
        Ok((
            decl_cls.to_string(),
            r.target.clone(),
            r.many,
            pred,
            inv_pred,
        ))
    }

    /// Link two objects through a relationship (maintaining the inverse
    /// and enforcing cardinality).
    pub fn link(&mut self, from: Oid, rel: &str, to: Oid) -> Result<()> {
        let from_class = self
            .objects
            .get(&from)
            .ok_or(ObjDbError::UnknownObject { oid: from.0 })?
            .class
            .clone();
        let to_class = self
            .objects
            .get(&to)
            .ok_or(ObjDbError::UnknownObject { oid: to.0 })?
            .class
            .clone();
        let (_, target, many, pred, inv_pred) = self.resolve_rel(&from_class, rel)?;
        if !self.schema.is_subclass_of(&to_class, &target) {
            return Err(ObjDbError::TypeMismatch {
                expected: target,
                found: to_class,
            });
        }
        if self
            .link_sets
            .get(&pred)
            .is_some_and(|s| s.contains(&(from, to)))
        {
            return Ok(()); // idempotent
        }
        if !many {
            let already = self
                .links
                .get(&pred)
                .is_some_and(|v| v.iter().any(|(f, _)| *f == from));
            if already {
                return Err(ObjDbError::Cardinality {
                    relationship: format!("{from_class}::{rel}"),
                    detail: format!("{from} is already linked (to-one side)"),
                });
            }
        }
        // Cardinality on the inverse side.
        if let Some(inv) = &inv_pred {
            let inv_many = self
                .catalog
                .relation_by_pred(&PredSym::new(inv.clone()))
                .map(|d| matches!(&d.kind, RelKind::Relationship { many, .. } if *many))
                .unwrap_or(true);
            if !inv_many {
                let already = self
                    .links
                    .get(inv)
                    .is_some_and(|v| v.iter().any(|(f, _)| *f == to));
                if already {
                    return Err(ObjDbError::Cardinality {
                        relationship: format!("inverse of {from_class}::{rel}"),
                        detail: format!("{to} is already linked (to-one inverse)"),
                    });
                }
            }
        }
        let mut ops = vec![StoreOp::Link {
            pred: pred.clone(),
            from: from.0,
            to: to.0,
        }];
        if let Some(inv) = &inv_pred {
            ops.push(StoreOp::Link {
                pred: inv.clone(),
                from: to.0,
                to: from.0,
            });
        }
        self.log_batch(ops)?;
        self.links.entry(pred.clone()).or_default().push((from, to));
        self.link_sets.entry(pred).or_default().insert((from, to));
        if let Some(inv) = inv_pred {
            self.links.entry(inv.clone()).or_default().push((to, from));
            self.link_sets.entry(inv).or_default().insert((to, from));
        }
        Ok(())
    }

    /// The objects linked from `from` through a relationship.
    pub fn linked(&self, from: Oid, rel: &str) -> Result<Vec<Oid>> {
        let class = self
            .objects
            .get(&from)
            .ok_or(ObjDbError::UnknownObject { oid: from.0 })?
            .class
            .clone();
        let (_, _, _, pred, _) = self.resolve_rel(&class, rel)?;
        Ok(self
            .links
            .get(&pred)
            .map(|v| {
                v.iter()
                    .filter(|(f, _)| *f == from)
                    .map(|(_, t)| *t)
                    .collect()
            })
            .unwrap_or_default())
    }

    /// Remove a relationship link (and its inverse). Returns whether the
    /// link existed.
    pub fn unlink(&mut self, from: Oid, rel: &str, to: Oid) -> Result<bool> {
        let from_class = self
            .objects
            .get(&from)
            .ok_or(ObjDbError::UnknownObject { oid: from.0 })?
            .class
            .clone();
        let (_, _, _, pred, inv_pred) = self.resolve_rel(&from_class, rel)?;
        let existed = self
            .link_sets
            .get(&pred)
            .is_some_and(|s| s.contains(&(from, to)));
        if existed {
            let mut ops = vec![StoreOp::Unlink {
                pred: pred.clone(),
                from: from.0,
                to: to.0,
            }];
            if let Some(inv) = &inv_pred {
                ops.push(StoreOp::Unlink {
                    pred: inv.clone(),
                    from: to.0,
                    to: from.0,
                });
            }
            self.log_batch(ops)?;
            if let Some(s) = self.link_sets.get_mut(&pred) {
                s.remove(&(from, to));
            }
            if let Some(v) = self.links.get_mut(&pred) {
                v.retain(|p| *p != (from, to));
            }
            if let Some(inv) = inv_pred {
                if let Some(s) = self.link_sets.get_mut(&inv) {
                    s.remove(&(to, from));
                }
                if let Some(v) = self.links.get_mut(&inv) {
                    v.retain(|p| *p != (to, from));
                }
            }
        }
        Ok(existed)
    }

    /// Delete an object: removes it from every extent, severs every
    /// relationship link it participates in (maintaining inverses), and
    /// drops it from the store. Structure instances owned through
    /// attributes are left in place (they may be shared in the Datalog
    /// representation).
    pub fn delete(&mut self, oid: Oid) -> Result<()> {
        if !self.objects.contains_key(&oid) {
            return Err(ObjDbError::UnknownObject { oid: oid.0 });
        }
        // Expand into shard-local store ops — one Unlink per severed
        // pair (inverse pairs are their own entries), then the removal
        // — committed as one atomic batch frame.
        let mut severed: Vec<(String, Oid, Oid)> = Vec::new();
        for (pred, pairs) in &self.links {
            for (f, t) in pairs {
                if *f == oid || *t == oid {
                    severed.push((pred.clone(), *f, *t));
                }
            }
        }
        let mut ops: Vec<StoreOp> = severed
            .iter()
            .map(|(pred, f, t)| StoreOp::Unlink {
                pred: pred.clone(),
                from: f.0,
                to: t.0,
            })
            .collect();
        ops.push(StoreOp::RemoveObject { oid: oid.0 });
        self.log_batch(ops)?;
        for v in self.extents.values_mut() {
            v.retain(|o| *o != oid);
        }
        for (pred, pairs) in self.links.iter_mut() {
            pairs.retain(|(f, t)| *f != oid && *t != oid);
            if let Some(set) = self.link_sets.get_mut(pred) {
                set.retain(|(f, t)| *f != oid && *t != oid);
            }
        }
        self.objects.remove(&oid);
        Ok(())
    }

    /// Register a method implementation for `class::name`.
    pub fn register_method(&mut self, class: &str, name: &str, f: MethodFn) -> Result<()> {
        let decl = self
            .catalog
            .method_relation(class, name)
            .ok_or_else(|| ObjDbError::Method {
                name: format!("{class}::{name}"),
                detail: "not declared in the schema".into(),
            })?;
        self.methods.insert(decl.pred.name().to_string(), f);
        // Methods are closures, not durable state: bump the cache epoch
        // without logging a store op.
        self.touch();
        Ok(())
    }

    /// Invoke a registered method.
    pub fn call_method(&self, pred: &str, receiver: Oid, args: &[Value]) -> Result<Value> {
        let f = self.methods.get(pred).ok_or_else(|| ObjDbError::Method {
            name: pred.to_string(),
            detail: "no implementation registered".into(),
        })?;
        f(self, receiver, args)
    }

    /// Define (and materialize) an access support relation over a path of
    /// relationship names starting at `class`. Returns the view predicate.
    pub fn define_asr(&mut self, name: &str, class: &str, path: &[&str]) -> Result<PredSym> {
        let pred = self.define_asr_inner(name, class, path)?;
        self.log(&StoreOp::DefineAsr {
            name: pred.name().to_string(),
            class: class.to_string(),
            path: path.iter().map(|s| s.to_string()).collect(),
        })?;
        Ok(pred)
    }

    /// `define_asr` minus the durable logging (shared with store
    /// recovery, which replays recorded definitions).
    fn define_asr_inner(&mut self, name: &str, class: &str, path: &[&str]) -> Result<PredSym> {
        if path.is_empty() {
            return Err(ObjDbError::BadAsrPath {
                detail: "empty path".into(),
            });
        }
        let mut preds = Vec::new();
        let mut cur_class = class.to_string();
        for rel in path {
            let (_, target, _, pred, _) = self.resolve_rel_by_class(&cur_class, rel)?;
            preds.push(pred);
            cur_class = target;
        }
        // Build the view rule asr(X0, Xn) ← r1(X0, X1), …, rn(Xn-1, Xn).
        let mut body = Vec::new();
        for (i, p) in preds.iter().enumerate() {
            body.push(Literal::pos(
                p.as_str(),
                vec![Term::var(format!("X{i}")), Term::var(format!("X{}", i + 1))],
            ));
        }
        let head = Atom::new(
            name.to_lowercase(),
            vec![Term::var("X0"), Term::var(format!("X{}", preds.len()))],
        );
        let rule = Rule::new(head, body);
        let pred = self.catalog.register_view(name, 2);
        self.asrs.push(AsrDef {
            name: pred.name().to_string(),
            src_class: class.to_string(),
            src_path: path.iter().map(|s| s.to_string()).collect(),
            path: preds,
            rule,
        });
        Ok(pred)
    }

    /// Like [`resolve_rel`](Self::resolve_rel) but starting from a class
    /// name rather than an instance.
    fn resolve_rel_by_class(
        &self,
        class: &str,
        rel: &str,
    ) -> Result<(String, String, bool, String, Option<String>)> {
        if self.schema.class(class).is_none() {
            return Err(ObjDbError::UnknownClass {
                name: class.to_string(),
            });
        }
        self.resolve_rel(class, rel)
    }

    /// Materialized pairs of an ASR (walking the stored links).
    fn asr_pairs(&self, def: &AsrDef) -> Vec<(Oid, Oid)> {
        let mut frontier: Option<Vec<(Oid, Oid)>> = None;
        for pred in &def.path {
            let hop = self.links.get(pred).cloned().unwrap_or_default();
            frontier = Some(match frontier {
                None => hop,
                Some(prev) => {
                    let mut index: HashMap<Oid, Vec<Oid>> = HashMap::new();
                    for (f, t) in &hop {
                        index.entry(*f).or_default().push(*t);
                    }
                    let mut next = Vec::new();
                    let mut seen = HashSet::new();
                    for (start, mid) in prev {
                        if let Some(ends) = index.get(&mid) {
                            for e in ends {
                                if seen.insert((start, *e)) {
                                    next.push((start, *e));
                                }
                            }
                        }
                    }
                    next
                }
            });
        }
        frontier.unwrap_or_default()
    }

    /// The Datalog representation of the whole store (cached).
    ///
    /// Produces: full class/structure relations (a class relation contains
    /// its subclasses' objects, projected onto the class's attributes),
    /// unary `{pred}__extent` relations for cheap extent membership,
    /// relationship relations, and materialized ASR relations. Method
    /// relations are materialized lazily per (method, arguments) combo by
    /// [`ensure_method_facts`](Self::ensure_method_facts).
    pub fn edb(&self) -> std::cell::Ref<'_, EdbDatabase> {
        self.refresh_edb();
        std::cell::Ref::map(self.edb_cache.borrow(), |o| {
            o.as_ref().expect("just built").edb.as_ref()
        })
    }

    /// Rebuild the cached EDB if it is missing or was built at an older
    /// generation. Pinned `Arc` clones of a stale entry stay untouched.
    fn refresh_edb(&self) {
        let mut cache = self.edb_cache.borrow_mut();
        let fresh = cache
            .as_ref()
            .is_some_and(|e| e.generation == self.generation);
        if !fresh {
            *cache = Some(EdbCacheEntry {
                generation: self.generation,
                edb: Arc::new(self.build_edb()),
                methods: HashSet::new(),
            });
        }
    }

    /// A consistent EDB snapshot pinned at the current generation.
    ///
    /// The returned `Arc` stays valid and *unchanged* while later
    /// writers advance the database: mutations bump the generation and
    /// rebuild the cache entry rather than touching shared state, and
    /// late method materialization copies-on-write. Long-running
    /// evaluations (or service sessions) should pin once and evaluate
    /// against the pin.
    pub fn edb_pinned(&self) -> Arc<EdbDatabase> {
        self.refresh_edb();
        self.edb_cache
            .borrow()
            .as_ref()
            .expect("just built")
            .edb
            .clone()
    }

    /// Build a fresh (uncached) EDB from a pinned store view, so an EDB
    /// build can run against a consistent generation while writers keep
    /// advancing the attached store.
    pub fn edb_for_view(&self, view: &StoreView) -> Result<EdbDatabase> {
        let mut tmp = ObjectDb::new(self.schema.clone());
        tmp.load_view(view)?;
        Ok(tmp.build_edb())
    }

    fn build_edb(&self) -> EdbDatabase {
        let mut db = EdbDatabase::new();
        for decl in &self.catalog.relations {
            match &decl.kind {
                RelKind::Class { class } | RelKind::Struct { strct: class } => {
                    let pred = decl.pred;
                    let extent_pred = PredSym::new(format!("{}__extent", pred.name()));
                    db.declare(pred, decl.arity());
                    db.declare(extent_pred, 1);
                    // Physical design: the OID column and every declared
                    // (single-attribute) key get a hash index; numeric
                    // attributes get an ordered index for range probes.
                    // String attributes stay unindexed unless they are
                    // keys — equality on a non-key string is a scan.
                    db.declare_hash_index(pred, 0);
                    db.declare_hash_index(extent_pred, 0);
                    if let Some(cls) = self.schema.class(class) {
                        for key in &cls.keys {
                            if let [attr] = key.as_slice() {
                                if let Some(pos) = decl.arg_position(attr) {
                                    db.declare_hash_index(pred, pos);
                                }
                            }
                        }
                    }
                    for (pos, arg) in decl.args.iter().enumerate().skip(1) {
                        if matches!(
                            arg.ty,
                            ArgType::Base(BaseType::Int) | ArgType::Base(BaseType::Real)
                        ) {
                            db.declare_ordered_index(pred, pos);
                        }
                    }
                    for oid in self.extent(class) {
                        let obj = &self.objects[oid];
                        let mut tuple: Vec<Const> = vec![Const::Oid(oid.0)];
                        for arg in decl.args.iter().skip(1) {
                            let v =
                                obj.attrs
                                    .get(&arg.name)
                                    .map(Value::to_const)
                                    .unwrap_or(match &arg.ty {
                                        ArgType::Oid(_) => Const::Oid(0),
                                        ArgType::Base(BaseType::Str) => {
                                            Const::Str(sqo_datalog::Sym::intern(""))
                                        }
                                        ArgType::Base(BaseType::Real) => Const::Real(0.0.into()),
                                        ArgType::Base(BaseType::Bool) => Const::Bool(false),
                                        ArgType::Base(BaseType::Int) => Const::Int(0),
                                    });
                            tuple.push(v);
                        }
                        db.insert(pred, tuple).expect("consistent arity");
                        db.insert(extent_pred, vec![Const::Oid(oid.0)])
                            .expect("unary");
                    }
                }
                RelKind::Relationship { .. } => {
                    db.declare(decl.pred, 2);
                    db.declare_hash_index(decl.pred, 0);
                    db.declare_hash_index(decl.pred, 1);
                    if let Some(pairs) = self.links.get(decl.pred.name()) {
                        for (f, t) in pairs {
                            db.insert(decl.pred, vec![Const::Oid(f.0), Const::Oid(t.0)])
                                .expect("binary");
                        }
                    }
                }
                RelKind::View { .. } => {
                    db.declare(decl.pred, 2);
                    db.declare_hash_index(decl.pred, 0);
                    db.declare_hash_index(decl.pred, 1);
                }
                RelKind::Method { .. } => {
                    db.declare(decl.pred, decl.arity());
                    db.declare_hash_index(decl.pred, 0);
                }
            }
        }
        for def in &self.asrs {
            let pred = PredSym::new(def.name.clone());
            for (f, t) in self.asr_pairs(def) {
                db.insert(pred, vec![Const::Oid(f.0), Const::Oid(t.0)])
                    .expect("binary");
            }
            db.declare_hash_index(pred, 0);
            db.declare_hash_index(pred, 1);
        }
        db
    }

    /// Ensure method facts for the given (method predicate, constant
    /// arguments) combination exist in the cached EDB. Returns the number
    /// of invocations performed (0 when already materialized).
    pub fn ensure_method_facts(&self, pred: &str, args: &[Const]) -> Result<u64> {
        let key = (pred.to_string(), args.to_vec());
        // Bring the cache entry up to the current generation first; the
        // materialized-methods set lives with the entry, so stale
        // entries never short-circuit.
        self.refresh_edb();
        if self
            .edb_cache
            .borrow()
            .as_ref()
            .is_some_and(|e| e.methods.contains(&key))
        {
            return Ok(0);
        }
        let decl = self
            .catalog
            .relation_by_pred(&PredSym::new(pred))
            .ok_or_else(|| ObjDbError::Method {
                name: pred.to_string(),
                detail: "unknown method relation".into(),
            })?;
        let RelKind::Method { class, .. } = &decl.kind else {
            return Err(ObjDbError::Method {
                name: pred.to_string(),
                detail: "not a method relation".into(),
            });
        };
        let class = class.clone();
        let values: Vec<Value> = args.iter().map(Value::from_const).collect();
        let receivers: Vec<Oid> = self.extent(&class).to_vec();
        let mut calls = 0u64;
        let mut facts: Vec<Vec<Const>> = Vec::with_capacity(receivers.len());
        for oid in receivers {
            let out = self.call_method(pred, oid, &values)?;
            calls += 1;
            let mut tuple = vec![Const::Oid(oid.0)];
            tuple.extend(args.iter().cloned());
            tuple.push(out.to_const());
            facts.push(tuple);
        }
        {
            let mut cache = self.edb_cache.borrow_mut();
            let entry = cache.as_mut().expect("cache built above");
            // Copy-on-write: if a pinned snapshot holds this Arc, the
            // clone keeps the pin isolated from the new facts.
            let db = Arc::make_mut(&mut entry.edb);
            for t in facts {
                db.insert(PredSym::new(pred), t).map_err(ObjDbError::from)?;
            }
            entry.methods.insert(key);
        }
        Ok(calls)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqo_odl::fixtures::university_schema;

    fn db() -> ObjectDb {
        ObjectDb::new(university_schema())
    }

    #[test]
    fn create_with_defaults_and_extents() {
        let mut d = db();
        let p = d
            .create(
                "Faculty",
                vec![("name", "smith".into()), ("age", Value::Int(50))],
            )
            .unwrap();
        let obj = d.get(p).unwrap();
        assert_eq!(obj.class, "Faculty");
        assert_eq!(obj.attrs["name"], Value::Str("smith".into()));
        // salary defaulted; address auto-created.
        assert_eq!(obj.attrs["salary"], Value::Real(0.0));
        assert!(matches!(obj.attrs["address"], Value::Obj(_)));
        // Extent membership up the chain.
        assert_eq!(d.extent("Faculty").len(), 1);
        assert_eq!(d.extent("Employee").len(), 1);
        assert_eq!(d.extent("Person").len(), 1);
        assert_eq!(d.extent("Student").len(), 0);
    }

    #[test]
    fn attribute_type_checking() {
        let mut d = db();
        assert!(d
            .create("Person", vec![("age", Value::Str("old".into()))])
            .is_err());
        assert!(d.create("Person", vec![("wings", Value::Int(2))]).is_err());
        // Int coerces to declared float.
        let e = d
            .create("Employee", vec![("salary", Value::Int(50000))])
            .unwrap();
        assert_eq!(d.attr(e, "salary"), Some(&Value::Real(50000.0)));
    }

    #[test]
    fn link_maintains_inverse_and_cardinality() {
        let mut d = db();
        let s = d.create("Student", vec![]).unwrap();
        let sec = d.create("Section", vec![]).unwrap();
        let course = d.create("Course", vec![]).unwrap();
        d.link(s, "takes", sec).unwrap();
        // Inverse maintained.
        assert_eq!(d.linked(sec, "taken_by").unwrap(), vec![s]);
        // Many-many allows more links.
        let sec2 = d.create("Section", vec![]).unwrap();
        d.link(s, "takes", sec2).unwrap();
        // To-one: a section has exactly one course.
        d.link(sec, "is_section_of", course).unwrap();
        let course2 = d.create("Course", vec![]).unwrap();
        assert!(matches!(
            d.link(sec, "is_section_of", course2),
            Err(ObjDbError::Cardinality { .. })
        ));
        // Idempotent re-link is fine.
        d.link(s, "takes", sec).unwrap();
    }

    #[test]
    fn one_to_one_enforced_via_inverse() {
        let mut d = db();
        let sec = d.create("Section", vec![]).unwrap();
        let sec2 = d.create("Section", vec![]).unwrap();
        let ta = d.create("TA", vec![]).unwrap();
        d.link(sec, "has_ta", ta).unwrap();
        // The same TA cannot assist a second section (inverse is to-one).
        assert!(matches!(
            d.link(sec2, "has_ta", ta),
            Err(ObjDbError::Cardinality { .. })
        ));
    }

    #[test]
    fn link_type_mismatch_rejected() {
        let mut d = db();
        let s = d.create("Student", vec![]).unwrap();
        let p = d.create("Person", vec![]).unwrap();
        assert!(matches!(
            d.link(s, "takes", p),
            Err(ObjDbError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn edb_contains_class_extent_and_relationship_facts() {
        let mut d = db();
        let s = d
            .create(
                "Student",
                vec![("name", "ann".into()), ("age", Value::Int(20))],
            )
            .unwrap();
        let sec = d.create("Section", vec![]).unwrap();
        d.link(s, "takes", sec).unwrap();
        let edb = d.edb();
        // Person relation includes the student (subclass member).
        let person = edb.relation(&"person".into()).unwrap();
        assert_eq!(person.len(), 1);
        let student = edb.relation(&"student".into()).unwrap();
        assert_eq!(student.len(), 1);
        assert!(edb.relation(&"person__extent".into()).unwrap().len() == 1);
        let takes = edb.relation(&"takes".into()).unwrap();
        assert_eq!(takes.tuples()[0], vec![Const::Oid(s.0), Const::Oid(sec.0)]);
        let taken_by = edb.relation(&"taken_by".into()).unwrap();
        assert_eq!(taken_by.len(), 1);
        // Structure instances present (auto-created addresses).
        assert!(!edb.relation(&"address".into()).unwrap().is_empty());
    }

    #[test]
    fn methods_materialize_lazily() {
        let mut d = db();
        let f = d
            .create("Faculty", vec![("salary", Value::Real(50000.0))])
            .unwrap();
        d.register_method(
            "Employee",
            "taxes_withheld",
            Box::new(|db, oid, args| {
                let salary = db
                    .attr(oid, "salary")
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0);
                let rate = args.first().and_then(Value::as_f64).unwrap_or(0.0);
                Ok(Value::Real(salary * rate))
            }),
        )
        .unwrap();
        let calls = d
            .ensure_method_facts("taxes_withheld", &[Const::Real(0.1.into())])
            .unwrap();
        assert_eq!(calls, 1);
        // Second time: cached.
        let calls2 = d
            .ensure_method_facts("taxes_withheld", &[Const::Real(0.1.into())])
            .unwrap();
        assert_eq!(calls2, 0);
        let edb = d.edb();
        let m = edb.relation(&"taxes_withheld".into()).unwrap();
        assert_eq!(
            m.tuples()[0],
            vec![
                Const::Oid(f.0),
                Const::Real(0.1.into()),
                Const::Real(5000.0.into())
            ]
        );
    }

    #[test]
    fn asr_definition_and_materialization() {
        let mut d = db();
        let s = d.create("Student", vec![]).unwrap();
        let sec = d.create("Section", vec![]).unwrap();
        let course = d.create("Course", vec![]).unwrap();
        let sec2 = d.create("Section", vec![]).unwrap();
        let ta = d.create("TA", vec![]).unwrap();
        d.link(s, "takes", sec).unwrap();
        d.link(sec, "is_section_of", course).unwrap();
        d.link(course, "has_sections", sec2).unwrap();
        d.link(sec2, "has_ta", ta).unwrap();
        let pred = d
            .define_asr(
                "asr",
                "Student",
                &["takes", "is_section_of", "has_sections", "has_ta"],
            )
            .unwrap();
        assert_eq!(pred.name(), "asr");
        let edb = d.edb();
        let asr = edb.relation(&pred).unwrap();
        assert_eq!(asr.tuples(), &[vec![Const::Oid(s.0), Const::Oid(ta.0)]]);
        // The view rule is available for the optimizer.
        assert_eq!(d.asr_rules().len(), 1);
        assert_eq!(
            d.asr_rules()[0].to_string(),
            "asr(X0, X4) <- takes(X0, X1), is_section_of(X1, X2), \
             has_sections(X2, X3), has_ta(X3, X4)"
        );
    }

    #[test]
    fn bad_asr_paths_rejected() {
        let mut d = db();
        assert!(d.define_asr("v", "Student", &[]).is_err());
        assert!(d.define_asr("v", "Student", &["nope"]).is_err());
        assert!(d.define_asr("v", "Martian", &["takes"]).is_err());
    }

    #[test]
    fn unlink_removes_both_directions() {
        let mut d = db();
        let s = d.create("Student", vec![]).unwrap();
        let sec = d.create("Section", vec![]).unwrap();
        d.link(s, "takes", sec).unwrap();
        assert!(d.unlink(s, "takes", sec).unwrap());
        assert!(d.linked(s, "takes").unwrap().is_empty());
        assert!(d.linked(sec, "taken_by").unwrap().is_empty());
        // Second unlink is a no-op.
        assert!(!d.unlink(s, "takes", sec).unwrap());
        // The EDB no longer carries the pair.
        let edb = d.edb();
        assert!(edb.relation(&"takes".into()).is_none_or(|r| r.is_empty()));
    }

    #[test]
    fn unlink_frees_to_one_slot() {
        let mut d = db();
        let sec = d.create("Section", vec![]).unwrap();
        let c1 = d.create("Course", vec![]).unwrap();
        let c2 = d.create("Course", vec![]).unwrap();
        d.link(sec, "is_section_of", c1).unwrap();
        assert!(d.link(sec, "is_section_of", c2).is_err());
        d.unlink(sec, "is_section_of", c1).unwrap();
        d.link(sec, "is_section_of", c2).unwrap();
    }

    #[test]
    fn delete_severs_links_and_extents() {
        let mut d = db();
        let s = d.create("Student", vec![]).unwrap();
        let sec = d.create("Section", vec![]).unwrap();
        d.link(s, "takes", sec).unwrap();
        d.delete(s).unwrap();
        assert!(d.get(s).is_none());
        assert_eq!(d.extent("Student").len(), 0);
        assert_eq!(d.extent("Person").len(), 0);
        assert!(d.linked(sec, "taken_by").unwrap().is_empty());
        assert!(matches!(d.delete(s), Err(ObjDbError::UnknownObject { .. })));
    }

    #[test]
    fn set_attr_checks_types_and_invalidates() {
        let mut d = db();
        let p = d.create("Person", vec![]).unwrap();
        {
            let edb = d.edb();
            assert_eq!(edb.relation(&"person".into()).unwrap().len(), 1);
        }
        d.set_attr(p, "age", Value::Int(44)).unwrap();
        assert!(d.set_attr(p, "age", Value::Str("x".into())).is_err());
        let edb = d.edb();
        let person = edb.relation(&"person".into()).unwrap();
        let pos = d
            .catalog()
            .class_relation("Person")
            .unwrap()
            .arg_position("age")
            .unwrap();
        assert_eq!(person.tuples()[0][pos], Const::Int(44));
    }
}
