//! Lexer and recursive-descent parser for the ODL subset.
//!
//! Example input (the style of the ODMG-93 book, Figure 1 of the paper):
//!
//! ```text
//! struct Address {
//!     attribute string street;
//!     attribute string city;
//! };
//!
//! interface Person {
//!     extent Person;
//!     key name;
//!     attribute string name;
//!     attribute short age;
//!     attribute Address address;
//! };
//!
//! interface Employee : Person {
//!     extent Employee;
//!     attribute float salary;
//!     float taxes_withheld(in float rate);
//! };
//! ```

use crate::ast::*;
use crate::error::{OdlError, Result};

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    LBrace,
    RBrace,
    LParen,
    RParen,
    LAngle,
    RAngle,
    Colon,
    DoubleColon,
    Semi,
    Comma,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> OdlError {
        OdlError::Parse {
            message: message.into(),
            line: self.line,
            column: self.col,
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn tokens(mut self) -> Result<Vec<Spanned>> {
        let mut out = Vec::new();
        loop {
            loop {
                match self.peek() {
                    Some(c) if c.is_ascii_whitespace() => {
                        self.bump();
                    }
                    Some(b'/') if self.peek2() == Some(b'/') => {
                        while let Some(c) = self.peek() {
                            if c == b'\n' {
                                break;
                            }
                            self.bump();
                        }
                    }
                    Some(b'/') if self.peek2() == Some(b'*') => {
                        self.bump();
                        self.bump();
                        loop {
                            match self.bump() {
                                Some(b'*') if self.peek() == Some(b'/') => {
                                    self.bump();
                                    break;
                                }
                                Some(_) => {}
                                None => return Err(self.err("unterminated block comment")),
                            }
                        }
                    }
                    _ => break,
                }
            }
            let (line, col) = (self.line, self.col);
            let Some(c) = self.peek() else { break };
            let tok = match c {
                b'{' => {
                    self.bump();
                    Tok::LBrace
                }
                b'}' => {
                    self.bump();
                    Tok::RBrace
                }
                b'(' => {
                    self.bump();
                    Tok::LParen
                }
                b')' => {
                    self.bump();
                    Tok::RParen
                }
                b'<' => {
                    self.bump();
                    Tok::LAngle
                }
                b'>' => {
                    self.bump();
                    Tok::RAngle
                }
                b';' => {
                    self.bump();
                    Tok::Semi
                }
                b',' => {
                    self.bump();
                    Tok::Comma
                }
                b':' => {
                    self.bump();
                    if self.peek() == Some(b':') {
                        self.bump();
                        Tok::DoubleColon
                    } else {
                        Tok::Colon
                    }
                }
                c if c.is_ascii_alphabetic() || c == b'_' => {
                    let mut s = String::new();
                    while let Some(d) = self.peek() {
                        if d.is_ascii_alphanumeric() || d == b'_' {
                            s.push(d as char);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    Tok::Ident(s)
                }
                other => return Err(self.err(format!("unexpected character `{}`", other as char))),
            };
            out.push(Spanned { tok, line, col });
        }
        Ok(out)
    }
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn err_at(&self, message: impl Into<String>) -> OdlError {
        let (line, column) = self
            .toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|s| (s.line, s.col))
            .unwrap_or((1, 1));
        OdlError::Parse {
            message: message.into(),
            line,
            column,
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<()> {
        if self.peek() == Some(t) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err_at(format!("expected {what}")))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            _ => Err(self.err_at(format!("expected {what}"))),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s == kw)
    }

    /// Parse a type expression. `unsigned` prefixes and two-word numeric
    /// types are folded into [`BaseType`].
    fn type_expr(&mut self) -> Result<Type> {
        let first = self.ident("a type")?;
        let base = match first.as_str() {
            "unsigned" => {
                let second = self.ident("`short` or `long` after `unsigned`")?;
                match second.as_str() {
                    "short" | "long" => Some(BaseType::Int),
                    _ => return Err(self.err_at("expected `short` or `long` after `unsigned`")),
                }
            }
            "short" | "long" | "integer" | "int" => Some(BaseType::Int),
            "float" | "double" | "real" => Some(BaseType::Real),
            "string" | "char" => Some(BaseType::Str),
            "boolean" | "bool" => Some(BaseType::Bool),
            "Set" | "set" | "List" | "list" | "Bag" | "bag" => {
                let kind = match first.to_ascii_lowercase().as_str() {
                    "set" => CollectionKind::Set,
                    "list" => CollectionKind::List,
                    _ => CollectionKind::Bag,
                };
                self.expect(&Tok::LAngle, "`<`")?;
                let inner = self.type_expr()?;
                self.expect(&Tok::RAngle, "`>`")?;
                return Ok(Type::Collection(kind, Box::new(inner)));
            }
            _ => None,
        };
        Ok(match base {
            Some(b) => Type::Base(b),
            None => Type::Named(first),
        })
    }

    fn struct_decl(&mut self) -> Result<StructDecl> {
        // `struct` already consumed.
        let name = self.ident("structure name")?;
        self.expect(&Tok::LBrace, "`{`")?;
        let mut fields = Vec::new();
        while self.peek() != Some(&Tok::RBrace) {
            // Optional `attribute` keyword.
            if self.at_keyword("attribute") {
                self.pos += 1;
            }
            let ty = self.type_expr()?;
            let fname = self.ident("field name")?;
            self.expect(&Tok::Semi, "`;`")?;
            fields.push(AttributeDecl { name: fname, ty });
        }
        self.expect(&Tok::RBrace, "`}`")?;
        self.expect(&Tok::Semi, "`;` after `}`")?;
        Ok(StructDecl { name, fields })
    }

    fn interface_decl(&mut self) -> Result<InterfaceDecl> {
        // `interface` (or `class`) already consumed.
        let name = self.ident("interface name")?;
        let mut decl = InterfaceDecl {
            name,
            ..Default::default()
        };
        if self.peek() == Some(&Tok::Colon) {
            self.pos += 1;
            decl.super_class = Some(self.ident("superclass name")?);
        }
        self.expect(&Tok::LBrace, "`{`")?;
        while self.peek() != Some(&Tok::RBrace) {
            if self.at_keyword("extent") {
                self.pos += 1;
                decl.extent = Some(self.ident("extent name")?);
                self.expect(&Tok::Semi, "`;`")?;
            } else if self.at_keyword("key") || self.at_keyword("keys") {
                self.pos += 1;
                let mut key = vec![self.ident("key attribute")?];
                while self.peek() == Some(&Tok::Comma) {
                    self.pos += 1;
                    key.push(self.ident("key attribute")?);
                }
                self.expect(&Tok::Semi, "`;`")?;
                decl.keys.push(key);
            } else if self.at_keyword("attribute") {
                self.pos += 1;
                let ty = self.type_expr()?;
                let aname = self.ident("attribute name")?;
                self.expect(&Tok::Semi, "`;`")?;
                decl.attributes.push(AttributeDecl { name: aname, ty });
            } else if self.at_keyword("relationship") {
                self.pos += 1;
                let ty = self.type_expr()?;
                let (target, many) = match &ty {
                    Type::Named(n) => (n.clone(), false),
                    Type::Collection(_, inner) => match inner.as_ref() {
                        Type::Named(n) => (n.clone(), true),
                        _ => return Err(self.err_at("relationship target must be a class")),
                    },
                    Type::Base(_) => return Err(self.err_at("relationship target must be a class")),
                };
                let rname = self.ident("relationship name")?;
                let mut inverse = None;
                if self.at_keyword("inverse") {
                    self.pos += 1;
                    let cls = self.ident("inverse class")?;
                    self.expect(&Tok::DoubleColon, "`::`")?;
                    let rel = self.ident("inverse relationship name")?;
                    inverse = Some((cls, rel));
                }
                self.expect(&Tok::Semi, "`;`")?;
                decl.relationships.push(RelationshipDecl {
                    name: rname,
                    target,
                    many,
                    inverse,
                });
            } else {
                // A method: `<ret-type> name(in T a, in U b);`
                let ret = self.type_expr()?;
                let mname = self.ident("method name")?;
                self.expect(&Tok::LParen, "`(`")?;
                let mut params = Vec::new();
                if self.peek() != Some(&Tok::RParen) {
                    loop {
                        if self.at_keyword("in")
                            || self.at_keyword("out")
                            || self.at_keyword("inout")
                        {
                            self.pos += 1;
                        }
                        let pty = self.type_expr()?;
                        let pname = self.ident("parameter name")?;
                        params.push((pname, pty));
                        if self.peek() == Some(&Tok::Comma) {
                            self.pos += 1;
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RParen, "`)`")?;
                self.expect(&Tok::Semi, "`;`")?;
                decl.methods.push(MethodDecl {
                    name: mname,
                    params,
                    ret,
                });
            }
        }
        self.expect(&Tok::RBrace, "`}`")?;
        self.expect(&Tok::Semi, "`;` after `}`")?;
        Ok(decl)
    }

    fn decls(&mut self) -> Result<Vec<Decl>> {
        let mut out = Vec::new();
        while let Some(tok) = self.peek().cloned() {
            match tok {
                Tok::Ident(kw) if kw == "struct" => {
                    self.pos += 1;
                    out.push(Decl::Struct(self.struct_decl()?));
                }
                Tok::Ident(kw) if kw == "interface" || kw == "class" => {
                    self.pos += 1;
                    out.push(Decl::Interface(self.interface_decl()?));
                }
                _ => return Err(self.err_at("expected `interface`, `class` or `struct`")),
            }
        }
        Ok(out)
    }
}

/// Parse an ODL source text into declarations.
pub fn parse_odl(src: &str) -> Result<Vec<Decl>> {
    let _span = sqo_obs::span!("odl.parse");
    let toks = Lexer::new(src).tokens()?;
    let mut p = Parser { toks, pos: 0 };
    let decls = p.decls()?;
    sqo_obs::add(
        sqo_obs::Counter::OdlClassesParsed,
        decls
            .iter()
            .filter(|d| matches!(d, Decl::Interface(_)))
            .count() as u64,
    );
    Ok(decls)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_struct() {
        let decls =
            parse_odl("struct Address { attribute string street; attribute string city; };")
                .unwrap();
        let Decl::Struct(s) = &decls[0] else { panic!() };
        assert_eq!(s.name, "Address");
        assert_eq!(s.fields.len(), 2);
        assert_eq!(s.fields[1].name, "city");
    }

    #[test]
    fn struct_fields_without_attribute_keyword() {
        let decls = parse_odl("struct P { string a; short b; };").unwrap();
        let Decl::Struct(s) = &decls[0] else { panic!() };
        assert_eq!(s.fields.len(), 2);
        assert_eq!(s.fields[1].ty, Type::Base(BaseType::Int));
    }

    #[test]
    fn parse_interface_with_everything() {
        let src = r#"
            interface Employee : Person {
                extent Employee;
                key id;
                attribute string id;
                attribute float salary;
                relationship Set<Section> teaches inverse Section::is_taught_by;
                float taxes_withheld(in float rate);
            };
        "#;
        let decls = parse_odl(src).unwrap();
        let Decl::Interface(i) = &decls[0] else {
            panic!()
        };
        assert_eq!(i.name, "Employee");
        assert_eq!(i.super_class.as_deref(), Some("Person"));
        assert_eq!(i.extent.as_deref(), Some("Employee"));
        assert_eq!(i.keys, vec![vec!["id".to_string()]]);
        assert_eq!(i.attributes.len(), 2);
        let r = &i.relationships[0];
        assert_eq!(r.name, "teaches");
        assert_eq!(r.target, "Section");
        assert!(r.many);
        assert_eq!(
            r.inverse,
            Some(("Section".to_string(), "is_taught_by".to_string()))
        );
        let m = &i.methods[0];
        assert_eq!(m.name, "taxes_withheld");
        assert_eq!(m.params.len(), 1);
        assert_eq!(m.ret, Type::Base(BaseType::Real));
    }

    #[test]
    fn to_one_relationship() {
        let src = "interface Section { relationship TA has_ta inverse TA::assists; };";
        let decls = parse_odl(src).unwrap();
        let Decl::Interface(i) = &decls[0] else {
            panic!()
        };
        assert!(!i.relationships[0].many);
    }

    #[test]
    fn unsigned_types_and_comments() {
        let src = "
            // line comment
            interface P { /* block
            comment */ attribute unsigned short age; };
        ";
        let decls = parse_odl(src).unwrap();
        let Decl::Interface(i) = &decls[0] else {
            panic!()
        };
        assert_eq!(i.attributes[0].ty, Type::Base(BaseType::Int));
    }

    #[test]
    fn composite_key() {
        let src = "interface C { key a, b; attribute string a; attribute string b; };";
        let decls = parse_odl(src).unwrap();
        let Decl::Interface(i) = &decls[0] else {
            panic!()
        };
        assert_eq!(i.keys, vec![vec!["a".to_string(), "b".to_string()]]);
    }

    #[test]
    fn method_with_multiple_params_and_named_return() {
        let src = "interface C { Address relocate(in string street, in string city); };";
        let decls = parse_odl(src).unwrap();
        let Decl::Interface(i) = &decls[0] else {
            panic!()
        };
        assert_eq!(i.methods[0].params.len(), 2);
        assert_eq!(i.methods[0].ret, Type::Named("Address".into()));
    }

    #[test]
    fn errors_carry_position() {
        let err = parse_odl("interface {").unwrap_err();
        assert!(matches!(err, OdlError::Parse { line: 1, .. }));
        assert!(parse_odl("struct S { string; };").is_err());
        assert!(parse_odl("bogus").is_err());
    }

    #[test]
    fn relationship_requires_class_target() {
        assert!(parse_odl("interface C { relationship Set<string> r; };").is_err());
        assert!(parse_odl("interface C { relationship string r; };").is_err());
    }
}
