#![warn(missing_docs)]

//! # sqo-odl
//!
//! A parser and semantic model for the subset of ODMG-93 **ODL** used by
//! *"Semantic Query Optimization for Object Databases"* (Grant, Gryz,
//! Minker, Raschid — ICDE 1997): interfaces with single inheritance,
//! extents, keys, attributes of base/structure/class types, relationships
//! with cardinality and inverses, methods, and named structures.
//!
//! The bundled [`fixtures::university_schema`] reproduces Figure 1 of the
//! paper.

pub mod ast;
pub mod error;
pub mod fixtures;
pub mod parser;
pub mod schema;

pub use ast::{
    AttributeDecl, BaseType, CollectionKind, Decl, InterfaceDecl, MethodDecl, RelationshipDecl,
    StructDecl, Type,
};
pub use error::{OdlError, Result};
pub use parser::parse_odl;
pub use schema::{Member, Schema};
