//! Error types for ODL parsing and schema analysis.

use std::fmt;

/// Errors produced while parsing ODL or validating a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OdlError {
    /// Lexical or syntactic error with position.
    Parse {
        /// Human-readable description.
        message: String,
        /// 1-based line number.
        line: usize,
        /// 1-based column number.
        column: usize,
    },
    /// A named type (class or structure) was defined twice.
    DuplicateType {
        /// The offending name.
        name: String,
    },
    /// A member (attribute/relationship/method) name is repeated within a
    /// class or clashes with an inherited member.
    DuplicateMember {
        /// The class involved.
        class: String,
        /// The member name.
        member: String,
    },
    /// A referenced type does not exist.
    UnknownType {
        /// The offending name.
        name: String,
        /// Where the reference occurred.
        referenced_in: String,
    },
    /// The superclass of a class does not exist.
    UnknownSuper {
        /// The class involved.
        class: String,
        /// The missing superclass.
        superclass: String,
    },
    /// Inheritance cycle.
    InheritanceCycle {
        /// The class involved.
        class: String,
    },
    /// A relationship's inverse declaration is inconsistent.
    BadInverse {
        /// The class involved.
        class: String,
        /// The relationship involved.
        relationship: String,
        /// Additional detail.
        detail: String,
    },
    /// A key refers to an attribute that does not exist on the class.
    UnknownKeyAttribute {
        /// The class involved.
        class: String,
        /// The attribute involved.
        attribute: String,
    },
}

impl fmt::Display for OdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OdlError::Parse {
                message,
                line,
                column,
            } => write!(f, "ODL parse error at {line}:{column}: {message}"),
            OdlError::DuplicateType { name } => write!(f, "type `{name}` defined twice"),
            OdlError::DuplicateMember { class, member } => {
                write!(f, "member `{member}` duplicated in class `{class}`")
            }
            OdlError::UnknownType {
                name,
                referenced_in,
            } => write!(f, "unknown type `{name}` referenced in `{referenced_in}`"),
            OdlError::UnknownSuper { class, superclass } => {
                write!(f, "class `{class}` extends unknown class `{superclass}`")
            }
            OdlError::InheritanceCycle { class } => {
                write!(f, "inheritance cycle through class `{class}`")
            }
            OdlError::BadInverse {
                class,
                relationship,
                detail,
            } => write!(
                f,
                "bad inverse for relationship `{class}::{relationship}`: {detail}"
            ),
            OdlError::UnknownKeyAttribute { class, attribute } => {
                write!(
                    f,
                    "key attribute `{attribute}` not found on class `{class}`"
                )
            }
        }
    }
}

impl std::error::Error for OdlError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, OdlError>;
