//! The analysed schema model: validated classes, structures and lookups.
//!
//! [`Schema::from_decls`] checks the well-formedness rules the paper's
//! translation relies on (single inheritance without cycles, resolvable
//! types, consistent inverse relationships, keys over existing
//! attributes) and provides the inheritance-aware lookups used by the
//! schema and query translators.

use crate::ast::*;
use crate::error::{OdlError, Result};
use crate::parser::parse_odl;
use std::collections::HashMap;

/// A member of a class, found by [`Schema::find_member`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Member<'a> {
    /// An attribute (possibly inherited), with the class that declares it.
    Attribute(&'a str, &'a AttributeDecl),
    /// A relationship (possibly inherited), with the declaring class.
    Relationship(&'a str, &'a RelationshipDecl),
    /// A method (possibly inherited), with the declaring class.
    Method(&'a str, &'a MethodDecl),
}

/// A validated schema.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    classes: Vec<InterfaceDecl>,
    structs: Vec<StructDecl>,
    class_index: HashMap<String, usize>,
    struct_index: HashMap<String, usize>,
}

impl Schema {
    /// Parse and validate ODL source.
    pub fn parse(src: &str) -> Result<Schema> {
        Schema::from_decls(parse_odl(src)?)
    }

    /// Build and validate a schema from declarations.
    pub fn from_decls(decls: Vec<Decl>) -> Result<Schema> {
        let mut s = Schema::default();
        for d in decls {
            match d {
                Decl::Interface(i) => {
                    if s.class_index.contains_key(&i.name) || s.struct_index.contains_key(&i.name) {
                        return Err(OdlError::DuplicateType { name: i.name });
                    }
                    s.class_index.insert(i.name.clone(), s.classes.len());
                    s.classes.push(i);
                }
                Decl::Struct(st) => {
                    if s.class_index.contains_key(&st.name) || s.struct_index.contains_key(&st.name)
                    {
                        return Err(OdlError::DuplicateType { name: st.name });
                    }
                    s.struct_index.insert(st.name.clone(), s.structs.len());
                    s.structs.push(st);
                }
            }
        }
        s.validate()?;
        Ok(s)
    }

    fn validate(&self) -> Result<()> {
        // Superclasses exist, no cycles.
        for c in &self.classes {
            if let Some(sup) = &c.super_class {
                if !self.class_index.contains_key(sup) {
                    return Err(OdlError::UnknownSuper {
                        class: c.name.clone(),
                        superclass: sup.clone(),
                    });
                }
            }
            // Cycle detection by walking up with a step bound.
            let mut cur = c.super_class.as_deref();
            let mut steps = 0;
            while let Some(name) = cur {
                if name == c.name {
                    return Err(OdlError::InheritanceCycle {
                        class: c.name.clone(),
                    });
                }
                steps += 1;
                if steps > self.classes.len() {
                    return Err(OdlError::InheritanceCycle {
                        class: c.name.clone(),
                    });
                }
                cur = self
                    .class_index
                    .get(name)
                    .and_then(|&i| self.classes[i].super_class.as_deref());
            }
        }
        // Types resolve; member names unique along the chain; inverse
        // consistency; keys exist.
        for c in &self.classes {
            let mut seen: Vec<&str> = Vec::new();
            for a in self.all_attributes(&c.name) {
                if seen.contains(&a.1.name.as_str()) {
                    return Err(OdlError::DuplicateMember {
                        class: c.name.clone(),
                        member: a.1.name.clone(),
                    });
                }
                seen.push(&a.1.name);
                self.check_type(&a.1.ty, &c.name)?;
            }
            for (_, r) in self.all_relationships(&c.name) {
                if seen.contains(&r.name.as_str()) {
                    return Err(OdlError::DuplicateMember {
                        class: c.name.clone(),
                        member: r.name.clone(),
                    });
                }
                seen.push(&r.name);
                if !self.class_index.contains_key(&r.target) {
                    return Err(OdlError::UnknownType {
                        name: r.target.clone(),
                        referenced_in: format!("{}::{}", c.name, r.name),
                    });
                }
            }
            for (_, m) in self.all_methods(&c.name) {
                if seen.contains(&m.name.as_str()) {
                    return Err(OdlError::DuplicateMember {
                        class: c.name.clone(),
                        member: m.name.clone(),
                    });
                }
                seen.push(&m.name);
                self.check_type(&m.ret, &c.name)?;
                for (_, t) in &m.params {
                    self.check_type(t, &c.name)?;
                }
            }
            // Inverse declarations must point back.
            for r in &c.relationships {
                if let Some((icls, irel)) = &r.inverse {
                    if icls != &r.target {
                        return Err(OdlError::BadInverse {
                            class: c.name.clone(),
                            relationship: r.name.clone(),
                            detail: format!(
                                "inverse declared on `{icls}` but the target is `{}`",
                                r.target
                            ),
                        });
                    }
                    let Some(target) = self.class(&r.target) else {
                        continue; // reported above
                    };
                    let Some(back) = self
                        .all_relationships(&target.name)
                        .into_iter()
                        .find(|(_, tr)| &tr.name == irel)
                    else {
                        return Err(OdlError::BadInverse {
                            class: c.name.clone(),
                            relationship: r.name.clone(),
                            detail: format!("`{icls}::{irel}` does not exist"),
                        });
                    };
                    // The inverse's target must be this class or one of its
                    // superclasses.
                    if !self.is_subclass_of(&c.name, &back.1.target) {
                        return Err(OdlError::BadInverse {
                            class: c.name.clone(),
                            relationship: r.name.clone(),
                            detail: format!(
                                "`{icls}::{irel}` targets `{}`, not `{}`",
                                back.1.target, c.name
                            ),
                        });
                    }
                }
            }
            // Keys must name existing attributes (possibly inherited).
            for key in &c.keys {
                for attr in key {
                    let found = self
                        .all_attributes(&c.name)
                        .iter()
                        .any(|(_, a)| &a.name == attr);
                    if !found {
                        return Err(OdlError::UnknownKeyAttribute {
                            class: c.name.clone(),
                            attribute: attr.clone(),
                        });
                    }
                }
            }
        }
        // Structure field types resolve.
        for st in &self.structs {
            for f in &st.fields {
                self.check_type(&f.ty, &st.name)?;
            }
        }
        Ok(())
    }

    fn check_type(&self, t: &Type, referenced_in: &str) -> Result<()> {
        match t {
            Type::Base(_) => Ok(()),
            Type::Named(n) => {
                if self.class_index.contains_key(n) || self.struct_index.contains_key(n) {
                    Ok(())
                } else {
                    Err(OdlError::UnknownType {
                        name: n.clone(),
                        referenced_in: referenced_in.to_string(),
                    })
                }
            }
            Type::Collection(_, inner) => self.check_type(inner, referenced_in),
        }
    }

    /// Look up a class by name.
    pub fn class(&self, name: &str) -> Option<&InterfaceDecl> {
        self.class_index.get(name).map(|&i| &self.classes[i])
    }

    /// Look up a structure by name.
    pub fn structure(&self, name: &str) -> Option<&StructDecl> {
        self.struct_index.get(name).map(|&i| &self.structs[i])
    }

    /// All classes, in declaration order.
    pub fn classes(&self) -> &[InterfaceDecl] {
        &self.classes
    }

    /// All structures, in declaration order.
    pub fn structures(&self) -> &[StructDecl] {
        &self.structs
    }

    /// Look up the class whose extent (or name, as a fallback) matches.
    pub fn class_by_extent(&self, extent: &str) -> Option<&InterfaceDecl> {
        self.classes
            .iter()
            .find(|c| c.extent.as_deref() == Some(extent))
            .or_else(|| self.class(extent))
    }

    /// The superclass chain from the root down to (and including) the
    /// class itself.
    pub fn chain(&self, name: &str) -> Vec<&InterfaceDecl> {
        let mut rev = Vec::new();
        let mut cur = self.class(name);
        while let Some(c) = cur {
            rev.push(c);
            cur = c.super_class.as_deref().and_then(|s| self.class(s));
            if rev.len() > self.classes.len() {
                break;
            }
        }
        rev.reverse();
        rev
    }

    /// Whether `sub` equals `sup` or inherits from it (reflexive).
    pub fn is_subclass_of(&self, sub: &str, sup: &str) -> bool {
        self.chain(sub).iter().any(|c| c.name == sup)
    }

    /// Whether `sub` strictly inherits from `sup`.
    pub fn is_strict_subclass_of(&self, sub: &str, sup: &str) -> bool {
        sub != sup && self.is_subclass_of(sub, sup)
    }

    /// All attributes of a class, inherited first (translation rule 1),
    /// each with its declaring class name.
    pub fn all_attributes(&self, name: &str) -> Vec<(&str, &AttributeDecl)> {
        self.chain(name)
            .into_iter()
            .flat_map(|c| c.attributes.iter().map(move |a| (c.name.as_str(), a)))
            .collect()
    }

    /// All relationships of a class, inherited first.
    pub fn all_relationships(&self, name: &str) -> Vec<(&str, &RelationshipDecl)> {
        self.chain(name)
            .into_iter()
            .flat_map(|c| c.relationships.iter().map(move |r| (c.name.as_str(), r)))
            .collect()
    }

    /// All methods of a class, inherited first.
    pub fn all_methods(&self, name: &str) -> Vec<(&str, &MethodDecl)> {
        self.chain(name)
            .into_iter()
            .flat_map(|c| c.methods.iter().map(move |m| (c.name.as_str(), m)))
            .collect()
    }

    /// Find a member (attribute, relationship or method) of a class by
    /// name, searching the inheritance chain.
    pub fn find_member<'a>(&'a self, class: &str, member: &str) -> Option<Member<'a>> {
        for (cls, a) in self.all_attributes(class) {
            if a.name == member {
                return Some(Member::Attribute(cls, a));
            }
        }
        for (cls, r) in self.all_relationships(class) {
            if r.name == member {
                return Some(Member::Relationship(cls, r));
            }
        }
        for (cls, m) in self.all_methods(class) {
            if m.name == member {
                return Some(Member::Method(cls, m));
            }
        }
        None
    }

    /// Direct subclasses of a class.
    pub fn subclasses(&self, name: &str) -> Vec<&InterfaceDecl> {
        self.classes
            .iter()
            .filter(|c| c.super_class.as_deref() == Some(name))
            .collect()
    }

    /// Whether a relationship is one-to-one: this side is to-one and the
    /// declared inverse side is to-one as well.
    pub fn is_one_to_one(&self, class: &str, rel: &RelationshipDecl) -> bool {
        if rel.many {
            return false;
        }
        let _ = class;
        match &rel.inverse {
            Some((icls, irel)) => self
                .all_relationships(icls)
                .into_iter()
                .find(|(_, r)| &r.name == irel)
                .map(|(_, r)| !r.many)
                .unwrap_or(false),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Schema {
        Schema::parse(
            r#"
            struct Address { attribute string street; attribute string city; };
            interface Person {
                extent Person;
                attribute string name;
                attribute short age;
                attribute Address address;
            };
            interface Student : Person {
                extent Student;
                attribute string student_id;
                relationship Set<Section> takes inverse Section::taken_by;
            };
            interface Section {
                extent Section;
                relationship Set<Student> taken_by inverse Student::takes;
            };
            interface Advisor { extent Advisor; };
            "#,
        )
        .unwrap_or_else(|e| panic!("schema should parse: {e}"))
    }

    #[test]
    fn inherited_attributes_come_first() {
        let s = tiny();
        let attrs = s.all_attributes("Student");
        let names: Vec<&str> = attrs.iter().map(|(_, a)| a.name.as_str()).collect();
        assert_eq!(names, vec!["name", "age", "address", "student_id"]);
        assert_eq!(attrs[0].0, "Person");
        assert_eq!(attrs[3].0, "Student");
    }

    #[test]
    fn subclass_queries() {
        let s = tiny();
        assert!(s.is_subclass_of("Student", "Person"));
        assert!(s.is_subclass_of("Person", "Person"));
        assert!(!s.is_strict_subclass_of("Person", "Person"));
        assert!(s.is_strict_subclass_of("Student", "Person"));
        assert!(!s.is_subclass_of("Person", "Student"));
        assert_eq!(s.subclasses("Person").len(), 1);
    }

    #[test]
    fn find_member_searches_chain() {
        let s = tiny();
        assert!(matches!(
            s.find_member("Student", "name"),
            Some(Member::Attribute("Person", _))
        ));
        assert!(matches!(
            s.find_member("Student", "takes"),
            Some(Member::Relationship("Student", _))
        ));
        assert!(s.find_member("Student", "nope").is_none());
    }

    #[test]
    fn unknown_super_rejected() {
        let err = Schema::parse("interface A : Nope { };").unwrap_err();
        assert!(matches!(err, OdlError::UnknownSuper { .. }));
    }

    #[test]
    fn inheritance_cycle_rejected() {
        let err = Schema::parse("interface A : B { }; interface B : A { };").unwrap_err();
        assert!(matches!(err, OdlError::InheritanceCycle { .. }));
    }

    #[test]
    fn duplicate_member_across_chain_rejected() {
        let err = Schema::parse(
            "interface A { attribute string x; }; interface B : A { attribute short x; };",
        )
        .unwrap_err();
        assert!(matches!(err, OdlError::DuplicateMember { .. }));
    }

    #[test]
    fn unknown_attribute_type_rejected() {
        let err = Schema::parse("interface A { attribute Missing x; };").unwrap_err();
        assert!(matches!(err, OdlError::UnknownType { .. }));
    }

    #[test]
    fn unknown_relationship_target_rejected() {
        let err = Schema::parse("interface A { relationship Missing r; };").unwrap_err();
        assert!(matches!(err, OdlError::UnknownType { .. }));
    }

    #[test]
    fn bad_inverse_rejected() {
        let err =
            Schema::parse("interface A { relationship B r inverse B::nope; }; interface B { };")
                .unwrap_err();
        assert!(matches!(err, OdlError::BadInverse { .. }));
    }

    #[test]
    fn inverse_must_point_back() {
        let err = Schema::parse(
            "interface A { relationship B r inverse B::s; };
             interface B { relationship C s inverse A::r; };
             interface C { };",
        )
        .unwrap_err();
        assert!(matches!(err, OdlError::BadInverse { .. }));
    }

    #[test]
    fn key_attribute_must_exist() {
        let err = Schema::parse("interface A { key nope; attribute string x; };").unwrap_err();
        assert!(matches!(err, OdlError::UnknownKeyAttribute { .. }));
    }

    #[test]
    fn key_may_be_inherited() {
        let s = Schema::parse("interface A { attribute string x; }; interface B : A { key x; };");
        assert!(s.is_ok());
    }

    #[test]
    fn one_to_one_detection() {
        let s = Schema::parse(
            "interface Sec {
                 relationship Ta has_ta inverse Ta::assists;
                 relationship Course course_of inverse Course::sections;
             };
             interface Ta { relationship Sec assists inverse Sec::has_ta; };
             interface Course { relationship Set<Sec> sections inverse Sec::course_of; };",
        )
        .unwrap();
        let sec = s.class("Sec").unwrap();
        assert!(s.is_one_to_one("Sec", &sec.relationships[0]));
        assert!(!s.is_one_to_one("Sec", &sec.relationships[1]));
        let course = s.class("Course").unwrap();
        assert!(!s.is_one_to_one("Course", &course.relationships[0]));
    }

    #[test]
    fn class_by_extent_falls_back_to_name() {
        let s = tiny();
        assert!(s.class_by_extent("Person").is_some());
        assert!(s.class_by_extent("Advisor").is_some());
        assert!(s.class_by_extent("Nothing").is_none());
    }

    #[test]
    fn duplicate_type_rejected() {
        assert!(matches!(
            Schema::parse("interface A { }; struct A { string x; };"),
            Err(OdlError::DuplicateType { .. })
        ));
    }
}
