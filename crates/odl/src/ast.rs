//! Abstract syntax for the supported ODL subset.
//!
//! The subset covers everything the paper's translation (Section 4.2)
//! consumes: interfaces (classes) with single inheritance, extents, keys,
//! attributes of base / structure / class types, relationships with
//! cardinality (via collection types) and inverse declarations, methods
//! with typed parameters, and named structures.
//!
//! ODMG-93 allows multiple inheritance of interfaces; we restrict to
//! single inheritance so the attribute order of translation rule 1 is
//! unambiguous (documented substitution in DESIGN.md).

use std::fmt;

/// A base (atomic) type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaseType {
    /// `string`
    Str,
    /// `short`, `long`, `unsigned short`, `unsigned long`, `integer`
    Int,
    /// `float`, `double`
    Real,
    /// `boolean`
    Bool,
}

impl fmt::Display for BaseType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BaseType::Str => "string",
            BaseType::Int => "long",
            BaseType::Real => "float",
            BaseType::Bool => "boolean",
        })
    }
}

/// Collection kinds for relationship/attribute types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectionKind {
    /// `Set<T>`
    Set,
    /// `List<T>`
    List,
    /// `Bag<T>`
    Bag,
}

impl fmt::Display for CollectionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CollectionKind::Set => "Set",
            CollectionKind::List => "List",
            CollectionKind::Bag => "Bag",
        })
    }
}

/// A type expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// A base type.
    Base(BaseType),
    /// A named type: a class or a structure.
    Named(String),
    /// A collection of an element type.
    Collection(CollectionKind, Box<Type>),
}

impl Type {
    /// The named element type, stripping one collection layer if present.
    pub fn element_name(&self) -> Option<&str> {
        match self {
            Type::Named(n) => Some(n),
            Type::Collection(_, inner) => inner.element_name(),
            Type::Base(_) => None,
        }
    }

    /// Whether the type is a collection.
    pub fn is_collection(&self) -> bool {
        matches!(self, Type::Collection(..))
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Base(b) => b.fmt(f),
            Type::Named(n) => f.write_str(n),
            Type::Collection(k, t) => write!(f, "{k}<{t}>"),
        }
    }
}

/// An attribute declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeDecl {
    /// The attribute name.
    pub name: String,
    /// The attribute type.
    pub ty: Type,
}

/// A relationship declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationshipDecl {
    /// The relationship name.
    pub name: String,
    /// The target class name.
    pub target: String,
    /// Whether this side is a collection (to-many).
    pub many: bool,
    /// The inverse declaration `inverse Target::name`, if present.
    pub inverse: Option<(String, String)>,
}

/// A method (operation) declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodDecl {
    /// The method name.
    pub name: String,
    /// The user-provided parameters (name, type); all `in` mode.
    pub params: Vec<(String, Type)>,
    /// The return type.
    pub ret: Type,
}

/// An interface (class) declaration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct InterfaceDecl {
    /// The class name.
    pub name: String,
    /// The (single) superclass, if any.
    pub super_class: Option<String>,
    /// The extent name, if declared.
    pub extent: Option<String>,
    /// Declared keys; each key is a list of attribute names.
    pub keys: Vec<Vec<String>>,
    /// Attribute declarations, in order.
    pub attributes: Vec<AttributeDecl>,
    /// Relationship declarations, in order.
    pub relationships: Vec<RelationshipDecl>,
    /// Method declarations, in order.
    pub methods: Vec<MethodDecl>,
}

/// A structure declaration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StructDecl {
    /// The structure name.
    pub name: String,
    /// The fields, in order.
    pub fields: Vec<AttributeDecl>,
}

/// A top-level ODL declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum Decl {
    /// An interface (class).
    Interface(InterfaceDecl),
    /// A structure.
    Struct(StructDecl),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_display() {
        let t = Type::Collection(CollectionKind::Set, Box::new(Type::Named("Section".into())));
        assert_eq!(t.to_string(), "Set<Section>");
        assert_eq!(t.element_name(), Some("Section"));
        assert!(t.is_collection());
        assert_eq!(Type::Base(BaseType::Str).to_string(), "string");
        assert_eq!(Type::Base(BaseType::Str).element_name(), None);
    }
}
