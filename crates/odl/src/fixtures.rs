//! The example database schema of Figure 1 of the paper.
//!
//! The figure is "a slight modification of the example from [the ODMG-93
//! book]": a university database with a Person / Employee / Faculty and
//! Person / Student / TA hierarchy, Course and Section classes, an
//! `Address` structure attribute, and the relationships exercised by the
//! paper's queries (`Takes`, `Is_taught_by`/`Teaches`,
//! `Is_section_of`/`Has_sections`, `Has_ta`/`Assists`).
//!
//! Deviation (documented in DESIGN.md): ODMG-93 lets `TA` inherit from
//! both `Employee` and `Student`; we keep single inheritance
//! (`TA : Student`) and give TAs an `employee_id` attribute, which is all
//! that Application 3's query ("the employee id of a TA") needs.
//!
//! Relationship names are lower-cased relative to the figure (`takes`
//! instead of `Takes`) so the DATALOG convention — predicates start with
//! a lower-case letter — holds verbatim; the OQL front end accepts both
//! spellings via case-insensitive member lookup.

use crate::schema::Schema;

/// The ODL source of the Figure 1 university schema.
pub const UNIVERSITY_ODL: &str = r#"
struct Address {
    attribute string street;
    attribute string city;
};

interface Person {
    extent Person;
    key name;
    attribute string name;
    attribute short age;
    attribute Address address;
};

interface Employee : Person {
    extent Employee;
    attribute float salary;
    float taxes_withheld(in float rate);
};

interface Faculty : Employee {
    extent Faculty;
    attribute string rank;
    relationship Set<Section> teaches inverse Section::is_taught_by;
};

interface Student : Person {
    extent Student;
    attribute string student_id;
    relationship Set<Section> takes inverse Section::taken_by;
};

interface TA : Student {
    extent TA;
    attribute string employee_id;
    relationship Section assists inverse Section::has_ta;
};

interface Course {
    extent Course;
    key number;
    attribute string number;
    attribute string title;
    relationship Set<Section> has_sections inverse Section::is_section_of;
};

interface Section {
    extent Section;
    attribute string number;
    relationship Course is_section_of inverse Course::has_sections;
    relationship Faculty is_taught_by inverse Faculty::teaches;
    relationship TA has_ta inverse TA::assists;
    relationship Set<Student> taken_by inverse Student::takes;
};
"#;

/// Parse and validate the university schema. Panics only if the constant
/// above is broken, which the test suite guards.
pub fn university_schema() -> Schema {
    Schema::parse(UNIVERSITY_ODL).expect("the bundled university schema is valid")
}

/// A relationship line of an [`InterfaceSketch`].
#[derive(Debug, Clone)]
pub struct RelationshipSketch {
    /// Member name.
    pub name: String,
    /// Target class.
    pub target: String,
    /// Whether this side is set-valued (`Set<Target>`).
    pub many: bool,
    /// The inverse member, declared on the target class.
    pub inverse: String,
}

/// A programmatic interface declaration that renders to ODL source —
/// the generator hook used by the fuzz harness to emit random-but-valid
/// schemas through the same parser/validator as hand-written fixtures.
#[derive(Debug, Clone, Default)]
pub struct InterfaceSketch {
    /// Class name (also used as the extent name).
    pub name: String,
    /// Direct superclass, if any.
    pub parent: Option<String>,
    /// Key attribute names (each rendered as its own `key` line).
    pub keys: Vec<String>,
    /// Attributes as (name, ODL type text) pairs, e.g. `("age", "long")`.
    pub attributes: Vec<(String, String)>,
    /// Relationships declared on this class.
    pub relationships: Vec<RelationshipSketch>,
}

impl std::fmt::Display for InterfaceSketch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.parent {
            Some(p) => writeln!(f, "interface {} : {} {{", self.name, p)?,
            None => writeln!(f, "interface {} {{", self.name)?,
        }
        writeln!(f, "    extent {};", self.name)?;
        for k in &self.keys {
            writeln!(f, "    key {k};")?;
        }
        for (name, ty) in &self.attributes {
            writeln!(f, "    attribute {ty} {name};")?;
        }
        for r in &self.relationships {
            let ty = if r.many {
                format!("Set<{}>", r.target)
            } else {
                r.target.clone()
            };
            writeln!(
                f,
                "    relationship {ty} {} inverse {}::{};",
                r.name, r.target, r.inverse
            )?;
        }
        write!(f, "}};")
    }
}

/// Render a list of interface sketches into one ODL source text.
pub fn render_schema(interfaces: &[InterfaceSketch]) -> String {
    let mut out = String::new();
    for i in interfaces {
        out.push_str(&i.to_string());
        out.push_str("\n\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Member;

    #[test]
    fn fixture_parses_and_validates() {
        let s = university_schema();
        assert_eq!(s.classes().len(), 7);
        assert_eq!(s.structures().len(), 1);
    }

    #[test]
    fn hierarchy_matches_figure1() {
        let s = university_schema();
        assert!(s.is_strict_subclass_of("Faculty", "Employee"));
        assert!(s.is_strict_subclass_of("Employee", "Person"));
        assert!(s.is_strict_subclass_of("Faculty", "Person"));
        assert!(s.is_strict_subclass_of("Student", "Person"));
        assert!(s.is_strict_subclass_of("TA", "Student"));
        assert!(!s.is_subclass_of("Faculty", "Student"));
    }

    #[test]
    fn faculty_inherits_name_address_and_method() {
        let s = university_schema();
        assert!(matches!(
            s.find_member("Faculty", "name"),
            Some(Member::Attribute("Person", _))
        ));
        assert!(matches!(
            s.find_member("Faculty", "address"),
            Some(Member::Attribute("Person", _))
        ));
        assert!(matches!(
            s.find_member("Faculty", "taxes_withheld"),
            Some(Member::Method("Employee", _))
        ));
    }

    #[test]
    fn has_ta_is_one_to_one() {
        let s = university_schema();
        let section = s.class("Section").unwrap();
        let has_ta = section
            .relationships
            .iter()
            .find(|r| r.name == "has_ta")
            .unwrap();
        assert!(s.is_one_to_one("Section", has_ta));
        let taken_by = section
            .relationships
            .iter()
            .find(|r| r.name == "taken_by")
            .unwrap();
        assert!(!s.is_one_to_one("Section", taken_by));
    }

    #[test]
    fn extents_resolve() {
        let s = university_schema();
        for name in [
            "Person", "Employee", "Faculty", "Student", "TA", "Course", "Section",
        ] {
            assert!(s.class_by_extent(name).is_some(), "extent {name}");
        }
    }

    #[test]
    fn sketch_renders_valid_odl() {
        let sketches = vec![
            InterfaceSketch {
                name: "C0".into(),
                keys: vec!["a0_1".into()],
                attributes: vec![
                    ("a0_0".into(), "long".into()),
                    ("a0_1".into(), "string".into()),
                ],
                relationships: vec![RelationshipSketch {
                    name: "r0".into(),
                    target: "C1".into(),
                    many: true,
                    inverse: "r0_inv".into(),
                }],
                ..Default::default()
            },
            InterfaceSketch {
                name: "C1".into(),
                parent: Some("C0".into()),
                attributes: vec![("a1_0".into(), "long".into())],
                relationships: vec![RelationshipSketch {
                    name: "r0_inv".into(),
                    target: "C0".into(),
                    many: true,
                    inverse: "r0".into(),
                }],
                ..Default::default()
            },
        ];
        let src = render_schema(&sketches);
        let s = Schema::parse(&src).expect("sketched schema parses");
        assert!(s.is_strict_subclass_of("C1", "C0"));
        assert_eq!(s.class("C0").unwrap().keys, vec![vec!["a0_1".to_string()]]);
        assert!(s.class_by_extent("C1").is_some());
    }

    #[test]
    fn keys_present() {
        let s = university_schema();
        assert_eq!(
            s.class("Person").unwrap().keys,
            vec![vec!["name".to_string()]]
        );
        assert_eq!(
            s.class("Course").unwrap().keys,
            vec![vec!["number".to_string()]]
        );
    }
}
