//! Step 2: query translation — OQL → conjunctive Datalog.
//!
//! Follows Section 4.3 and Example 2 of the paper:
//!
//! * the query is first normalized to one-dot form
//!   ([`sqo_oql::normalize()`]);
//! * each `from` entry contributes atoms: an extent entry yields its
//!   class atom, a relationship entry `y in x.takes` yields `takes(X, Y)`,
//!   a structure-attribute entry `w in z.address` forces `z`'s class atom
//!   (binding `W` at the attribute position — the "domain identification"
//!   via OID-identification ICs) plus the structure atom `address(W, …)`;
//! * method applications become atoms over their method relations with a
//!   fresh result variable (`taxes_withheld(Z, 0.1, V), V < 1000`);
//! * attributes named identically on *different* variables are
//!   index-renamed (`Name1`, `Name2`), exactly as in the paper;
//! * constructors are **not** translated — the projection lists the
//!   underlying one-dot expressions, and the [`TranslationMap`] lets
//!   Step 4 re-attach every change to the original OQL query.
//!
//! Unlike the paper's elided presentation (`faculty(Z, Name1, W)`), the
//! generated atoms carry their full argument lists, with filler variables
//! (`Age_X`) at unaccessed positions; golden tests therefore compare
//! structure rather than the abbreviated text.

use crate::catalog::{Catalog, RelationDecl};
use crate::error::{Result, TranslateError};
use sqo_datalog::{Atom, CmpOp, Comparison, Const, Literal, Query, Term, Var};
use sqo_odl::{Member, Schema};
use sqo_oql::{
    normalize, Expr, FromEntry, Literal as OqlLit, PathExpr, PathStep, SelectItem, SelectQuery,
    Source,
};
use std::collections::{BTreeMap, BTreeSet};

/// How each Datalog variable of the translated query arose — the
/// information Step 4 (DATALOG_to_OQL) needs to map literal changes back
/// onto the OQL query.
#[derive(Debug, Clone, Default)]
pub struct TranslationMap {
    /// OQL identifier → Datalog OID variable name.
    pub var_for_oql: BTreeMap<String, String>,
    /// Datalog OID variable name → OQL identifier.
    pub oql_for_var: BTreeMap<String, String>,
    /// Datalog attribute variable → (OQL variable, attribute name).
    pub attr_vars: BTreeMap<String, (String, String)>,
    /// Datalog method-result variable → (OQL variable, method name,
    /// original OQL argument expressions).
    pub method_results: BTreeMap<String, (String, String, Vec<Expr>)>,
    /// OQL variable → class or structure name.
    pub var_types: BTreeMap<String, String>,
}

impl TranslationMap {
    /// The OQL identifier behind a Datalog variable, if it is an OID var.
    pub fn oql_var(&self, v: &Var) -> Option<&str> {
        self.oql_for_var.get(v.name()).map(String::as_str)
    }

    /// The `(oql_var, attribute)` behind a Datalog attribute variable.
    pub fn attr_of(&self, v: &Var) -> Option<(&str, &str)> {
        self.attr_vars
            .get(v.name())
            .map(|(a, b)| (a.as_str(), b.as_str()))
    }
}

/// The result of Step 2.
#[derive(Debug, Clone)]
pub struct QueryTranslation {
    /// The Datalog query.
    pub query: Query,
    /// The translation map for Step 4.
    pub map: TranslationMap,
    /// The normalized OQL query actually translated (one-dot form).
    pub normalized: SelectQuery,
}

struct Translator<'a> {
    schema: &'a Schema,
    catalog: &'a Catalog,
    map: TranslationMap,
    /// Accessed attribute vars: (oql var, attr) → datalog var name.
    attr_assign: BTreeMap<(String, String), String>,
    /// Per-variable class/struct atom argument vectors (built lazily).
    object_atoms: BTreeMap<String, Vec<Term>>,
    /// Order in which object atoms were created.
    object_atom_order: Vec<String>,
    /// Which relation each object atom belongs to.
    object_atom_pred: BTreeMap<String, RelationDecl>,
    /// All datalog variable names in use.
    used_vars: BTreeSet<String>,
    /// Relationship atoms, in from-clause order.
    rel_atoms: Vec<Literal>,
    /// Method atoms / auxiliary literals.
    where_lits: Vec<Literal>,
    fresh_counter: usize,
    value_counter: usize,
}

fn capitalize(s: &str) -> String {
    let mut cs = s.chars();
    match cs.next() {
        Some(first) => first.to_uppercase().collect::<String>() + cs.as_str(),
        None => String::new(),
    }
}

impl<'a> Translator<'a> {
    fn fresh_named(&mut self, base: &str) -> String {
        let mut name = base.to_string();
        while self.used_vars.contains(&name) {
            self.fresh_counter += 1;
            name = format!("{base}{}", self.fresh_counter);
        }
        self.used_vars.insert(name.clone());
        name
    }

    /// The Datalog OID variable of an OQL identifier (assigning one if
    /// new).
    fn oid_var(&mut self, oql: &str) -> Var {
        if let Some(v) = self.map.var_for_oql.get(oql) {
            return Var::new(v.clone());
        }
        let name = self.fresh_named(&capitalize(oql));
        self.map.var_for_oql.insert(oql.to_string(), name.clone());
        self.map.oql_for_var.insert(name.clone(), oql.to_string());
        Var::new(name)
    }

    fn type_of(&self, var: &str) -> Result<&str> {
        self.map
            .var_types
            .get(var)
            .map(String::as_str)
            .ok_or_else(|| TranslateError::NotAnObject {
                var: var.to_string(),
                detail: "no type could be inferred".into(),
            })
    }

    /// Case-insensitive member lookup (the paper writes `x.Takes` for the
    /// relationship declared as `takes`).
    fn find_member(&self, ty: &str, member: &str) -> Option<Member<'a>> {
        if self.schema.class(ty).is_some() {
            if let Some(m) = self.schema.find_member(ty, member) {
                return Some(m);
            }
            let lower = member.to_lowercase();
            if let Some((cls, a)) = self
                .schema
                .all_attributes(ty)
                .into_iter()
                .find(|(_, a)| a.name.to_lowercase() == lower)
            {
                return Some(Member::Attribute(cls, a));
            }
            if let Some((cls, r)) = self
                .schema
                .all_relationships(ty)
                .into_iter()
                .find(|(_, r)| r.name.to_lowercase() == lower)
            {
                return Some(Member::Relationship(cls, r));
            }
            if let Some((cls, m)) = self
                .schema
                .all_methods(ty)
                .into_iter()
                .find(|(_, m)| m.name.to_lowercase() == lower)
            {
                return Some(Member::Method(cls, m));
            }
            None
        } else {
            // Structure: fields only.
            let s = self.schema.structure(ty)?;
            let lower = member.to_lowercase();
            s.fields
                .iter()
                .find(|f| f.name == member || f.name.to_lowercase() == lower)
                .map(|f| Member::Attribute(&s.name, f))
        }
    }

    /// The relation declaration for a var's class/structure.
    fn object_relation(&self, ty: &str) -> Result<&RelationDecl> {
        self.catalog
            .class_relation(ty)
            .or_else(|| self.catalog.struct_relation(ty))
            .ok_or_else(|| TranslateError::UnknownExtent {
                name: ty.to_string(),
            })
    }

    /// Ensure the var's class/structure atom exists.
    fn ensure_object_atom(&mut self, oql_var: &str) -> Result<()> {
        if self.object_atoms.contains_key(oql_var) {
            return Ok(());
        }
        let ty = self.type_of(oql_var)?.to_string();
        let decl = self.object_relation(&ty)?.clone();
        let oid = self.oid_var(oql_var);
        let mut args: Vec<Term> = vec![Term::Var(oid)];
        for a in decl.args.iter().skip(1) {
            // Filler variable, replaced on demand when the attribute is
            // accessed: `Age_X`, `Address_X`, … Recorded in the map so
            // Step 4 can express optimizer-added comparisons over
            // unaccessed attributes (`z.age >= 30`).
            let filler = self.fresh_named(&format!("{}_{}", capitalize(&a.name), oid.name()));
            self.map
                .attr_vars
                .insert(filler.clone(), (oql_var.to_string(), a.name.clone()));
            args.push(Term::var(filler));
        }
        self.object_atoms.insert(oql_var.to_string(), args);
        self.object_atom_order.push(oql_var.to_string());
        self.object_atom_pred.insert(oql_var.to_string(), decl);
        Ok(())
    }

    /// The Datalog variable holding `oql_var.attr`, creating the class
    /// atom and naming the variable if needed. `preferred` is the
    /// pre-assigned name from the ambiguity scan.
    fn attr_var(&mut self, oql_var: &str, attr: &str, preferred: Option<String>) -> Result<Var> {
        let ty = self.type_of(oql_var)?.to_string();
        let decl = self.object_relation(&ty)?.clone();
        let canon = decl
            .args
            .iter()
            .skip(1)
            .find(|a| a.name == attr || a.name.to_lowercase() == attr.to_lowercase())
            .map(|a| a.name.clone())
            .ok_or_else(|| TranslateError::UnknownMember {
                ty: ty.clone(),
                member: attr.to_string(),
            })?;
        let key = (oql_var.to_string(), canon.clone());
        if let Some(v) = self.attr_assign.get(&key) {
            return Ok(Var::new(v.clone()));
        }
        self.ensure_object_atom(oql_var)?;
        let pos = decl.arg_position(&canon).expect("canonical name resolves");
        let name = match preferred {
            Some(p) => self.fresh_named(&p),
            None => self.fresh_named(&capitalize(&canon)),
        };
        let args = self.object_atoms.get_mut(oql_var).expect("atom ensured");
        args[pos] = Term::var(name.clone());
        self.attr_assign.insert(key, name.clone());
        self.map
            .attr_vars
            .insert(name.clone(), (oql_var.to_string(), canon));
        Ok(Var::new(name))
    }

    /// Translate a one-dot OQL expression into a Datalog term, possibly
    /// emitting method atoms.
    fn expr_term(
        &mut self,
        e: &Expr,
        attr_names: &BTreeMap<(String, String), String>,
    ) -> Result<Term> {
        match e {
            Expr::Lit(l) => Ok(Term::Const(lit_const(l))),
            Expr::Path(p) => self.path_term(p, attr_names),
        }
    }

    fn path_term(
        &mut self,
        p: &PathExpr,
        attr_names: &BTreeMap<(String, String), String>,
    ) -> Result<Term> {
        if p.steps.is_empty() {
            return Ok(Term::Var(self.oid_var(&p.root)));
        }
        if p.steps.len() > 1 {
            return Err(TranslateError::NotNormalized {
                expr: p.to_string(),
            });
        }
        match &p.steps[0] {
            PathStep::Member(m) => {
                let ty = self.type_of(&p.root)?.to_string();
                match self.find_member(&ty, m) {
                    Some(Member::Attribute(_, a)) => {
                        let canon = a.name.clone();
                        let preferred = attr_names
                            .get(&(p.root.clone(), canon.to_lowercase()))
                            .cloned();
                        Ok(Term::Var(self.attr_var(&p.root, &canon, preferred)?))
                    }
                    Some(Member::Relationship(cls, r)) => {
                        if r.many {
                            return Err(TranslateError::Unsupported {
                                feature: format!(
                                    "to-many relationship `{}` used as a value",
                                    r.name
                                ),
                            });
                        }
                        let decl = self
                            .catalog
                            .relationship_relation(cls, &r.name)
                            .expect("relationship relation exists")
                            .clone();
                        let root = self.oid_var(&p.root);
                        let fresh = self.fresh_named(&capitalize(&r.name));
                        self.where_lits.push(Literal::pos(
                            decl.pred.name(),
                            vec![Term::Var(root), Term::var(fresh.clone())],
                        ));
                        Ok(Term::var(fresh))
                    }
                    Some(Member::Method(cls, m)) => {
                        let mname = m.name.clone();
                        let cls = cls.to_string();
                        self.method_term(&p.root, &cls, &mname, &[])
                    }
                    None => Err(TranslateError::UnknownMember {
                        ty,
                        member: m.clone(),
                    }),
                }
            }
            PathStep::MethodCall { name, args } => {
                let ty = self.type_of(&p.root)?.to_string();
                match self.find_member(&ty, name) {
                    Some(Member::Method(cls, m)) => {
                        let mname = m.name.clone();
                        let cls = cls.to_string();
                        self.method_term(&p.root, &cls, &mname, args)
                    }
                    _ => Err(TranslateError::UnknownMember {
                        ty,
                        member: name.clone(),
                    }),
                }
            }
        }
    }

    /// Emit a method atom `m(Root, args…, V)` and return `V`.
    fn method_term(
        &mut self,
        root: &str,
        declaring_class: &str,
        method: &str,
        args: &[Expr],
    ) -> Result<Term> {
        let decl = self
            .catalog
            .method_relation(declaring_class, method)
            .ok_or_else(|| TranslateError::UnknownMember {
                ty: declaring_class.to_string(),
                member: method.to_string(),
            })?
            .clone();
        let root_var = self.oid_var(root);
        let mut atom_args: Vec<Term> = vec![Term::Var(root_var)];
        let empty = BTreeMap::new();
        for a in args {
            atom_args.push(self.expr_term(a, &empty)?);
        }
        // Pad missing arguments with fresh variables (arity safety).
        while atom_args.len() < decl.arity() - 1 {
            let f = self.fresh_named("Arg");
            atom_args.push(Term::var(f));
        }
        self.value_counter += 1;
        let vname = if self.value_counter == 1 {
            self.fresh_named("V")
        } else {
            self.fresh_named(&format!("V{}", self.value_counter))
        };
        atom_args.push(Term::var(vname.clone()));
        self.where_lits
            .push(Literal::Pos(Atom::new(decl.pred, atom_args)));
        self.map.method_results.insert(
            vname.clone(),
            (root.to_string(), method.to_string(), args.to_vec()),
        );
        Ok(Term::var(vname))
    }
}

fn lit_const(l: &OqlLit) -> Const {
    match l {
        OqlLit::Int(v) => Const::Int(*v),
        OqlLit::Real(v) => Const::Real((*v).into()),
        OqlLit::Str(s) => Const::Str(sqo_datalog::Sym::intern(s)),
        OqlLit::Bool(b) => Const::Bool(*b),
    }
}

fn cmp_op(op: sqo_oql::CmpOp) -> CmpOp {
    match op {
        sqo_oql::CmpOp::Eq => CmpOp::Eq,
        sqo_oql::CmpOp::Ne => CmpOp::Ne,
        sqo_oql::CmpOp::Lt => CmpOp::Lt,
        sqo_oql::CmpOp::Le => CmpOp::Le,
        sqo_oql::CmpOp::Gt => CmpOp::Gt,
        sqo_oql::CmpOp::Ge => CmpOp::Ge,
    }
}

/// Scan the normalized query for attribute accesses and pre-assign the
/// paper's index-renamed variable names: an attribute accessed on two or
/// more distinct variables gets `Name1`, `Name2`, … in order of first
/// appearance (select clause first, then where).
fn assign_attr_names(q: &SelectQuery) -> BTreeMap<(String, String), String> {
    let mut accesses: Vec<(String, String)> = Vec::new();
    fn scan_expr(e: &Expr, accesses: &mut Vec<(String, String)>) {
        if let Expr::Path(p) = e {
            if let [PathStep::Member(m)] = p.steps.as_slice() {
                let key = (p.root.clone(), m.to_lowercase());
                if !accesses.contains(&key) {
                    accesses.push(key);
                }
            }
        }
    }
    for item in &q.select {
        match item {
            SelectItem::Expr(e) => scan_expr(e, &mut accesses),
            SelectItem::Constructor { fields, .. } => {
                for f in fields {
                    scan_expr(&f.expr, &mut accesses);
                }
            }
        }
    }
    for p in &q.where_ {
        scan_expr(&p.lhs, &mut accesses);
        scan_expr(&p.rhs, &mut accesses);
    }
    // Count distinct variables per attribute name.
    let mut by_attr: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for (var, attr) in &accesses {
        let vars = by_attr.entry(attr.clone()).or_default();
        if !vars.contains(var) {
            vars.push(var.clone());
        }
    }
    let mut out = BTreeMap::new();
    for (attr, vars) in by_attr {
        if vars.len() > 1 {
            for (i, var) in vars.iter().enumerate() {
                out.insert(
                    (var.clone(), attr.clone()),
                    format!("{}{}", capitalize(&attr), i + 1),
                );
            }
        }
    }
    out
}

/// Run Step 2: translate an OQL query against a schema and its catalog.
/// The query is normalized first; the returned [`QueryTranslation`]
/// carries the normalized OQL and the [`TranslationMap`].
pub fn translate_query(
    oql: &SelectQuery,
    schema: &Schema,
    catalog: &Catalog,
) -> Result<QueryTranslation> {
    let _span = sqo_obs::span!("step2.translate_query");
    sqo_obs::bump(sqo_obs::Counter::TranslateQueries);
    let normalized = normalize(oql);
    let mut tr = Translator {
        schema,
        catalog,
        map: TranslationMap::default(),
        attr_assign: BTreeMap::new(),
        object_atoms: BTreeMap::new(),
        object_atom_order: Vec::new(),
        object_atom_pred: BTreeMap::new(),
        used_vars: BTreeSet::new(),
        rel_atoms: Vec::new(),
        where_lits: Vec::new(),
        fresh_counter: 0,
        value_counter: 0,
    };
    let attr_names = assign_attr_names(&normalized);

    let lookup_class = |name: &str| {
        schema.class_by_extent(name).or_else(|| {
            schema
                .classes()
                .iter()
                .find(|c| c.name.to_lowercase() == name.to_lowercase())
        })
    };

    // ---- from clause -------------------------------------------------
    let mut neg_entries: Vec<(String, Source)> = Vec::new();
    for entry in &normalized.from {
        match entry {
            FromEntry::In { var, source } => match source {
                Source::Extent(name) => {
                    let class = lookup_class(name)
                        .ok_or_else(|| TranslateError::UnknownExtent { name: name.clone() })?;
                    tr.map.var_types.insert(var.clone(), class.name.clone());
                    tr.oid_var(var);
                    tr.ensure_object_atom(var)?;
                }
                Source::Path(p) => {
                    let root_ty = tr.type_of(&p.root)?.to_string();
                    let [step] = p.steps.as_slice() else {
                        return Err(TranslateError::NotNormalized {
                            expr: p.to_string(),
                        });
                    };
                    match step {
                        PathStep::Member(m) => match tr.find_member(&root_ty, m) {
                            Some(Member::Relationship(cls, r)) => {
                                let target = r.target.clone();
                                let decl = tr
                                    .catalog
                                    .relationship_relation(cls, &r.name)
                                    .expect("relationship relation")
                                    .clone();
                                let root_var = tr.oid_var(&p.root);
                                tr.map.var_types.insert(var.clone(), target);
                                let v = tr.oid_var(var);
                                tr.rel_atoms.push(Literal::pos(
                                    decl.pred.name(),
                                    vec![Term::Var(root_var), Term::Var(v)],
                                ));
                            }
                            Some(Member::Attribute(_, a)) => {
                                if a.ty.is_collection() {
                                    return Err(TranslateError::Unsupported {
                                        feature: "collection-valued attributes".into(),
                                    });
                                }
                                let Some(strct) = a.ty.element_name() else {
                                    return Err(TranslateError::NotAnObject {
                                        var: var.clone(),
                                        detail: format!("attribute `{}` has base type", a.name),
                                    });
                                };
                                let strct = strct.to_string();
                                let attr = a.name.clone();
                                tr.map.var_types.insert(var.clone(), strct);
                                // Bind the attribute position of the root's
                                // class atom to this variable's OID var
                                // (domain identification).
                                let v = tr.oid_var(var);
                                tr.ensure_object_atom(&p.root)?;
                                let root_decl =
                                    tr.object_atom_pred.get(&p.root).expect("ensured").clone();
                                let pos = root_decl
                                    .arg_position(&attr)
                                    .expect("attribute exists in relation");
                                tr.object_atoms.get_mut(&p.root).expect("ensured")[pos] =
                                    Term::Var(v);
                                tr.attr_assign
                                    .insert((p.root.clone(), attr.clone()), v.name().to_string());
                                // Eagerly add the structure atom, as in the
                                // paper's from-clause translation.
                                tr.ensure_object_atom(var)?;
                            }
                            Some(Member::Method(cls, m)) => {
                                let ret =
                                    m.ret.element_name().map(str::to_string).ok_or_else(|| {
                                        TranslateError::NotAnObject {
                                            var: var.clone(),
                                            detail: format!(
                                                "method `{}` returns a base value",
                                                m.name
                                            ),
                                        }
                                    })?;
                                let mname = m.name.clone();
                                let cls = cls.to_string();
                                tr.map.var_types.insert(var.clone(), ret);
                                let result = tr.method_term(&p.root, &cls, &mname, &[])?;
                                let v = tr.oid_var(var);
                                tr.where_lits
                                    .push(Literal::cmp(Term::Var(v), CmpOp::Eq, result));
                            }
                            None => {
                                return Err(TranslateError::UnknownMember {
                                    ty: root_ty,
                                    member: m.clone(),
                                })
                            }
                        },
                        PathStep::MethodCall { name, args } => {
                            match tr.find_member(&root_ty, name) {
                                Some(Member::Method(cls, m)) => {
                                    let ret = m.ret.element_name().map(str::to_string).ok_or_else(
                                        || TranslateError::NotAnObject {
                                            var: var.clone(),
                                            detail: format!(
                                                "method `{}` returns a base value",
                                                m.name
                                            ),
                                        },
                                    )?;
                                    let mname = m.name.clone();
                                    let cls = cls.to_string();
                                    tr.map.var_types.insert(var.clone(), ret);
                                    let result = tr.method_term(&p.root, &cls, &mname, args)?;
                                    let v = tr.oid_var(var);
                                    tr.where_lits.push(Literal::cmp(
                                        Term::Var(v),
                                        CmpOp::Eq,
                                        result,
                                    ));
                                }
                                _ => {
                                    return Err(TranslateError::UnknownMember {
                                        ty: root_ty,
                                        member: name.clone(),
                                    })
                                }
                            }
                        }
                    }
                }
            },
            FromEntry::NotIn { var, source } => {
                neg_entries.push((var.clone(), source.clone()));
            }
        }
    }

    // ---- select clause -----------------------------------------------
    let mut projection: Vec<Term> = Vec::new();
    for item in &normalized.select {
        match item {
            SelectItem::Expr(e) => projection.push(tr.expr_term(e, &attr_names)?),
            SelectItem::Constructor { fields, .. } => {
                for f in fields {
                    projection.push(tr.expr_term(&f.expr, &attr_names)?);
                }
            }
        }
    }

    // ---- where clause --------------------------------------------------
    let mut cmp_lits: Vec<Literal> = Vec::new();
    for pred in &normalized.where_ {
        let l = tr.expr_term(&pred.lhs, &attr_names)?;
        let r = tr.expr_term(&pred.rhs, &attr_names)?;
        cmp_lits.push(Literal::Cmp(Comparison::new(l, cmp_op(pred.op), r)));
    }

    // ---- negated from entries --------------------------------------------
    let mut neg_lits: Vec<Literal> = Vec::new();
    for (var, source) in neg_entries {
        match source {
            Source::Extent(name) => {
                let class = lookup_class(&name)
                    .ok_or_else(|| TranslateError::UnknownExtent { name: name.clone() })?;
                let class_name = class.name.clone();
                let decl = tr.object_relation(&class_name)?.clone();
                let oid = tr.oid_var(&var);
                let mut args: Vec<Term> = vec![Term::Var(oid)];
                // Reuse the variable's positive atom vars for shared
                // attributes; negation-local fresh vars elsewhere.
                let pos_atom = tr.object_atoms.get(&var).cloned();
                let pos_decl = tr.object_atom_pred.get(&var).cloned();
                for a in decl.args.iter().skip(1) {
                    let reused = match (&pos_atom, &pos_decl) {
                        (Some(atom), Some(pd)) => pd.arg_position(&a.name).map(|i| atom[i]),
                        _ => None,
                    };
                    match reused {
                        Some(t) => args.push(t),
                        None => {
                            let f = tr.fresh_named(&format!("{}_neg", capitalize(&a.name)));
                            args.push(Term::var(f));
                        }
                    }
                }
                neg_lits.push(Literal::Neg(Atom::new(decl.pred, args)));
            }
            Source::Path(p) => {
                let root_ty = tr.type_of(&p.root)?.to_string();
                let [PathStep::Member(m)] = p.steps.as_slice() else {
                    return Err(TranslateError::Unsupported {
                        feature: "negated method-call from entry".into(),
                    });
                };
                match tr.find_member(&root_ty, m) {
                    Some(Member::Relationship(cls, r)) => {
                        let decl = tr
                            .catalog
                            .relationship_relation(cls, &r.name)
                            .expect("relationship relation")
                            .clone();
                        let root_var = tr.oid_var(&p.root);
                        let v = tr.oid_var(&var);
                        neg_lits.push(Literal::neg(
                            decl.pred.name(),
                            vec![Term::Var(root_var), Term::Var(v)],
                        ));
                    }
                    _ => {
                        return Err(TranslateError::UnknownMember {
                            ty: root_ty,
                            member: m.clone(),
                        })
                    }
                }
            }
        }
    }

    // ---- assemble ---------------------------------------------------------
    let mut body: Vec<Literal> = Vec::new();
    for var in &tr.object_atom_order {
        let decl = &tr.object_atom_pred[var];
        body.push(Literal::Pos(Atom::new(
            decl.pred,
            tr.object_atoms[var].clone(),
        )));
    }
    body.extend(tr.rel_atoms.clone());
    body.extend(neg_lits);
    body.extend(tr.where_lits.clone());
    body.extend(cmp_lits);

    let query = Query::new("q", projection, body);
    Ok(QueryTranslation {
        query,
        map: tr.map,
        normalized,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::translate_schema;
    use sqo_odl::fixtures::university_schema;
    use sqo_oql::parse_oql;

    fn setup() -> (Schema, Catalog) {
        let schema = university_schema();
        let catalog = translate_schema(&schema);
        (schema, catalog)
    }

    fn translate(src: &str) -> QueryTranslation {
        let (schema, catalog) = setup();
        let q = parse_oql(src).unwrap();
        translate_query(&q, &schema, &catalog).unwrap()
    }

    fn body_preds(q: &Query) -> Vec<String> {
        q.body
            .iter()
            .filter_map(|l| l.pred().map(|p| p.name().to_string()))
            .collect()
    }

    /// The paper's Example 2, end to end.
    #[test]
    fn example2_translation() {
        let t = translate(
            r#"select z.name, w.city
               from x in Student
                    y in x.takes
                    z in y.is_taught_by
                    w in z.address
               where x.name = "john" and z.taxes_withheld(10%) < 1000"#,
        );
        let q = &t.query;
        let preds = body_preds(q);
        for expected in [
            "student",
            "takes",
            "is_taught_by",
            "faculty",
            "address",
            "taxes_withheld",
        ] {
            assert!(
                preds.contains(&expected.to_string()),
                "missing {expected}: {q}"
            );
        }
        // Projection: Name1 (z.name) then City (w.city).
        assert_eq!(q.projection.len(), 2);
        assert_eq!(q.projection[0], Term::var("Name1"));
        assert_eq!(q.projection[1], Term::var("City"));
        // Attribute indexing: z.name → Name1, x.name → Name2.
        assert_eq!(
            t.map.attr_vars.get("Name1"),
            Some(&("z".to_string(), "name".to_string()))
        );
        assert_eq!(
            t.map.attr_vars.get("Name2"),
            Some(&("x".to_string(), "name".to_string()))
        );
        // Name2 = "john" appears.
        assert!(q
            .body
            .iter()
            .any(|l| matches!(l, Literal::Cmp(c) if c.to_string() == "Name2 = \"john\"")));
        // Method atom with the rate constant and fresh V; V < 1000.
        let m = q
            .body
            .iter()
            .find_map(|l| match l {
                Literal::Pos(a) if a.pred.name() == "taxes_withheld" => Some(a),
                _ => None,
            })
            .expect("method atom");
        assert_eq!(m.args.len(), 3);
        assert_eq!(m.args[0], Term::var("Z"));
        assert_eq!(m.args[1], Term::real(0.10));
        assert_eq!(m.args[2], Term::var("V"));
        assert!(q
            .body
            .iter()
            .any(|l| matches!(l, Literal::Cmp(c) if c.to_string() == "V < 1000")));
        // The faculty atom binds W at the address position.
        let f = q
            .body
            .iter()
            .find_map(|l| match l {
                Literal::Pos(a) if a.pred.name() == "faculty" => Some(a),
                _ => None,
            })
            .expect("faculty atom");
        let (_, catalog) = setup();
        let pos = catalog
            .class_relation("Faculty")
            .unwrap()
            .arg_position("address")
            .unwrap();
        assert_eq!(f.args[pos], Term::var("W"));
        // Safe and well-formed.
        assert!(q.is_safe(), "{q}");
    }

    #[test]
    fn access_scope_query_translation() {
        // Application 2's query.
        let t = translate("select x.name from x in Person where x.age < 30");
        let q = &t.query;
        assert_eq!(body_preds(q), vec!["person".to_string()]);
        assert_eq!(q.projection, vec![Term::var("Name")]);
        assert!(q
            .body
            .iter()
            .any(|l| matches!(l, Literal::Cmp(c) if c.to_string() == "Age < 30")));
        assert!(q.is_safe());
    }

    #[test]
    fn not_in_entry_reuses_positive_vars() {
        let t = translate("select x.name from x in Person x not in Faculty where x.age < 30");
        let q = &t.query;
        let neg = q
            .body
            .iter()
            .find_map(|l| match l {
                Literal::Neg(a) => Some(a),
                _ => None,
            })
            .expect("negated atom");
        assert_eq!(neg.pred.name(), "faculty");
        // Shares OID, name, age and address with the person atom.
        let pos = q
            .body
            .iter()
            .find_map(|l| match l {
                Literal::Pos(a) if a.pred.name() == "person" => Some(a),
                _ => None,
            })
            .unwrap();
        let (_, catalog) = setup();
        let p_decl = catalog.class_relation("Person").unwrap();
        let f_decl = catalog.class_relation("Faculty").unwrap();
        for attr in ["OID", "name", "age", "address"] {
            let pi = p_decl.arg_position(attr).unwrap();
            let fi = f_decl.arg_position(attr).unwrap();
            assert_eq!(pos.args[pi], neg.args[fi], "attr {attr}");
        }
        assert!(q.is_safe(), "{q}");
    }

    #[test]
    fn application3_list_constructor_translation() {
        let t = translate(
            r#"select list(x.student_id, t.employee_id)
               from x in Student
                    y in x.takes
                    z in y.is_taught_by
                    t in TA
                    v in t.takes
                    w in v.is_taught_by
               where z.name = w.name"#,
        );
        let q = &t.query;
        // Constructor flattened into two projected variables.
        assert_eq!(q.projection.len(), 2);
        // Two faculty atoms (z and w), with Name1 = Name2.
        let count = q
            .body
            .iter()
            .filter(|l| matches!(l, Literal::Pos(a) if a.pred.name() == "faculty"))
            .count();
        assert_eq!(count, 2, "{q}");
        assert!(q
            .body
            .iter()
            .any(|l| matches!(l, Literal::Cmp(c) if c.to_string() == "Name1 = Name2")));
        assert!(q.is_safe());
    }

    #[test]
    fn long_path_is_normalized_then_translated() {
        let t =
            translate("select x.name from x in Student where x.takes.is_taught_by.salary > 50000");
        let q = &t.query;
        let preds = body_preds(q);
        assert!(preds.contains(&"takes".to_string()));
        assert!(preds.contains(&"is_taught_by".to_string()));
        assert!(preds.contains(&"faculty".to_string()));
        assert!(q.is_safe());
    }

    #[test]
    fn bare_var_select_projects_oid() {
        let t = translate("select x from x in Person");
        assert_eq!(t.query.projection, vec![Term::var("X")]);
    }

    #[test]
    fn var_equality_predicate() {
        let t = translate("select x from x in Person, y in Person where x = y");
        let q = &t.query;
        assert!(q
            .body
            .iter()
            .any(|l| matches!(l, Literal::Cmp(c) if c.to_string() == "X = Y")));
    }

    #[test]
    fn unknown_extent_and_member_errors() {
        let (schema, catalog) = setup();
        let q = parse_oql("select x from x in Martian").unwrap();
        assert!(matches!(
            translate_query(&q, &schema, &catalog),
            Err(TranslateError::UnknownExtent { .. })
        ));
        let q = parse_oql("select x.wings from x in Person").unwrap();
        assert!(matches!(
            translate_query(&q, &schema, &catalog),
            Err(TranslateError::UnknownMember { .. })
        ));
    }

    #[test]
    fn iterating_base_attribute_is_rejected() {
        let (schema, catalog) = setup();
        let q = parse_oql("select y from x in Person, y in x.name").unwrap();
        assert!(matches!(
            translate_query(&q, &schema, &catalog),
            Err(TranslateError::NotAnObject { .. })
        ));
    }

    #[test]
    fn case_insensitive_member_lookup_matches_paper_spelling() {
        // The paper writes `x.Takes` and `y.Is_taught_by`-style members.
        let t = translate("select z from x in Student, y in x.Takes, z in y.Is_taught_by");
        let preds = body_preds(&t.query);
        assert!(preds.contains(&"takes".to_string()));
        assert!(preds.contains(&"is_taught_by".to_string()));
    }

    #[test]
    fn relationship_bound_var_gets_no_class_atom_until_needed() {
        let t = translate("select y from x in Student, y in x.takes");
        let preds = body_preds(&t.query);
        assert!(preds.contains(&"student".to_string()));
        assert!(preds.contains(&"takes".to_string()));
        assert!(
            !preds.contains(&"section".to_string()),
            "section atom should be lazy: {}",
            t.query
        );
    }

    #[test]
    fn translation_map_roundtrip_info() {
        let t = translate("select z.name from x in Student, y in x.takes, z in y.is_taught_by");
        assert_eq!(t.map.oql_var(&Var::new("X")), Some("x"));
        assert_eq!(t.map.var_for_oql.get("z"), Some(&"Z".to_string()));
        assert_eq!(t.map.var_types.get("z"), Some(&"Faculty".to_string()));
        let (v, a) = t.map.attr_of(&Var::new("Name")).unwrap();
        assert_eq!((v, a), ("z", "name"));
    }
}
