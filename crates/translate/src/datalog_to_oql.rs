//! Step 4: ALGORITHM DATALOG_to_OQL — mapping Datalog-level changes back
//! onto the OQL query.
//!
//! Per Section 4.3, the optimized Datalog query is *not* translated into
//! a fresh OQL query (constructors and other extralogical features would
//! be lost); instead the literal-level [`sqo_datalog::search::Delta`]
//! between the original and the optimized Datalog query is replayed as
//! edits on the (normalized) OQL query:
//!
//! | Datalog change            | OQL edit                             |
//! |---------------------------|--------------------------------------|
//! | ± `X = Y`                 | ± `x = y` in **where**               |
//! | ± `A θ k`, `A θ B`        | ± `x.a θ k`, `x.a θ y.b` in **where**|
//! | ± `c(X, …)`               | ± `x in C` in **from**               |
//! | ± `r(X, Y)`               | ± `y in x.R` in **from**             |
//! | ± `not c(X, …)`           | ± `x not in C` in **from**           |
//! | ± `not r(X, Y)`           | ± `y not in x.R` in **from**         |
//! | ± `m(X, args, V)` + cmp   | ± `x.m(args) θ k` in **where**       |
//! | ± view atom `asr(X, W)`   | ± `w in x.ASR` in **from** (synthetic relationship) |
//!
//! Removing a `from` entry that still *binds* a referenced variable would
//! break OQL scoping even though the Datalog query stays safe; such edits
//! are skipped and reported in [`OqlEdit::warnings`] (the equivalent
//! query remains available at the Datalog level).

use crate::catalog::{Catalog, RelKind};
use crate::error::Result;
use crate::query_to_datalog::TranslationMap;
use sqo_datalog::search::Delta;
use sqo_datalog::{Atom, Comparison, Literal, Term, Var};
use sqo_oql::{
    CmpOp as OqlCmpOp, Expr, FromEntry, Literal as OqlLit, PathExpr, PathStep, Predicate,
    SelectQuery, Source,
};

/// The result of Step 4: the edited OQL query plus any skipped edits.
#[derive(Debug, Clone)]
pub struct OqlEdit {
    /// The edited query.
    pub query: SelectQuery,
    /// Human-readable notes about edits that could not be applied at the
    /// OQL level.
    pub warnings: Vec<String>,
}

struct Editor<'a> {
    map: &'a TranslationMap,
    catalog: &'a Catalog,
    query: SelectQuery,
    warnings: Vec<String>,
    /// OQL names invented for Datalog variables with no OQL counterpart
    /// (fresh witnesses from join introduction).
    invented: std::collections::BTreeMap<String, String>,
    /// From entries deleted by removals, kept around so the final scoping
    /// pass can restore one whose variable turned out to still be needed.
    removed_entries: Vec<FromEntry>,
}

impl<'a> Editor<'a> {
    /// The OQL identifier for a Datalog variable, inventing one (its
    /// lower-cased Datalog name) if needed.
    fn oql_name(&mut self, v: &Var) -> String {
        if let Some(n) = self.map.oql_var(v) {
            return n.to_string();
        }
        if let Some(n) = self.invented.get(v.name()) {
            return n.clone();
        }
        let mut candidate = v.name().to_lowercase();
        let taken: Vec<String> = self
            .query
            .declared_vars()
            .iter()
            .map(|s| s.to_string())
            .collect();
        while taken.contains(&candidate) || self.invented.values().any(|x| *x == candidate) {
            candidate.push('_');
        }
        self.invented
            .insert(v.name().to_string(), candidate.clone());
        candidate
    }

    /// Map a Datalog term to an OQL expression.
    fn term_expr(&mut self, t: &Term) -> Option<Expr> {
        match t {
            Term::Const(c) => Some(Expr::Lit(const_lit(c))),
            Term::Var(v) => {
                if let Some((ovar, attr)) = self.map.attr_of(v) {
                    return Some(Expr::Path(PathExpr::member(ovar, attr)));
                }
                if let Some((ovar, method, args)) = self.map.method_results.get(v.name()) {
                    return Some(Expr::Path(PathExpr {
                        root: ovar.clone(),
                        steps: vec![PathStep::MethodCall {
                            name: method.clone(),
                            args: args.clone(),
                        }],
                    }));
                }
                if self.map.oql_var(v).is_some() {
                    return Some(Expr::Path(PathExpr::var(self.oql_name(v))));
                }
                // A variable invented during optimization: expressible only
                // if it was introduced by an added from entry.
                Some(Expr::Path(PathExpr::var(self.oql_name(v))))
            }
        }
    }

    fn cmp_predicate(&mut self, c: &Comparison) -> Option<Predicate> {
        let lhs = self.term_expr(&c.lhs)?;
        let rhs = self.term_expr(&c.rhs)?;
        Some(Predicate {
            lhs,
            op: oql_op(c.op),
            rhs,
        })
    }

    fn add_cmp(&mut self, c: &Comparison) {
        match self.cmp_predicate(c) {
            Some(p) => self.query.where_.push(p),
            None => self
                .warnings
                .push(format!("could not express added comparison `{c}` in OQL")),
        }
    }

    fn remove_cmp(&mut self, c: &Comparison) {
        let Some(target) = self.cmp_predicate(c) else {
            self.warnings
                .push(format!("could not express removed comparison `{c}` in OQL"));
            return;
        };
        let flipped = Predicate {
            lhs: target.rhs.clone(),
            op: flip(target.op),
            rhs: target.lhs.clone(),
        };
        let before = self.query.where_.len();
        let mut removed = false;
        self.query.where_.retain(|p| {
            if !removed && (*p == target || *p == flipped) {
                removed = true;
                false
            } else {
                true
            }
        });
        if self.query.where_.len() == before {
            self.warnings.push(format!(
                "removed comparison `{c}` not found in the where clause"
            ));
        }
    }

    /// The from entry expressing an added positive atom, per the paper's
    /// algorithm.
    fn atom_entry(&mut self, a: &Atom) -> Option<FromEntry> {
        let decl = self.catalog.relation_by_pred(&a.pred)?;
        match &decl.kind {
            RelKind::Class { class } | RelKind::Struct { strct: class } => {
                let v = a.args.first()?.as_var()?;
                Some(FromEntry::In {
                    var: self.oql_name(v),
                    source: Source::Extent(class.clone()),
                })
            }
            RelKind::Relationship { name, .. } => {
                let x = a.args.first()?.as_var()?;
                let y = a.args.get(1)?.as_var()?;
                let (x, y) = (*x, *y);
                Some(FromEntry::In {
                    var: self.oql_name(&y),
                    source: Source::Path(PathExpr::member(self.oql_name(&x), name)),
                })
            }
            RelKind::View { name } => {
                // Synthetic relationship syntax: `w in x.ASR`.
                let x = a.args.first()?.as_var()?;
                let w = a.args.last()?.as_var()?;
                let (x, w) = (*x, *w);
                Some(FromEntry::In {
                    var: self.oql_name(&w),
                    source: Source::Path(PathExpr::member(self.oql_name(&x), name)),
                })
            }
            RelKind::Method { .. } => None,
        }
    }

    fn add_atom(&mut self, a: &Atom) {
        match self.atom_entry(a) {
            Some(entry) => self.query.from.push(entry),
            None => self
                .warnings
                .push(format!("could not express added atom `{a}` in OQL")),
        }
    }

    fn remove_atom(&mut self, a: &Atom) {
        let Some(decl) = self.catalog.relation_by_pred(&a.pred) else {
            self.warnings
                .push(format!("removed atom `{a}` has no catalog entry"));
            return;
        };
        // Identify the from entry to delete by its bound variable and
        // source shape.
        let kind = decl.kind.clone();
        let target: Option<(String, Option<String>)> = match &kind {
            RelKind::Class { class } | RelKind::Struct { strct: class } => a
                .args
                .first()
                .and_then(Term::as_var)
                .cloned()
                .map(|v| (self.oql_name(&v), Some(class.clone()))),
            RelKind::Relationship { .. } | RelKind::View { .. } => a
                .args
                .get(1)
                .and_then(Term::as_var)
                .cloned()
                .map(|v| (self.oql_name(&v), None)),
            RelKind::Method { .. } => None,
        };
        let Some((var, class)) = target else {
            self.warnings
                .push(format!("could not express removed atom `{a}` in OQL"));
            return;
        };
        let before = self.query.from.len();
        let mut removed_at: Option<usize> = None;
        for (i, e) in self.query.from.iter().enumerate() {
            let matches = match (e, &kind) {
                (
                    FromEntry::In {
                        var: v,
                        source: Source::Extent(c),
                    },
                    RelKind::Class { .. } | RelKind::Struct { .. },
                ) => *v == var && Some(c.clone()) == class,
                (
                    FromEntry::In {
                        var: v,
                        source: Source::Path(_),
                    },
                    RelKind::Relationship { .. } | RelKind::View { .. },
                ) => *v == var,
                (
                    FromEntry::In {
                        var: v,
                        source: Source::Path(_),
                    },
                    RelKind::Class { .. } | RelKind::Struct { .. },
                ) => {
                    // A structure-attribute entry (`w in z.address`) also
                    // "binds" the class atom variable.
                    *v == var
                }
                _ => false,
            };
            if matches {
                removed_at = Some(i);
                break;
            }
        }
        match removed_at {
            Some(i) => {
                // Scoping is validated once all edits are in (a group
                // removal may delete the referencing entries too).
                let entry = self.query.from.remove(i);
                self.removed_entries.push(entry);
            }
            None => {
                if self.query.from.len() == before {
                    self.warnings
                        .push(format!("removed atom `{a}` has no matching from entry"));
                }
            }
        }
    }

    fn add_neg_atom(&mut self, a: &Atom) {
        let Some(decl) = self.catalog.relation_by_pred(&a.pred) else {
            self.warnings
                .push(format!("added negated atom `{a}` has no catalog entry"));
            return;
        };
        match &decl.kind {
            RelKind::Class { class } | RelKind::Struct { strct: class } => {
                let class = class.clone();
                if let Some(v) = a.args.first().and_then(Term::as_var) {
                    let v = *v;
                    let var = self.oql_name(&v);
                    self.query.from.push(FromEntry::NotIn {
                        var,
                        source: Source::Extent(class),
                    });
                } else {
                    self.warnings
                        .push(format!("negated atom `{a}` has a non-variable OID"));
                }
            }
            RelKind::Relationship { name, .. } | RelKind::View { name } => {
                let name = name.clone();
                if let (Some(x), Some(y)) = (
                    a.args.first().and_then(Term::as_var).cloned(),
                    a.args.get(1).and_then(Term::as_var).cloned(),
                ) {
                    let root = self.oql_name(&x);
                    let var = self.oql_name(&y);
                    self.query.from.push(FromEntry::NotIn {
                        var,
                        source: Source::Path(PathExpr::member(root, name)),
                    });
                } else {
                    self.warnings
                        .push(format!("negated atom `{a}` has non-variable arguments"));
                }
            }
            RelKind::Method { .. } => self
                .warnings
                .push(format!("cannot negate method atom `{a}` in OQL")),
        }
    }

    fn remove_neg_atom(&mut self, a: &Atom) {
        let Some(v) = a.args.first().and_then(Term::as_var) else {
            return;
        };
        let var = self.oql_name(&v.clone());
        let before = self.query.from.len();
        let mut removed = false;
        self.query.from.retain(|e| {
            if removed {
                return true;
            }
            match e {
                FromEntry::NotIn { var: v2, .. } if *v2 == var => {
                    removed = true;
                    false
                }
                _ => true,
            }
        });
        if self.query.from.len() == before {
            self.warnings
                .push(format!("removed negated atom `{a}` had no from entry"));
        }
    }

    /// Whether an OQL variable occurs anywhere outside its own binder.
    fn var_referenced(&self, var: &str) -> bool {
        let in_path = |p: &PathExpr| p.root == var;
        let in_expr = |e: &Expr| match e {
            Expr::Path(p) => {
                in_path(p)
                    || p.steps.iter().any(|s| match s {
                        PathStep::MethodCall { args, .. } => args.iter().any(|a| match a {
                            Expr::Path(pp) => pp.root == var,
                            Expr::Lit(_) => false,
                        }),
                        PathStep::Member(_) => false,
                    })
            }
            Expr::Lit(_) => false,
        };
        let select_hit = self.query.select.iter().any(|i| match i {
            sqo_oql::SelectItem::Expr(e) => in_expr(e),
            sqo_oql::SelectItem::Constructor { fields, .. } => {
                fields.iter().any(|f| in_expr(&f.expr))
            }
        });
        let where_hit = self
            .query
            .where_
            .iter()
            .any(|p| in_expr(&p.lhs) || in_expr(&p.rhs));
        let from_hit = self.query.from.iter().any(|e| match e {
            FromEntry::In {
                source: Source::Path(p),
                ..
            } => in_path(p),
            FromEntry::NotIn { var: v, source } => {
                v == var
                    || match source {
                        Source::Path(p) => in_path(p),
                        Source::Extent(_) => false,
                    }
            }
            _ => false,
        });
        select_hit || where_hit || from_hit
    }

    /// Whether any remaining from entry binds the variable.
    fn var_bound(&self, var: &str) -> bool {
        self.query
            .from
            .iter()
            .any(|e| matches!(e, FromEntry::In { var: v, .. } if v == var))
    }

    /// After all edits: re-insert any removed binder whose variable is
    /// still referenced and no longer bound (with a warning), so the
    /// edited query stays well-scoped.
    fn restore_needed_binders(&mut self) {
        loop {
            let needed: Option<usize> = self.removed_entries.iter().position(|e| {
                matches!(e, FromEntry::In { var, .. }
                    if self.var_referenced(var) && !self.var_bound(var))
            });
            match needed {
                Some(i) => {
                    let entry = self.removed_entries.remove(i);
                    self.warnings.push(format!(
                        "kept `{entry}` in the from clause: its variable is still \
                         referenced (the Datalog-level equivalent drops it)"
                    ));
                    self.query.from.push(entry);
                }
                None => break,
            }
        }
    }

    /// Reorder from entries so binders precede uses (a bounded
    /// topological fix-up after group edits).
    fn reorder_from(&mut self) {
        let n = self.query.from.len();
        for _ in 0..n {
            let mut bound: Vec<String> = Vec::new();
            let mut move_idx: Option<usize> = None;
            for (i, e) in self.query.from.iter().enumerate() {
                let root = match e {
                    FromEntry::In {
                        source: Source::Path(p),
                        ..
                    }
                    | FromEntry::NotIn {
                        source: Source::Path(p),
                        ..
                    } => Some(p.root.clone()),
                    _ => None,
                };
                if let Some(r) = root {
                    if !bound.contains(&r) {
                        move_idx = Some(i);
                        break;
                    }
                }
                if let FromEntry::In { var, .. } = e {
                    bound.push(var.clone());
                }
            }
            match move_idx {
                Some(i) if i + 1 < n => {
                    let e = self.query.from.remove(i);
                    self.query.from.push(e);
                }
                _ => break,
            }
        }
    }
}

fn const_lit(c: &sqo_datalog::Const) -> OqlLit {
    match c {
        sqo_datalog::Const::Int(v) => OqlLit::Int(*v),
        sqo_datalog::Const::Real(r) => OqlLit::Real(r.get()),
        sqo_datalog::Const::Str(s) => OqlLit::Str(s.as_str().to_string()),
        sqo_datalog::Const::Bool(b) => OqlLit::Bool(*b),
        // OIDs have no OQL literal syntax; surface them as ints (only
        // reachable through hand-written Datalog deltas).
        sqo_datalog::Const::Oid(o) => OqlLit::Int(*o as i64),
    }
}

fn oql_op(op: sqo_datalog::CmpOp) -> OqlCmpOp {
    match op {
        sqo_datalog::CmpOp::Eq => OqlCmpOp::Eq,
        sqo_datalog::CmpOp::Ne => OqlCmpOp::Ne,
        sqo_datalog::CmpOp::Lt => OqlCmpOp::Lt,
        sqo_datalog::CmpOp::Le => OqlCmpOp::Le,
        sqo_datalog::CmpOp::Gt => OqlCmpOp::Gt,
        sqo_datalog::CmpOp::Ge => OqlCmpOp::Ge,
    }
}

fn flip(op: OqlCmpOp) -> OqlCmpOp {
    match op {
        OqlCmpOp::Eq => OqlCmpOp::Eq,
        OqlCmpOp::Ne => OqlCmpOp::Ne,
        OqlCmpOp::Lt => OqlCmpOp::Gt,
        OqlCmpOp::Le => OqlCmpOp::Ge,
        OqlCmpOp::Gt => OqlCmpOp::Lt,
        OqlCmpOp::Ge => OqlCmpOp::Le,
    }
}

/// Run algorithm DATALOG_to_OQL: apply the delta to the (normalized) OQL
/// query the translation started from.
pub fn apply_delta(
    oql: &SelectQuery,
    map: &TranslationMap,
    catalog: &Catalog,
    delta: &Delta,
) -> Result<OqlEdit> {
    let mut ed = Editor {
        map,
        catalog,
        query: oql.clone(),
        warnings: Vec::new(),
        invented: std::collections::BTreeMap::new(),
        removed_entries: Vec::new(),
    };
    // Removals first, then additions (added entries may re-bind variables
    // whose original binders were removed, e.g. the ASR fold).
    for l in &delta.removed {
        match l {
            Literal::Cmp(c) => ed.remove_cmp(c),
            Literal::Pos(a) => ed.remove_atom(a),
            Literal::Neg(a) => ed.remove_neg_atom(a),
        }
    }
    for l in &delta.added {
        match l {
            Literal::Cmp(c) => ed.add_cmp(c),
            Literal::Pos(a) => ed.add_atom(a),
            Literal::Neg(a) => ed.add_neg_atom(a),
        }
    }
    ed.restore_needed_binders();
    ed.reorder_from();
    Ok(OqlEdit {
        query: ed.query,
        warnings: ed.warnings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::translate_schema;
    use crate::query_to_datalog::translate_query;
    use sqo_datalog::{CmpOp, Literal as DLiteral, Term};
    use sqo_odl::fixtures::university_schema;
    use sqo_oql::parse_oql;

    fn setup(src: &str) -> (SelectQuery, TranslationMap, Catalog) {
        let schema = university_schema();
        let catalog = translate_schema(&schema);
        let q = parse_oql(src).unwrap();
        let t = translate_query(&q, &schema, &catalog).unwrap();
        (t.normalized, t.map, catalog)
    }

    /// Application 2: adding `not faculty(X, …)` yields `x not in Faculty`.
    #[test]
    fn application2_oql_output() {
        let (oql, map, catalog) = setup("select x.name from x in Person where x.age < 30");
        let delta = Delta {
            added: vec![DLiteral::neg(
                "faculty",
                vec![
                    Term::var("X"),
                    Term::var("Name"),
                    Term::var("Age"),
                    Term::var("S"),
                    Term::var("R"),
                    Term::var("Ad"),
                ],
            )],
            removed: vec![],
        };
        let edit = apply_delta(&oql, &map, &catalog, &delta).unwrap();
        assert!(edit.warnings.is_empty(), "{:?}", edit.warnings);
        assert_eq!(
            edit.query.to_string(),
            "select x.name\nfrom x in Person,\n     x not in Faculty\nwhere x.age < 30"
        );
    }

    /// Application 3: remove `Name1 = Name2`, add `Z = W` — the paper's
    /// where-clause rewrite, with the `list` constructor retained.
    #[test]
    fn application3_oql_output() {
        let (oql, map, catalog) = setup(
            r#"select list(x.student_id, t.employee_id)
               from x in Student
                    y in x.takes
                    z in y.is_taught_by
                    t in TA
                    v in t.takes
                    w in v.is_taught_by
               where z.name = w.name"#,
        );
        let delta = Delta {
            added: vec![DLiteral::cmp(Term::var("Z"), CmpOp::Eq, Term::var("W"))],
            removed: vec![DLiteral::cmp(
                Term::var("Name1"),
                CmpOp::Eq,
                Term::var("Name2"),
            )],
        };
        let edit = apply_delta(&oql, &map, &catalog, &delta).unwrap();
        assert!(edit.warnings.is_empty(), "{:?}", edit.warnings);
        let text = edit.query.to_string();
        assert!(
            text.contains("select list(x.student_id, t.employee_id)"),
            "constructor must be retained: {text}"
        );
        assert!(text.contains("where z = w"), "OID comparison added: {text}");
        assert!(
            !text.contains("z.name = w.name"),
            "name join removed: {text}"
        );
    }

    /// Adding a restriction `Age > 30` yields `x.age > 30`.
    #[test]
    fn added_attribute_restriction() {
        let (oql, map, catalog) = setup("select x.name from x in Faculty");
        // The Datalog var for x.age was never created by translation, so
        // express the bound through an existing attribute var (x.name) —
        // instead test the attr-var path with name:
        let delta = Delta {
            added: vec![DLiteral::cmp(
                Term::var("Name"),
                CmpOp::Eq,
                Term::str("john"),
            )],
            removed: vec![],
        };
        let edit = apply_delta(&oql, &map, &catalog, &delta).unwrap();
        assert!(edit
            .query
            .where_
            .iter()
            .any(|p| p.to_string() == "x.name = \"john\""));
    }

    /// A method-result comparison maps back to the method-call syntax.
    #[test]
    fn method_result_comparison_roundtrip() {
        let (oql, map, catalog) =
            setup("select z.name from z in Faculty where z.taxes_withheld(10%) < 1000");
        let delta = Delta {
            added: vec![DLiteral::cmp(Term::var("V"), CmpOp::Gt, Term::int(3000))],
            removed: vec![],
        };
        let edit = apply_delta(&oql, &map, &catalog, &delta).unwrap();
        assert!(
            edit.query
                .where_
                .iter()
                .any(|p| p.to_string() == "z.taxes_withheld(0.1) > 3000"),
            "{}",
            edit.query
        );
    }

    /// Application 4 (Q): the ASR fold — remove the 4-hop chain, add the
    /// view atom; the view appears as a synthetic relationship.
    #[test]
    fn application4_asr_fold_output() {
        let (oql, map, mut catalog) = setup(
            r#"select w
               from x in Student
                    y in x.takes
                    z in y.is_section_of
                    v in z.has_sections
                    w in v.has_ta
               where x.name = "james""#,
        );
        catalog.register_view("asr", 2);
        let delta = Delta {
            added: vec![DLiteral::pos("asr", vec![Term::var("X"), Term::var("W")])],
            removed: vec![
                DLiteral::pos("takes", vec![Term::var("X"), Term::var("Y")]),
                DLiteral::pos("is_section_of", vec![Term::var("Y"), Term::var("Z")]),
                DLiteral::pos("has_sections", vec![Term::var("Z"), Term::var("V")]),
                DLiteral::pos("has_ta", vec![Term::var("V"), Term::var("W")]),
            ],
        };
        let edit = apply_delta(&oql, &map, &catalog, &delta).unwrap();
        assert!(edit.warnings.is_empty(), "{:?}", edit.warnings);
        let text = edit.query.to_string();
        assert!(text.contains("w in x.asr"), "{text}");
        assert!(!text.contains("x.takes"), "{text}");
        assert!(!text.contains("has_ta"), "{text}");
    }

    /// Removing a binder whose variable is still referenced is refused
    /// with a warning.
    #[test]
    fn scoping_preserving_refusal() {
        let (oql, map, catalog) = setup("select y from x in Student, y in x.takes");
        let delta = Delta {
            added: vec![],
            removed: vec![DLiteral::pos("takes", vec![Term::var("X"), Term::var("Y")])],
        };
        let edit = apply_delta(&oql, &map, &catalog, &delta).unwrap();
        assert!(!edit.warnings.is_empty());
        // The entry survives.
        assert_eq!(edit.query.from.len(), 2);
    }

    /// Added negated relationship literal: `y not in x.takes`.
    #[test]
    fn negated_relationship_entry() {
        let (oql, map, catalog) = setup("select x from x in Student, y in Section");
        let delta = Delta {
            added: vec![DLiteral::neg("takes", vec![Term::var("X"), Term::var("Y")])],
            removed: vec![],
        };
        let edit = apply_delta(&oql, &map, &catalog, &delta).unwrap();
        assert!(edit
            .query
            .from
            .iter()
            .any(|e| e.to_string() == "y not in x.takes"));
    }

    /// Fresh witness variables from join introduction get invented OQL
    /// names.
    #[test]
    fn invented_variable_names() {
        let (oql, map, catalog) = setup(
            "select v from x in Student, y in x.takes, z in y.is_section_of, v in z.has_sections",
        );
        let delta = Delta {
            added: vec![DLiteral::pos(
                "has_ta",
                vec![Term::var("V"), Term::var("NV1")],
            )],
            removed: vec![],
        };
        let edit = apply_delta(&oql, &map, &catalog, &delta).unwrap();
        assert!(
            edit.query
                .from
                .iter()
                .any(|e| e.to_string() == "nv1 in v.has_ta"),
            "{}",
            edit.query
        );
    }
}
