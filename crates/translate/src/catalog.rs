//! Step 1: schema translation — ODL schema → Datalog relations + ICs.
//!
//! Implements the rules of Section 4.2 of the paper:
//!
//! **Relations.** Each class, structure, relationship and method becomes a
//! relation:
//!
//! 1. class `C` → `c(OID, A1, …, An, OID_S1, …, OID_Sm)` — simple
//!    attributes first, then structure-attribute OIDs, inherited
//!    attributes before own ones;
//! 2. structure `S` → same shape;
//! 3. relationship `R` between `C1`, `C2` → `r(OID_C1, OID_C2)`;
//! 4. method `M` on `C` with arguments `A1…An` → `m(OID_C, A1, …, An, V)`.
//!
//! **Integrity constraints.**
//!
//! 1. OID identification (relationships, structure attributes, methods);
//! 2. subclass hierarchy: `c1(OID, shared…) ← c2(OID, all…)`;
//! 3. inverse relationships: `r1(X, Y) ← r2(Y, X)` and the converse;
//! 4. one-to-one constraints: `Y = Z ← r(X, Y), r(X, Z)` (and the mirror
//!    for the inverse side). We additionally emit the functional
//!    constraint for every to-one relationship side — implicit in the
//!    ODMG object model and required for the Application 4 reasoning;
//! 5. key constraints (IC7-style) for every declared key;
//!
//! plus the IC8-style *OID functionality* of class/structure/method
//! relations, recorded in [`Catalog::functional`].

use sqo_datalog::{Atom, CmpOp, Comparison, Constraint, ConstraintHead, Literal, PredSym, Term};
use sqo_odl::{BaseType, Schema, Type};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// What kind of schema element a relation encodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelKind {
    /// A class extent relation.
    Class {
        /// The class name.
        class: String,
    },
    /// A structure relation.
    Struct {
        /// The structure name.
        strct: String,
    },
    /// A relationship relation `r(OID_owner, OID_target)`.
    Relationship {
        /// The declaring class.
        class: String,
        /// The relationship name.
        name: String,
        /// The target class.
        target: String,
        /// Whether the declared side is to-many.
        many: bool,
        /// Whether the relationship is one-to-one.
        one_to_one: bool,
    },
    /// A method relation `m(OID, args…, V)`.
    Method {
        /// The declaring class.
        class: String,
        /// The method name.
        name: String,
    },
    /// A registered view (access support relation).
    View {
        /// The view name.
        name: String,
    },
}

/// The type of a relation argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgType {
    /// OID of an object of the named class or structure.
    Oid(String),
    /// A base value.
    Base(BaseType),
}

/// A named, typed relation argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgDesc {
    /// The source-level name (attribute name, `OID`, parameter name, or
    /// `Value` for a method result).
    pub name: String,
    /// The argument's type.
    pub ty: ArgType,
}

/// One relation of the Datalog schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationDecl {
    /// The predicate symbol.
    pub pred: PredSym,
    /// What the relation encodes.
    pub kind: RelKind,
    /// Argument descriptors, in order.
    pub args: Vec<ArgDesc>,
}

impl RelationDecl {
    /// The relation's arity.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Position of the named argument.
    pub fn arg_position(&self, name: &str) -> Option<usize> {
        self.args.iter().position(|a| a.name == name)
    }
}

/// The result of Step 1: the Datalog schema.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    /// All relations, in a deterministic order.
    pub relations: Vec<RelationDecl>,
    /// All generated integrity constraints.
    pub constraints: Vec<Constraint>,
    /// Functional-dependency map (`pred → k`: the first `k` arguments
    /// determine the rest) — the IC8 family. Classes and structures have
    /// `k = 1` (the OID determines every attribute); a method relation
    /// `m(OID, args…, V)` has `k = arity − 1` (receiver and arguments
    /// determine the result).
    pub functional: BTreeMap<PredSym, usize>,
    class_rel: HashMap<String, usize>,
    struct_rel: HashMap<String, usize>,
    rel_rel: HashMap<(String, String), usize>,
    method_rel: HashMap<(String, String), usize>,
    by_pred: HashMap<PredSym, usize>,
    used_names: BTreeSet<String>,
}

impl Catalog {
    /// The relation encoding a class.
    pub fn class_relation(&self, class: &str) -> Option<&RelationDecl> {
        self.class_rel.get(class).map(|&i| &self.relations[i])
    }

    /// The relation encoding a structure.
    pub fn struct_relation(&self, strct: &str) -> Option<&RelationDecl> {
        self.struct_rel.get(strct).map(|&i| &self.relations[i])
    }

    /// The relation encoding a relationship, looked up by declaring class
    /// and relationship name.
    pub fn relationship_relation(&self, class: &str, name: &str) -> Option<&RelationDecl> {
        self.rel_rel
            .get(&(class.to_string(), name.to_string()))
            .map(|&i| &self.relations[i])
    }

    /// The relation encoding a method, looked up by declaring class and
    /// method name.
    pub fn method_relation(&self, class: &str, name: &str) -> Option<&RelationDecl> {
        self.method_rel
            .get(&(class.to_string(), name.to_string()))
            .map(|&i| &self.relations[i])
    }

    /// Look up any relation by predicate symbol.
    pub fn relation_by_pred(&self, pred: &PredSym) -> Option<&RelationDecl> {
        self.by_pred.get(pred).map(|&i| &self.relations[i])
    }

    /// Register a view relation (access support relation) so Step 4 can
    /// map its atoms back to OQL. Re-registering an existing view is a
    /// no-op; a name that collides with a class/relationship/method
    /// relation is qualified (`view_<name>`) rather than silently
    /// aliased — callers must use the returned predicate.
    pub fn register_view(&mut self, name: &str, arity: usize) -> PredSym {
        let mut pred = PredSym::new(name.to_lowercase());
        match self.by_pred.get(&pred).map(|&i| &self.relations[i].kind) {
            Some(RelKind::View { .. }) => return pred,
            Some(_) => pred = PredSym::new(self.fresh_name(name, "view")),
            None => {}
        }
        let name = pred.name().to_string();
        let name = name.as_str();
        let args = (0..arity)
            .map(|i| ArgDesc {
                name: format!("A{i}"),
                ty: ArgType::Base(BaseType::Int),
            })
            .collect();
        self.push(RelationDecl {
            pred,
            kind: RelKind::View {
                name: name.to_string(),
            },
            args,
        });
        pred
    }

    fn push(&mut self, decl: RelationDecl) -> usize {
        let i = self.relations.len();
        self.by_pred.insert(decl.pred, i);
        self.used_names.insert(decl.pred.name().to_string());
        match &decl.kind {
            RelKind::Class { class } => {
                self.class_rel.insert(class.clone(), i);
            }
            RelKind::Struct { strct } => {
                self.struct_rel.insert(strct.clone(), i);
            }
            RelKind::Relationship { class, name, .. } => {
                self.rel_rel.insert((class.clone(), name.clone()), i);
            }
            RelKind::Method { class, name } => {
                self.method_rel.insert((class.clone(), name.clone()), i);
            }
            RelKind::View { .. } => {}
        }
        self.relations.push(decl);
        i
    }

    fn fresh_name(&self, base: &str, qualifier: &str) -> String {
        let base = base.to_lowercase();
        if !self.used_names.contains(&base) {
            return base;
        }
        let qualified = format!("{}_{}", qualifier.to_lowercase(), base);
        if !self.used_names.contains(&qualified) {
            return qualified;
        }
        let mut n = 2;
        loop {
            let name = format!("{qualified}{n}");
            if !self.used_names.contains(&name) {
                return name;
            }
            n += 1;
        }
    }
}

/// Argument descriptors for a class or structure relation: `OID` first,
/// then simple attributes, then structure-attribute OIDs (rule 1),
/// inherited before own.
fn object_args(schema: &Schema, owner: &str, is_class: bool) -> Vec<ArgDesc> {
    let mut args = vec![ArgDesc {
        name: "OID".into(),
        ty: ArgType::Oid(owner.to_string()),
    }];
    let attrs: Vec<(String, Type)> = if is_class {
        schema
            .all_attributes(owner)
            .into_iter()
            .map(|(_, a)| (a.name.clone(), a.ty.clone()))
            .collect()
    } else {
        schema
            .structure(owner)
            .map(|s| {
                s.fields
                    .iter()
                    .map(|f| (f.name.clone(), f.ty.clone()))
                    .collect()
            })
            .unwrap_or_default()
    };
    for (name, ty) in attrs.iter().filter(|(_, t)| matches!(t, Type::Base(_))) {
        let Type::Base(b) = ty else { unreachable!() };
        args.push(ArgDesc {
            name: name.clone(),
            ty: ArgType::Base(*b),
        });
    }
    for (name, ty) in attrs.iter().filter(|(_, t)| matches!(t, Type::Named(_))) {
        let Type::Named(n) = ty else { unreachable!() };
        args.push(ArgDesc {
            name: name.clone(),
            ty: ArgType::Oid(n.clone()),
        });
    }
    args
}

/// A template atom for a relation, with variables named after the
/// argument descriptors (optionally suffixed for freshness).
pub fn template_atom(decl: &RelationDecl, suffix: &str) -> Atom {
    Atom::new(
        decl.pred,
        decl.args
            .iter()
            .map(|a| Term::var(format!("{}{}", capitalize(&a.name), suffix)))
            .collect(),
    )
}

fn capitalize(s: &str) -> String {
    let mut cs = s.chars();
    match cs.next() {
        Some(first) => first.to_uppercase().collect::<String>() + cs.as_str(),
        None => String::new(),
    }
}

/// Run Step 1: translate an ODL schema into the Datalog [`Catalog`].
pub fn translate_schema(schema: &Schema) -> Catalog {
    let mut cat = Catalog::default();

    // ---- Relations -------------------------------------------------
    for c in schema.classes() {
        let pred = PredSym::new(cat.fresh_name(&c.name, "class"));
        let args = object_args(schema, &c.name, true);
        cat.functional.insert(pred, 1);
        cat.push(RelationDecl {
            pred,
            kind: RelKind::Class {
                class: c.name.clone(),
            },
            args,
        });
    }
    for s in schema.structures() {
        let pred = PredSym::new(cat.fresh_name(&s.name, "struct"));
        let args = object_args(schema, &s.name, false);
        cat.functional.insert(pred, 1);
        cat.push(RelationDecl {
            pred,
            kind: RelKind::Struct {
                strct: s.name.clone(),
            },
            args,
        });
    }
    for c in schema.classes() {
        for r in &c.relationships {
            let pred = PredSym::new(cat.fresh_name(&r.name, &c.name));
            cat.push(RelationDecl {
                pred,
                kind: RelKind::Relationship {
                    class: c.name.clone(),
                    name: r.name.clone(),
                    target: r.target.clone(),
                    many: r.many,
                    one_to_one: schema.is_one_to_one(&c.name, r),
                },
                args: vec![
                    ArgDesc {
                        name: "OID1".into(),
                        ty: ArgType::Oid(c.name.clone()),
                    },
                    ArgDesc {
                        name: "OID2".into(),
                        ty: ArgType::Oid(r.target.clone()),
                    },
                ],
            });
        }
        for m in &c.methods {
            let pred = PredSym::new(cat.fresh_name(&m.name, &c.name));
            let mut args = vec![ArgDesc {
                name: "OID".into(),
                ty: ArgType::Oid(c.name.clone()),
            }];
            for (pname, pty) in &m.params {
                args.push(ArgDesc {
                    name: pname.clone(),
                    ty: match pty {
                        Type::Base(b) => ArgType::Base(*b),
                        Type::Named(n) => ArgType::Oid(n.clone()),
                        Type::Collection(..) => ArgType::Base(BaseType::Int),
                    },
                });
            }
            args.push(ArgDesc {
                name: "Value".into(),
                ty: match &m.ret {
                    Type::Base(b) => ArgType::Base(*b),
                    Type::Named(n) => ArgType::Oid(n.clone()),
                    Type::Collection(..) => ArgType::Base(BaseType::Int),
                },
            });
            // Methods are functional: receiver OID plus the user-provided
            // arguments determine the result value.
            cat.functional.insert(pred, args.len() - 1);
            cat.push(RelationDecl {
                pred,
                kind: RelKind::Method {
                    class: c.name.clone(),
                    name: m.name.clone(),
                },
                args,
            });
        }
    }

    // ---- Integrity constraints -------------------------------------
    let mut ics: Vec<Constraint> = Vec::new();

    // 1a. OID identification for relationships.
    for decl in cat.relations.clone() {
        let RelKind::Relationship {
            class,
            name,
            target,
            ..
        } = &decl.kind
        else {
            continue;
        };
        let r_atom = Atom::new(decl.pred, vec![Term::var("OID1"), Term::var("OID2")]);
        if let Some(cd) = cat.class_relation(class) {
            let mut head = template_atom(cd, "_a");
            head.args[0] = Term::var("OID1");
            ics.push(Constraint::named(
                format!("OID({}.{},{})", class, name, class),
                ConstraintHead::Atom(head),
                vec![Literal::Pos(r_atom.clone())],
            ));
        }
        if let Some(td) = cat.class_relation(target) {
            let mut head = template_atom(td, "_b");
            head.args[0] = Term::var("OID2");
            ics.push(Constraint::named(
                format!("OID({}.{},{})", class, name, target),
                ConstraintHead::Atom(head),
                vec![Literal::Pos(r_atom)],
            ));
        }
    }

    // 1b. OID identification for structure attributes.
    for decl in cat.relations.clone() {
        let RelKind::Class { class } = &decl.kind else {
            continue;
        };
        for (pos, arg) in decl.args.iter().enumerate().skip(1) {
            let ArgType::Oid(target) = &arg.ty else {
                continue;
            };
            let Some(sd) = cat.struct_relation(target) else {
                continue; // class-typed attribute without a struct decl
            };
            let body_atom = template_atom(&decl, "_c");
            let shared = body_atom.args[pos];
            let mut head = template_atom(sd, "_s");
            head.args[0] = shared;
            ics.push(Constraint::named(
                format!("OID({}.{},{})", class, arg.name, target),
                ConstraintHead::Atom(head),
                vec![Literal::Pos(body_atom)],
            ));
        }
    }

    // 1c. OID identification for methods.
    for decl in cat.relations.clone() {
        let RelKind::Method { class, name } = &decl.kind else {
            continue;
        };
        let Some(cd) = cat.class_relation(class) else {
            continue;
        };
        let body_atom = template_atom(&decl, "_m");
        let oid = body_atom.args[0];
        let mut head = template_atom(cd, "_h");
        head.args[0] = oid;
        ics.push(Constraint::named(
            format!("OID({}.{})", class, name),
            ConstraintHead::Atom(head),
            vec![Literal::Pos(body_atom)],
        ));
    }

    // 2. Subclass hierarchy: attributes matched by name.
    for c in schema.classes() {
        let Some(sup) = &c.super_class else { continue };
        let (Some(sub_rel), Some(sup_rel)) = (cat.class_relation(&c.name), cat.class_relation(sup))
        else {
            continue;
        };
        let body_atom = template_atom(sub_rel, "");
        let head_args: Vec<Term> = sup_rel
            .args
            .iter()
            .map(|a| {
                let pos = sub_rel
                    .arg_position(&a.name)
                    .expect("superclass attribute present in subclass relation");
                body_atom.args[pos]
            })
            .collect();
        ics.push(Constraint::named(
            format!("SUB({}<{})", c.name, sup),
            ConstraintHead::Atom(Atom::new(sup_rel.pred, head_args)),
            vec![Literal::Pos(body_atom)],
        ));
    }

    // 3. Inverse relationships.
    for c in schema.classes() {
        for r in &c.relationships {
            let Some((icls, irel)) = &r.inverse else {
                continue;
            };
            let (Some(fwd), Some(bwd)) = (
                cat.relationship_relation(&c.name, &r.name),
                cat.relationship_relation(icls, irel),
            ) else {
                continue;
            };
            ics.push(Constraint::named(
                format!("INV({}.{})", c.name, r.name),
                ConstraintHead::Atom(Atom::new(fwd.pred, vec![Term::var("X"), Term::var("Y")])),
                vec![Literal::pos(
                    bwd.pred.name(),
                    vec![Term::var("Y"), Term::var("X")],
                )],
            ));
        }
    }

    // 4. Functional / one-to-one constraints.
    for decl in cat.relations.clone() {
        let RelKind::Relationship {
            class,
            name,
            many,
            one_to_one,
            ..
        } = &decl.kind
        else {
            continue;
        };
        if !many {
            // This side is to-one: the owner determines the target.
            ics.push(Constraint::named(
                format!("FUN({}.{})", class, name),
                ConstraintHead::Cmp(Comparison::new(Term::var("Y1"), CmpOp::Eq, Term::var("Y2"))),
                vec![
                    Literal::pos(decl.pred.name(), vec![Term::var("X"), Term::var("Y1")]),
                    Literal::pos(decl.pred.name(), vec![Term::var("X"), Term::var("Y2")]),
                ],
            ));
        }
        if *one_to_one {
            ics.push(Constraint::named(
                format!("1-1({}.{})", class, name),
                ConstraintHead::Cmp(Comparison::new(Term::var("X1"), CmpOp::Eq, Term::var("X2"))),
                vec![
                    Literal::pos(decl.pred.name(), vec![Term::var("X1"), Term::var("Y")]),
                    Literal::pos(decl.pred.name(), vec![Term::var("X2"), Term::var("Y")]),
                ],
            ));
        }
    }

    // 5. Key constraints (IC7-style). A key declared on a class also
    //    holds on every subclass (its extent is a subset), and the
    //    subclass form is what Application 3 applies to faculty atoms.
    for c in schema.classes() {
        let mut keyed: Vec<Vec<String>> = Vec::new();
        for anc in schema.chain(&c.name) {
            for key in &anc.keys {
                if !keyed.contains(key) {
                    keyed.push(key.clone());
                }
            }
        }
        let Some(decl) = cat.class_relation(&c.name) else {
            continue;
        };
        for key in &keyed {
            let a1 = template_atom(decl, "_k1");
            let a2 = template_atom(decl, "_k2");
            let mut body = vec![Literal::Pos(a1.clone()), Literal::Pos(a2.clone())];
            let mut ok = true;
            for attr in key {
                match decl.arg_position(attr) {
                    Some(pos) => body.push(Literal::Cmp(Comparison::new(
                        a1.args[pos],
                        CmpOp::Eq,
                        a2.args[pos],
                    ))),
                    None => ok = false,
                }
            }
            if !ok {
                continue;
            }
            ics.push(Constraint::named(
                format!("KEY({}.{})", c.name, key.join("+")),
                ConstraintHead::Cmp(Comparison::new(a1.args[0], CmpOp::Eq, a2.args[0])),
                body,
            ));
        }
    }

    cat.constraints = ics;
    cat
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqo_odl::fixtures::university_schema;

    fn catalog() -> Catalog {
        translate_schema(&university_schema())
    }

    #[test]
    fn class_relations_have_rule1_layout() {
        let cat = catalog();
        let person = cat.class_relation("Person").unwrap();
        let names: Vec<&str> = person.args.iter().map(|a| a.name.as_str()).collect();
        // OID, simple attrs (name, age), then structure OIDs (address).
        assert_eq!(names, vec!["OID", "name", "age", "address"]);
        assert!(matches!(&person.args[3].ty, ArgType::Oid(s) if s == "Address"));

        let faculty = cat.class_relation("Faculty").unwrap();
        let fnames: Vec<&str> = faculty.args.iter().map(|a| a.name.as_str()).collect();
        // Inherited simple attrs first, then own, then structure OIDs.
        assert_eq!(
            fnames,
            vec!["OID", "name", "age", "salary", "rank", "address"]
        );
    }

    #[test]
    fn relationship_and_method_relations() {
        let cat = catalog();
        let takes = cat.relationship_relation("Student", "takes").unwrap();
        assert_eq!(takes.pred.name(), "takes");
        assert_eq!(takes.arity(), 2);
        let tw = cat.method_relation("Employee", "taxes_withheld").unwrap();
        assert_eq!(tw.pred.name(), "taxes_withheld");
        // m(OID, Rate, Value)
        assert_eq!(tw.arity(), 3);
        assert_eq!(tw.args[1].name, "rate");
        assert_eq!(tw.args[2].name, "Value");
    }

    #[test]
    fn functional_covers_classes_structs_methods() {
        let cat = catalog();
        for p in ["person", "faculty", "address"] {
            assert_eq!(
                cat.functional.get(&PredSym::new(p)),
                Some(&1),
                "{p} should be OID-functional"
            );
        }
        // taxes_withheld(OID, Rate, Value): OID + Rate determine Value.
        assert_eq!(
            cat.functional.get(&PredSym::new("taxes_withheld")),
            Some(&2)
        );
        assert!(!cat.functional.contains_key(&PredSym::new("takes")));
    }

    #[test]
    fn subclass_ics_match_attributes_by_name() {
        let cat = catalog();
        let sub = cat
            .constraints
            .iter()
            .find(|c| c.name.as_deref() == Some("SUB(Faculty<Employee)"))
            .expect("subclass IC");
        let ConstraintHead::Atom(head) = &sub.head else {
            panic!()
        };
        assert_eq!(head.pred.name(), "employee");
        // employee args: OID, name, age, salary, address — all shared with
        // faculty's template.
        assert_eq!(head.args.len(), 5);
        let Literal::Pos(body) = &sub.body[0] else {
            panic!()
        };
        assert_eq!(body.pred.name(), "faculty");
        assert_eq!(body.args.len(), 6);
        // The head's salary var must equal the body's salary var.
        let faculty = cat.class_relation("Faculty").unwrap();
        let employee = cat.class_relation("Employee").unwrap();
        let f_sal = faculty.arg_position("salary").unwrap();
        let e_sal = employee.arg_position("salary").unwrap();
        assert_eq!(head.args[e_sal], body.args[f_sal]);
    }

    #[test]
    fn inverse_ics_generated_both_ways() {
        let cat = catalog();
        let inv: Vec<&Constraint> = cat
            .constraints
            .iter()
            .filter(|c| c.name.as_deref().is_some_and(|n| n.starts_with("INV")))
            .collect();
        // Each of the 4 inverse pairs yields 2 ICs.
        assert_eq!(inv.len(), 8);
        let takes_inv = inv
            .iter()
            .find(|c| c.name.as_deref() == Some("INV(Student.takes)"))
            .unwrap();
        assert_eq!(
            takes_inv.to_string(),
            "INV(Student.takes): takes(X, Y) <- taken_by(Y, X)"
        );
    }

    #[test]
    fn one_to_one_ics_for_has_ta() {
        let cat = catalog();
        assert!(cat
            .constraints
            .iter()
            .any(|c| c.name.as_deref() == Some("FUN(Section.has_ta)")));
        assert!(cat
            .constraints
            .iter()
            .any(|c| c.name.as_deref() == Some("1-1(Section.has_ta)")));
        // takes is many-many: neither.
        assert!(!cat.constraints.iter().any(|c| c
            .name
            .as_deref()
            .is_some_and(|n| n.contains("Student.takes)") && n.starts_with("FUN"))));
    }

    #[test]
    fn key_ics_ic7_shape() {
        let cat = catalog();
        let key = cat
            .constraints
            .iter()
            .find(|c| c.name.as_deref() == Some("KEY(Person.name)"))
            .expect("person name key");
        let ConstraintHead::Cmp(h) = &key.head else {
            panic!()
        };
        assert_eq!(h.op, CmpOp::Eq);
        assert_eq!(key.body.len(), 3); // two person atoms + name equality
    }

    #[test]
    fn oid_identification_ics_present() {
        let cat = catalog();
        // Relationship endpoints.
        assert!(cat
            .constraints
            .iter()
            .any(|c| c.name.as_deref() == Some("OID(Student.takes,Student)")));
        assert!(cat
            .constraints
            .iter()
            .any(|c| c.name.as_deref() == Some("OID(Student.takes,Section)")));
        // Structure attribute.
        assert!(cat
            .constraints
            .iter()
            .any(|c| c.name.as_deref() == Some("OID(Person.address,Address)")));
        // Method.
        assert!(cat
            .constraints
            .iter()
            .any(|c| c.name.as_deref() == Some("OID(Employee.taxes_withheld)")));
    }

    #[test]
    fn taught_by_oid_identification_types_the_target() {
        // Section 4.3: "faculty(Z, …) ← taught_by(Y, Z)" — the IC that
        // types z in Example 2.
        let cat = catalog();
        let ic = cat
            .constraints
            .iter()
            .find(|c| c.name.as_deref() == Some("OID(Section.is_taught_by,Faculty)"))
            .expect("typing IC");
        let ConstraintHead::Atom(h) = &ic.head else {
            panic!()
        };
        assert_eq!(h.pred.name(), "faculty");
        let Literal::Pos(b) = &ic.body[0] else {
            panic!()
        };
        assert_eq!(b.pred.name(), "is_taught_by");
        // Head OID = body's second argument.
        assert_eq!(h.args[0], b.args[1]);
    }

    #[test]
    fn name_collisions_are_qualified() {
        let schema = Schema::parse(
            "interface A { attribute string x; };
             interface B { relationship A a inverse A::back; };
             interface AClash { };",
        );
        // `a` relation name for class A (lowercase) collides with
        // relationship `a`. Build a schema where that happens:
        let schema2 = Schema::parse(
            "interface A { };
             interface B { relationship A a inverse A::back_b; };",
        );
        // Neither schema is inverse-complete; just check fresh_name logic
        // directly instead.
        let _ = (schema, schema2);
        let mut cat = Catalog::default();
        cat.used_names.insert("a".into());
        assert_eq!(cat.fresh_name("A", "B"), "b_a");
        cat.used_names.insert("b_a".into());
        assert_eq!(cat.fresh_name("A", "B"), "b_a2");
    }

    #[test]
    fn register_view() {
        let mut cat = catalog();
        let pred = cat.register_view("ASR", 2);
        assert_eq!(pred.name(), "asr");
        assert!(matches!(
            &cat.relation_by_pred(&pred).unwrap().kind,
            RelKind::View { name } if name == "asr"
        ));
        // Idempotent.
        let again = cat.register_view("ASR", 2);
        assert_eq!(again, pred);
    }
}
