#![warn(missing_docs)]

//! # sqo-translate
//!
//! The three rewriting steps of the paper's pipeline (Figure 2):
//!
//! * **Step 1** ([`catalog`]) — ODL schema → Datalog relations +
//!   integrity constraints;
//! * **Step 2** ([`query_to_datalog`]) — OQL select-from-where query →
//!   conjunctive Datalog query (with a [`TranslationMap`] remembering how
//!   each Datalog variable arose);
//! * **Step 4** ([`datalog_to_oql`]) — algorithm DATALOG_to_OQL: map the
//!   literal-level delta produced by SQO back onto the original OQL
//!   query, preserving constructors.
//!
//! [`TranslationMap`]: query_to_datalog::TranslationMap

pub mod catalog;
pub mod datalog_to_oql;
pub mod error;
pub mod query_to_datalog;

pub use catalog::{translate_schema, ArgDesc, ArgType, Catalog, RelKind, RelationDecl};
pub use datalog_to_oql::{apply_delta, OqlEdit};
pub use error::{Result, TranslateError};
pub use query_to_datalog::{translate_query, QueryTranslation, TranslationMap};
