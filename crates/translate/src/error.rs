//! Error types for the translation steps.

use std::fmt;

/// Errors produced while translating schemas and queries.
#[derive(Debug, Clone, PartialEq)]
pub enum TranslateError {
    /// An OQL `from` extent does not name a known class.
    UnknownExtent {
        /// The offending name.
        name: String,
    },
    /// A member access does not resolve on the inferred type.
    UnknownMember {
        /// The type whose member was sought.
        ty: String,
        /// The member name.
        member: String,
    },
    /// A variable's type could not be inferred (e.g. iterating a base
    /// value).
    NotAnObject {
        /// The variable involved.
        var: String,
        /// Additional detail.
        detail: String,
    },
    /// An OQL feature outside the supported fragment.
    Unsupported {
        /// The unsupported feature.
        feature: String,
    },
    /// The query must be normalized (one-dot form) before translation.
    NotNormalized {
        /// The offending expression, pretty-printed.
        expr: String,
    },
    /// Wrapped OQL error.
    Oql(sqo_oql::OqlError),
    /// Wrapped ODL error.
    Odl(sqo_odl::OdlError),
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::UnknownExtent { name } => {
                write!(f, "unknown extent or class `{name}` in from clause")
            }
            TranslateError::UnknownMember { ty, member } => {
                write!(f, "type `{ty}` has no member `{member}`")
            }
            TranslateError::NotAnObject { var, detail } => {
                write!(f, "variable `{var}` does not range over objects: {detail}")
            }
            TranslateError::Unsupported { feature } => {
                write!(f, "unsupported feature: {feature}")
            }
            TranslateError::NotNormalized { expr } => {
                write!(f, "path expression `{expr}` is not in one-dot form")
            }
            TranslateError::Oql(e) => e.fmt(f),
            TranslateError::Odl(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for TranslateError {}

impl From<sqo_oql::OqlError> for TranslateError {
    fn from(e: sqo_oql::OqlError) -> Self {
        TranslateError::Oql(e)
    }
}

impl From<sqo_odl::OdlError> for TranslateError {
    fn from(e: sqo_odl::OdlError) -> Self {
        TranslateError::Odl(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, TranslateError>;
