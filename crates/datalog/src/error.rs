//! Error types for the Datalog substrate.

use std::fmt;

/// Errors produced while parsing, transforming or evaluating Datalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatalogError {
    /// A parse error with a human-readable message and 1-based line/column.
    Parse {
        /// Human-readable description.
        message: String,
        /// 1-based line number.
        line: usize,
        /// 1-based column number.
        column: usize,
    },
    /// A rule or query is unsafe: a variable occurs in the head, in a
    /// negative literal, or in a comparison without also occurring in a
    /// positive body literal.
    UnsafeVariable {
        /// The offending clause, pretty-printed.
        clause: String,
        /// The unsafe variable.
        variable: String,
    },
    /// A fact contained a variable or an evaluable head.
    NonGroundFact {
        /// The offending fact, pretty-printed.
        fact: String,
    },
    /// The program's negation could not be stratified.
    NotStratified {
        /// The predicate involved.
        predicate: String,
    },
    /// Arity mismatch against a previously declared/used predicate.
    ArityMismatch {
        /// The predicate involved.
        predicate: String,
        /// What was expected.
        expected: usize,
        /// What was found instead.
        found: usize,
    },
    /// A referenced predicate has no facts and no rules.
    UnknownPredicate {
        /// The predicate involved.
        predicate: String,
    },
    /// Comparison between incomparable constants (e.g. a string and an int
    /// under `<`).
    Incomparable {
        /// Left operand, pretty-printed.
        lhs: String,
        /// Right operand, pretty-printed.
        rhs: String,
    },
}

impl fmt::Display for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatalogError::Parse {
                message,
                line,
                column,
            } => write!(f, "parse error at {line}:{column}: {message}"),
            DatalogError::UnsafeVariable { clause, variable } => {
                write!(f, "unsafe variable {variable} in clause `{clause}`")
            }
            DatalogError::NonGroundFact { fact } => {
                write!(f, "fact is not ground: `{fact}`")
            }
            DatalogError::NotStratified { predicate } => {
                write!(f, "program is not stratifiable (recursion through negation involving `{predicate}`)")
            }
            DatalogError::ArityMismatch {
                predicate,
                expected,
                found,
            } => write!(
                f,
                "arity mismatch for `{predicate}`: expected {expected}, found {found}"
            ),
            DatalogError::UnknownPredicate { predicate } => {
                write!(f, "unknown predicate `{predicate}`")
            }
            DatalogError::Incomparable { lhs, rhs } => {
                write!(f, "incomparable constants `{lhs}` and `{rhs}`")
            }
        }
    }
}

impl std::error::Error for DatalogError {}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DatalogError>;
