//! Concrete syntax for the Datalog representation.
//!
//! The grammar mirrors the paper's notation: predicates and constants
//! start with lower-case letters, variables with upper-case letters.
//! Statements end with `.`; `%` starts a line comment.
//!
//! ```text
//! fact        :  faculty(#1, "smith", 45).
//! rule        :  asr(X, W) <- takes(X, Y), has_ta(Y, W).
//! constraint  :  ic IC1: Salary > 40000 <- faculty(OID, Salary).
//!                ic: <- person(X), thing(X).          % a denial
//!                ic: not faculty(X) <- retired(X).
//! query       :  Q(Name) <- student(X, Name), Age < 30.
//! ```
//!
//! A statement whose head functor starts with an upper-case letter is a
//! query; the `ic` keyword introduces a constraint; a ground headless atom
//! is a fact; anything else with `<-` is a rule.
//!
//! Constants: integers (`30`), reals (`0.5`), percentages (`10%`, parsed
//! as the real `0.10` — used by the paper's `taxes_withheld(10%)`),
//! double-quoted strings, `true`/`false`, OIDs (`#17`), and bare
//! lower-case identifiers (symbolic constants, stored as strings).

use crate::atom::{Atom, CmpOp, Comparison, Literal};
use crate::clause::{Constraint, ConstraintHead, Query, Rule};
use crate::error::{DatalogError, Result};
use crate::term::{Const, Term, R64};

/// Any top-level statement of the concrete syntax.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A ground fact.
    Fact(Atom),
    /// A rule (view definition).
    Rule(Rule),
    /// An integrity constraint.
    Constraint(Constraint),
    /// A query.
    Query(Query),
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    LIdent(String), // lower-case identifier
    UIdent(String), // upper-case identifier (variable or query name)
    Int(i64),
    Real(f64),
    Str(String),
    Oid(u64),
    LParen,
    RParen,
    Comma,
    Dot,
    Colon,
    Arrow, // <-
    Op(CmpOp),
    Not,
    Ic,
    True,
    False,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> DatalogError {
        DatalogError::Parse {
            message: message.into(),
            line: self.line,
            column: self.col,
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn tokens(mut self) -> Result<Vec<Spanned>> {
        let mut out = Vec::new();
        loop {
            // Skip whitespace and comments.
            loop {
                match self.peek() {
                    Some(c) if c.is_ascii_whitespace() => {
                        self.bump();
                    }
                    Some(b'%') => {
                        while let Some(c) = self.peek() {
                            if c == b'\n' {
                                break;
                            }
                            self.bump();
                        }
                    }
                    _ => break,
                }
            }
            let (line, col) = (self.line, self.col);
            let Some(c) = self.peek() else { break };
            let tok = match c {
                b'(' => {
                    self.bump();
                    Tok::LParen
                }
                b')' => {
                    self.bump();
                    Tok::RParen
                }
                b',' => {
                    self.bump();
                    Tok::Comma
                }
                b'.' => {
                    self.bump();
                    Tok::Dot
                }
                b':' => {
                    self.bump();
                    Tok::Colon
                }
                b'<' => {
                    self.bump();
                    match self.peek() {
                        Some(b'-') => {
                            self.bump();
                            Tok::Arrow
                        }
                        Some(b'=') => {
                            self.bump();
                            Tok::Op(CmpOp::Le)
                        }
                        _ => Tok::Op(CmpOp::Lt),
                    }
                }
                b'>' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::Op(CmpOp::Ge)
                    } else {
                        Tok::Op(CmpOp::Gt)
                    }
                }
                b'=' => {
                    self.bump();
                    Tok::Op(CmpOp::Eq)
                }
                b'!' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::Op(CmpOp::Ne)
                    } else {
                        return Err(self.err("expected `=` after `!`"));
                    }
                }
                b'#' => {
                    self.bump();
                    let mut n: u64 = 0;
                    let mut any = false;
                    while let Some(d) = self.peek() {
                        if d.is_ascii_digit() {
                            n = n * 10 + u64::from(d - b'0');
                            any = true;
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    if !any {
                        return Err(self.err("expected digits after `#`"));
                    }
                    Tok::Oid(n)
                }
                b'"' => {
                    self.bump();
                    let mut s = String::new();
                    loop {
                        match self.bump() {
                            Some(b'"') => break,
                            Some(b'\\') => match self.bump() {
                                Some(b'n') => s.push('\n'),
                                Some(b't') => s.push('\t'),
                                Some(b'"') => s.push('"'),
                                Some(b'\\') => s.push('\\'),
                                _ => return Err(self.err("invalid escape in string")),
                            },
                            Some(c) => s.push(c as char),
                            None => return Err(self.err("unterminated string literal")),
                        }
                    }
                    Tok::Str(s)
                }
                c if c.is_ascii_digit()
                    || (c == b'-' && self.peek2().is_some_and(|d| d.is_ascii_digit())) =>
                {
                    let mut text = String::new();
                    if c == b'-' {
                        text.push('-');
                        self.bump();
                    }
                    let mut is_real = false;
                    while let Some(d) = self.peek() {
                        if d.is_ascii_digit() {
                            text.push(d as char);
                            self.bump();
                        } else if d == b'.'
                            && !is_real
                            && self.peek2().is_some_and(|e| e.is_ascii_digit())
                        {
                            is_real = true;
                            text.push('.');
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    if self.peek() == Some(b'%') {
                        self.bump();
                        let v: f64 = text
                            .parse()
                            .map_err(|_| self.err(format!("invalid number `{text}`")))?;
                        Tok::Real(v / 100.0)
                    } else if is_real {
                        let v: f64 = text
                            .parse()
                            .map_err(|_| self.err(format!("invalid number `{text}`")))?;
                        Tok::Real(v)
                    } else {
                        let v: i64 = text
                            .parse()
                            .map_err(|_| self.err(format!("invalid integer `{text}`")))?;
                        Tok::Int(v)
                    }
                }
                c if c.is_ascii_alphabetic() || c == b'_' => {
                    let mut s = String::new();
                    while let Some(d) = self.peek() {
                        if d.is_ascii_alphanumeric() || d == b'_' {
                            s.push(d as char);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    match s.as_str() {
                        "not" => Tok::Not,
                        "ic" => Tok::Ic,
                        "true" => Tok::True,
                        "false" => Tok::False,
                        _ if s.starts_with(|ch: char| ch.is_ascii_uppercase()) => Tok::UIdent(s),
                        _ => Tok::LIdent(s),
                    }
                }
                other => return Err(self.err(format!("unexpected character `{}`", other as char))),
            };
            out.push(Spanned { tok, line, col });
        }
        Ok(out)
    }
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn err_at(&self, message: impl Into<String>) -> DatalogError {
        let (line, column) = self
            .toks
            .get(self.pos)
            .map(|s| (s.line, s.col))
            .unwrap_or_else(|| {
                self.toks
                    .last()
                    .map(|s| (s.line, s.col + 1))
                    .unwrap_or((1, 1))
            });
        DatalogError::Parse {
            message: message.into(),
            line,
            column,
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<()> {
        if self.peek() == Some(t) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err_at(format!("expected {what}")))
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn term(&mut self) -> Result<Term> {
        match self.bump() {
            Some(Tok::UIdent(v)) => Ok(Term::var(v)),
            Some(Tok::LIdent(s)) => Ok(Term::str(s)),
            Some(Tok::Int(i)) => Ok(Term::int(i)),
            Some(Tok::Real(r)) => Ok(Term::Const(Const::Real(R64::new(r)))),
            Some(Tok::Str(s)) => Ok(Term::str(s)),
            Some(Tok::Oid(o)) => Ok(Term::oid(o)),
            Some(Tok::True) => Ok(Term::Const(Const::Bool(true))),
            Some(Tok::False) => Ok(Term::Const(Const::Bool(false))),
            _ => Err(self.err_at("expected a term")),
        }
    }

    fn args(&mut self) -> Result<Vec<Term>> {
        self.expect(&Tok::LParen, "`(`")?;
        let mut out = Vec::new();
        if self.peek() == Some(&Tok::RParen) {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            out.push(self.term()?);
            match self.bump() {
                Some(Tok::Comma) => continue,
                Some(Tok::RParen) => break,
                _ => return Err(self.err_at("expected `,` or `)`")),
            }
        }
        Ok(out)
    }

    fn atom(&mut self, name: String) -> Result<Atom> {
        let args = self.args()?;
        Ok(Atom::new(name, args))
    }

    /// A body literal: `p(..)`, `not p(..)`, or `t1 θ t2`.
    fn literal(&mut self) -> Result<Literal> {
        if self.peek() == Some(&Tok::Not) {
            self.pos += 1;
            let Some(Tok::LIdent(name)) = self.bump() else {
                return Err(self.err_at("expected predicate after `not`"));
            };
            return Ok(Literal::Neg(self.atom(name)?));
        }
        // Predicate atom iff a lower-case identifier followed by `(`.
        if let Some(Tok::LIdent(name)) = self.peek().cloned() {
            if self.toks.get(self.pos + 1).map(|s| &s.tok) == Some(&Tok::LParen) {
                self.pos += 1;
                return Ok(Literal::Pos(self.atom(name)?));
            }
        }
        // Otherwise a comparison.
        let lhs = self.term()?;
        let Some(Tok::Op(op)) = self.bump() else {
            return Err(self.err_at("expected a comparison operator"));
        };
        let rhs = self.term()?;
        Ok(Literal::Cmp(Comparison::new(lhs, op, rhs)))
    }

    fn body(&mut self) -> Result<Vec<Literal>> {
        let mut out = vec![self.literal()?];
        while self.peek() == Some(&Tok::Comma) {
            self.pos += 1;
            out.push(self.literal()?);
        }
        Ok(out)
    }

    fn constraint_head(&mut self) -> Result<ConstraintHead> {
        if self.peek() == Some(&Tok::Arrow) {
            return Ok(ConstraintHead::None);
        }
        if self.peek() == Some(&Tok::Not) {
            self.pos += 1;
            let Some(Tok::LIdent(p)) = self.bump() else {
                return Err(self.err_at("expected predicate after `not`"));
            };
            return Ok(ConstraintHead::NegAtom(self.atom(p)?));
        }
        if let Some(Tok::LIdent(p)) = self.peek().cloned() {
            if self.toks.get(self.pos + 1).map(|s| &s.tok) == Some(&Tok::LParen) {
                self.pos += 1;
                return Ok(ConstraintHead::Atom(self.atom(p)?));
            }
        }
        let lhs = self.term()?;
        let Some(Tok::Op(op)) = self.bump() else {
            return Err(self.err_at("expected a comparison operator"));
        };
        let rhs = self.term()?;
        Ok(ConstraintHead::Cmp(Comparison::new(lhs, op, rhs)))
    }

    fn statement(&mut self) -> Result<Statement> {
        let stmt = match self.peek().cloned() {
            Some(Tok::Ic) => {
                self.pos += 1;
                // Optional name before `:`.
                let name = match self.peek().cloned() {
                    Some(Tok::UIdent(n)) | Some(Tok::LIdent(n))
                        if self.toks.get(self.pos + 1).map(|s| &s.tok) == Some(&Tok::Colon) =>
                    {
                        self.pos += 1;
                        Some(n)
                    }
                    _ => None,
                };
                self.expect(&Tok::Colon, "`:` after `ic`")?;
                let head = self.constraint_head()?;
                self.expect(&Tok::Arrow, "`<-`")?;
                let body = self.body()?;
                Statement::Constraint(Constraint { name, head, body })
            }
            Some(Tok::UIdent(qname)) => {
                // Query: Q(projection) <- body.
                self.pos += 1;
                let projection = self.args()?;
                self.expect(&Tok::Arrow, "`<-`")?;
                let body = self.body()?;
                Statement::Query(Query::new(qname.to_lowercase(), projection, body))
            }
            Some(Tok::LIdent(p)) => {
                self.pos += 1;
                let head = self.atom(p)?;
                if self.peek() == Some(&Tok::Arrow) {
                    self.pos += 1;
                    let body = self.body()?;
                    Statement::Rule(Rule::new(head, body))
                } else {
                    if !head.is_ground() {
                        return Err(DatalogError::NonGroundFact {
                            fact: head.to_string(),
                        });
                    }
                    Statement::Fact(head)
                }
            }
            _ => return Err(self.err_at("expected a statement")),
        };
        self.expect(&Tok::Dot, "`.` at end of statement")?;
        Ok(stmt)
    }
}

/// Parse a whole program (any mix of statements).
pub fn parse_program(src: &str) -> Result<Vec<Statement>> {
    let toks = Lexer::new(src).tokens()?;
    let mut p = Parser { toks, pos: 0 };
    let mut out = Vec::new();
    while !p.at_end() {
        out.push(p.statement()?);
    }
    Ok(out)
}

fn single(src: &str) -> Result<Statement> {
    // Forgive a missing trailing dot for single-statement convenience.
    let owned;
    let src = if src.trim_end().ends_with('.') {
        src
    } else {
        owned = format!("{src}.");
        &owned
    };
    let mut stmts = parse_program(src)?;
    if stmts.len() != 1 {
        return Err(DatalogError::Parse {
            message: format!("expected exactly one statement, found {}", stmts.len()),
            line: 1,
            column: 1,
        });
    }
    Ok(stmts.remove(0))
}

/// Parse a single query, e.g. `Q(Name) <- person(X, Name, Age), Age < 30`.
///
/// A lower-case head (the form produced by [`Query`]'s `Display`) is also
/// accepted and converted, so display/parse round-trips.
pub fn parse_query(src: &str) -> Result<Query> {
    match single(src)? {
        Statement::Query(q) => Ok(q),
        Statement::Rule(r) => Ok(Query::new(
            r.head.pred.name().to_string(),
            r.head.args,
            r.body,
        )),
        other => Err(DatalogError::Parse {
            message: format!("expected a query, found {other:?}"),
            line: 1,
            column: 1,
        }),
    }
}

/// Parse a single integrity constraint. The `ic [name]:` prefix is
/// optional.
pub fn parse_constraint(src: &str) -> Result<Constraint> {
    let trimmed = src.trim_start();
    let owned;
    let src2 = if trimmed.starts_with("ic ") || trimmed.starts_with("ic:") {
        src
    } else {
        owned = format!("ic: {src}");
        &owned
    };
    match single(src2)? {
        Statement::Constraint(c) => Ok(c),
        other => Err(DatalogError::Parse {
            message: format!("expected a constraint, found {other:?}"),
            line: 1,
            column: 1,
        }),
    }
}

/// Parse a single rule (view definition).
pub fn parse_rule(src: &str) -> Result<Rule> {
    match single(src)? {
        Statement::Rule(r) => Ok(r),
        other => Err(DatalogError::Parse {
            message: format!("expected a rule, found {other:?}"),
            line: 1,
            column: 1,
        }),
    }
}

/// Parse a single ground fact.
pub fn parse_fact(src: &str) -> Result<Atom> {
    match single(src)? {
        Statement::Fact(f) => Ok(f),
        other => Err(DatalogError::Parse {
            message: format!("expected a fact, found {other:?}"),
            line: 1,
            column: 1,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_example1_query() {
        let q = parse_query(
            "Q(Name) <- student(St_id, Name), takes_section(St_id, Sec), \
             faculty(Sec, Fac_id, Age), Age < 18",
        )
        .unwrap();
        assert_eq!(q.name, "q");
        assert_eq!(q.projection.len(), 1);
        assert_eq!(q.body.len(), 4);
        assert_eq!(
            q.to_string(),
            "q(Name) <- student(St_id, Name), takes_section(St_id, Sec), \
             faculty(Sec, Fac_id, Age), Age < 18"
        );
    }

    #[test]
    fn parse_paper_ic1() {
        let ic = parse_constraint("ic IC1: Salary > 40000 <- faculty(OID, Salary).").unwrap();
        assert_eq!(ic.name.as_deref(), Some("IC1"));
        assert!(matches!(&ic.head, ConstraintHead::Cmp(c) if c.op == CmpOp::Gt));
        assert_eq!(ic.body.len(), 1);
    }

    #[test]
    fn parse_unnamed_constraint_without_prefix() {
        let ic = parse_constraint("Age >= 30 <- faculty(X, Name, Age)").unwrap();
        assert!(ic.name.is_none());
        assert!(matches!(&ic.head, ConstraintHead::Cmp(_)));
    }

    #[test]
    fn parse_denial() {
        let ic = parse_constraint("ic: <- person(X), robot(X).").unwrap();
        assert_eq!(ic.head, ConstraintHead::None);
        assert_eq!(ic.body.len(), 2);
    }

    #[test]
    fn parse_neg_head_constraint() {
        let ic =
            parse_constraint("ic IC6: not faculty(X, N, A) <- person(X, N, A), A < 30.").unwrap();
        assert!(matches!(&ic.head, ConstraintHead::NegAtom(a) if a.pred.name() == "faculty"));
        assert_eq!(ic.name.as_deref(), Some("IC6"));
    }

    #[test]
    fn parse_atom_head_constraint() {
        let ic = parse_constraint("ic IC5: person(X, N, A) <- faculty(X, N, A).").unwrap();
        assert!(matches!(&ic.head, ConstraintHead::Atom(_)));
    }

    #[test]
    fn parse_rule_with_chain() {
        let r = parse_rule(
            "asr(X, W) <- takes(X, Y), is_section_of(Y, Z), has_sections(Z, V), has_ta(V, W)",
        )
        .unwrap();
        assert_eq!(r.head.pred.name(), "asr");
        assert_eq!(r.body.len(), 4);
        assert!(r.is_safe());
    }

    #[test]
    fn parse_fact_kinds() {
        let f = parse_fact(r#"faculty(#1, "smith", 45)"#).unwrap();
        assert_eq!(f.args[0], Term::oid(1));
        assert_eq!(f.args[1], Term::str("smith"));
        assert_eq!(f.args[2], Term::int(45));
        let g = parse_fact("flag(true, -3, 2.5)").unwrap();
        assert_eq!(g.args[0], Term::Const(Const::Bool(true)));
        assert_eq!(g.args[1], Term::int(-3));
        assert_eq!(g.args[2], Term::real(2.5));
    }

    #[test]
    fn percent_literal_is_a_rate() {
        let q = parse_query("Q(V) <- taxes_withheld(Z, 10%, V), V < 1000").unwrap();
        let Literal::Pos(a) = &q.body[0] else {
            panic!()
        };
        assert_eq!(a.args[1], Term::real(0.10));
    }

    #[test]
    fn non_ground_fact_rejected() {
        assert!(matches!(
            parse_fact("faculty(X, 45)"),
            Err(DatalogError::NonGroundFact { .. })
        ));
    }

    #[test]
    fn negative_body_literal() {
        let q = parse_query("Q(N) <- person(X, N, A), A < 30, not faculty(X, N, A)").unwrap();
        assert!(matches!(&q.body[2], Literal::Neg(a) if a.pred.name() == "faculty"));
    }

    #[test]
    fn comments_and_whitespace() {
        let stmts = parse_program(
            "% the whole database\nfaculty(#1, \"a\").\n  % another\n\nfaculty(#2, \"b\").",
        )
        .unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn symbolic_lowercase_constant_in_args() {
        let f = parse_fact("likes(john, mary)").unwrap();
        assert_eq!(f.args[0], Term::str("john"));
    }

    #[test]
    fn operators_all_parse() {
        let q =
            parse_query("Q(X) <- p(X, A, B), A = 1, A != 2, A < B, A <= B, A > 0, A >= 0").unwrap();
        assert_eq!(q.body.len(), 7);
    }

    #[test]
    fn parse_error_positions() {
        let err = parse_query("Q(X) <- p(X,").unwrap_err();
        match err {
            DatalogError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected: {other}"),
        }
        assert!(parse_query("Q(X) <- ").is_err());
        assert!(parse_program("p(x)!").is_err());
    }

    #[test]
    fn roundtrip_display_parse() {
        let srcs = [
            "q(Name) <- person(X, Name, Age), Age < 30",
            "q(W) <- student(X, Name), asr(X, W), Name = \"james\"",
            "q() <- p(X), not r(X)",
        ];
        for s in srcs {
            let q = parse_query(s).unwrap();
            let q2 = parse_query(&q.to_string()).unwrap();
            assert_eq!(q, q2, "roundtrip failed for {s}");
        }
    }

    #[test]
    fn program_mix_classifies_statements() {
        let stmts = parse_program(
            "faculty(#1, \"smith\").\n\
             asr(X, W) <- takes(X, Y), has_ta(Y, W).\n\
             ic IC1: Salary > 40000 <- faculty(O, Salary).\n\
             Q(X) <- faculty(X, N).",
        )
        .unwrap();
        assert!(matches!(stmts[0], Statement::Fact(_)));
        assert!(matches!(stmts[1], Statement::Rule(_)));
        assert!(matches!(stmts[2], Statement::Constraint(_)));
        assert!(matches!(stmts[3], Statement::Query(_)));
    }

    #[test]
    fn query_name_lowercased_roundtrip() {
        let q = parse_query("MyQuery(X) <- p(X)").unwrap();
        assert_eq!(q.name, "myquery");
    }
}
