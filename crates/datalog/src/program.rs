//! Extensional databases, programs and stratification.

use crate::atom::{Atom, Literal, PredSym};
use crate::clause::Rule;
use crate::error::{DatalogError, Result};
use crate::term::Const;
use std::collections::{HashMap, HashSet};

/// A stored relation: a deduplicated bag of constant tuples.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    arity: Option<usize>,
    tuples: Vec<Vec<Const>>,
    set: HashSet<Vec<Const>>,
}

impl Relation {
    /// Create an empty relation with known arity.
    pub fn with_arity(arity: usize) -> Self {
        Relation {
            arity: Some(arity),
            ..Default::default()
        }
    }

    /// The relation's arity, if any tuple has been inserted or the arity
    /// was declared.
    pub fn arity(&self) -> Option<usize> {
        self.arity
    }

    /// Insert a tuple; returns `true` if it was new.
    pub fn insert(&mut self, tuple: Vec<Const>) -> Result<bool> {
        match self.arity {
            Some(a) if a != tuple.len() => {
                return Err(DatalogError::ArityMismatch {
                    predicate: "<relation>".into(),
                    expected: a,
                    found: tuple.len(),
                })
            }
            None => self.arity = Some(tuple.len()),
            _ => {}
        }
        if self.set.insert(tuple.clone()) {
            self.tuples.push(tuple);
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Whether the tuple is present.
    pub fn contains(&self, tuple: &[Const]) -> bool {
        self.set.contains(tuple)
    }

    /// All tuples, in insertion order.
    pub fn tuples(&self) -> &[Vec<Const>] {
        &self.tuples
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

/// A database of stored relations (the EDB, or a materialized EDB+IDB).
#[derive(Debug, Clone, Default)]
pub struct EdbDatabase {
    relations: HashMap<PredSym, Relation>,
}

impl EdbDatabase {
    /// Create an empty database.
    pub fn new() -> Self {
        EdbDatabase::default()
    }

    /// Insert a ground atom as a fact.
    pub fn insert_fact(&mut self, atom: &Atom) -> Result<bool> {
        if !atom.is_ground() {
            return Err(DatalogError::NonGroundFact {
                fact: atom.to_string(),
            });
        }
        let tuple: Vec<Const> = atom
            .args
            .iter()
            .map(|t| *t.as_const().expect("ground"))
            .collect();
        self.insert(atom.pred, tuple)
    }

    /// Insert a tuple into the named relation.
    pub fn insert(&mut self, pred: PredSym, tuple: Vec<Const>) -> Result<bool> {
        let pred_name = pred.name().to_string();
        let rel = self.relations.entry(pred).or_default();
        rel.insert(tuple).map_err(|e| match e {
            DatalogError::ArityMismatch {
                expected, found, ..
            } => DatalogError::ArityMismatch {
                predicate: pred_name,
                expected,
                found,
            },
            other => other,
        })
    }

    /// Declare an (empty) relation with a fixed arity.
    pub fn declare(&mut self, pred: PredSym, arity: usize) {
        self.relations
            .entry(pred)
            .or_insert_with(|| Relation::with_arity(arity));
    }

    /// Look up a relation.
    pub fn relation(&self, pred: &PredSym) -> Option<&Relation> {
        self.relations.get(pred)
    }

    /// Iterate over (predicate, relation) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&PredSym, &Relation)> {
        self.relations.iter()
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Merge all tuples of `other` into `self`.
    pub fn absorb(&mut self, other: &EdbDatabase) -> Result<()> {
        for (p, rel) in &other.relations {
            for t in rel.tuples() {
                self.insert(*p, t.clone())?;
            }
        }
        Ok(())
    }
}

/// A set of rules (views / IDB definitions).
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// The rules, in declaration order.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Create a program from rules.
    pub fn new(rules: Vec<Rule>) -> Self {
        Program { rules }
    }

    /// The set of intensional (rule-defined) predicates.
    pub fn idb_preds(&self) -> HashSet<PredSym> {
        self.rules.iter().map(|r| r.head.pred).collect()
    }

    /// Validate safety of every rule.
    pub fn validate(&self) -> Result<()> {
        for r in &self.rules {
            if !r.is_safe() {
                let positive: HashSet<_> = r
                    .body
                    .iter()
                    .filter(|l| l.is_positive())
                    .flat_map(|l| l.vars())
                    .collect();
                let bad = r
                    .vars()
                    .into_iter()
                    .find(|v| !positive.contains(v))
                    .map(|v| v.name().to_string())
                    .unwrap_or_default();
                return Err(DatalogError::UnsafeVariable {
                    clause: r.to_string(),
                    variable: bad,
                });
            }
        }
        Ok(())
    }

    /// Stratify the program: returns rule indices grouped into strata such
    /// that negation only refers to lower strata. Errors if the program
    /// has recursion through negation.
    pub fn stratify(&self) -> Result<Vec<Vec<usize>>> {
        let idb = self.idb_preds();
        // Compute per-predicate stratum numbers by fixpoint.
        let mut stratum: HashMap<PredSym, usize> = idb.iter().map(|p| (*p, 0)).collect();
        let max_iter = idb.len() * idb.len() + idb.len() + 2;
        for round in 0..=max_iter {
            let mut changed = false;
            for r in &self.rules {
                let head_s = stratum[&r.head.pred];
                let mut need = head_s;
                for l in &r.body {
                    match l {
                        Literal::Pos(a) => {
                            if let Some(&s) = stratum.get(&a.pred) {
                                need = need.max(s);
                            }
                        }
                        Literal::Neg(a) => {
                            if let Some(&s) = stratum.get(&a.pred) {
                                need = need.max(s + 1);
                            }
                        }
                        Literal::Cmp(_) => {}
                    }
                }
                if need > head_s {
                    stratum.insert(r.head.pred, need);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            if round == max_iter {
                // A stratum exceeding the predicate count proves a negative
                // cycle.
                let culprit = stratum
                    .iter()
                    .max_by_key(|(_, s)| **s)
                    .map(|(p, _)| p.name().to_string())
                    .unwrap_or_default();
                return Err(DatalogError::NotStratified { predicate: culprit });
            }
        }
        if stratum.values().any(|&s| s > idb.len()) {
            let culprit = stratum
                .iter()
                .max_by_key(|(_, s)| **s)
                .map(|(p, _)| p.name().to_string())
                .unwrap_or_default();
            return Err(DatalogError::NotStratified { predicate: culprit });
        }
        let max_s = stratum.values().copied().max().unwrap_or(0);
        let mut out = vec![Vec::new(); max_s + 1];
        for (i, r) in self.rules.iter().enumerate() {
            out[stratum[&r.head.pred]].push(i);
        }
        out.retain(|v| !v.is_empty());
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_fact, parse_rule};
    use crate::term::Term;

    #[test]
    fn relation_dedup_and_order() {
        let mut r = Relation::default();
        assert!(r.insert(vec![Const::Int(1)]).unwrap());
        assert!(!r.insert(vec![Const::Int(1)]).unwrap());
        assert!(r.insert(vec![Const::Int(2)]).unwrap());
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[Const::Int(1)]));
        assert_eq!(r.arity(), Some(1));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut db = EdbDatabase::new();
        db.insert(PredSym::new("p"), vec![Const::Int(1)]).unwrap();
        let err = db
            .insert(PredSym::new("p"), vec![Const::Int(1), Const::Int(2)])
            .unwrap_err();
        assert!(matches!(err, DatalogError::ArityMismatch { predicate, .. } if predicate == "p"));
    }

    #[test]
    fn insert_fact_requires_ground() {
        let mut db = EdbDatabase::new();
        let ok = parse_fact("p(1, \"a\")").unwrap();
        assert!(db.insert_fact(&ok).unwrap());
        let bad = Atom::new("p", vec![Term::var("X")]);
        assert!(db.insert_fact(&bad).is_err());
    }

    #[test]
    fn stratification_simple() {
        let p = Program::new(vec![
            parse_rule("a(X) <- e(X)").unwrap(),
            parse_rule("b(X) <- e(X), not a(X)").unwrap(),
        ]);
        let strata = p.stratify().unwrap();
        assert_eq!(strata.len(), 2);
        assert_eq!(strata[0], vec![0]);
        assert_eq!(strata[1], vec![1]);
    }

    #[test]
    fn stratification_rejects_negative_cycle() {
        let p = Program::new(vec![
            parse_rule("a(X) <- e(X), not b(X)").unwrap(),
            parse_rule("b(X) <- e(X), not a(X)").unwrap(),
        ]);
        assert!(matches!(
            p.stratify(),
            Err(DatalogError::NotStratified { .. })
        ));
    }

    #[test]
    fn stratification_allows_positive_recursion() {
        let p = Program::new(vec![
            parse_rule("tc(X, Y) <- e(X, Y)").unwrap(),
            parse_rule("tc(X, Z) <- tc(X, Y), e(Y, Z)").unwrap(),
        ]);
        let strata = p.stratify().unwrap();
        assert_eq!(strata.len(), 1);
        assert_eq!(strata[0].len(), 2);
    }

    #[test]
    fn validate_flags_unsafe_rule() {
        let p = Program::new(vec![parse_rule("v(Z) <- p(X)").unwrap()]);
        assert!(matches!(
            p.validate(),
            Err(DatalogError::UnsafeVariable { .. })
        ));
    }

    #[test]
    fn absorb_merges_databases() {
        let mut a = EdbDatabase::new();
        a.insert(PredSym::new("p"), vec![Const::Int(1)]).unwrap();
        let mut b = EdbDatabase::new();
        b.insert(PredSym::new("p"), vec![Const::Int(2)]).unwrap();
        b.insert(PredSym::new("q"), vec![Const::Int(3)]).unwrap();
        a.absorb(&b).unwrap();
        assert_eq!(a.total_tuples(), 3);
    }
}
