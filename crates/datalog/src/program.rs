//! Extensional databases, programs and stratification.

use crate::atom::{Atom, Literal, PredSym};
use crate::clause::Rule;
use crate::error::{DatalogError, Result};
use crate::term::Const;
use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::ops::Bound;

/// A secondary-index key with a *total* order over mixed-type columns.
///
/// `Const`'s derived `Ord` is discriminant-major (all `Int`s before all
/// `Real`s), which would break range probes over numeric columns holding a
/// mix of the two. `OrdKey` orders by type *rank* first — numerics (0) <
/// strings (1) < booleans (2) < OIDs (3) — and within a rank by the
/// numeric-aware [`Const::order`], so `Int(3)` and `Real(3.0)` coincide and
/// a range scan over `[lo, hi]` visits exactly the tuples [`crate::eval`]'s
/// comparison filter would keep.
#[derive(Clone, Copy, Debug)]
struct OrdKey(Const);

fn type_rank(c: &Const) -> u8 {
    match c {
        Const::Int(_) | Const::Real(_) => 0,
        Const::Str(_) => 1,
        Const::Bool(_) => 2,
        Const::Oid(_) => 3,
    }
}

impl Ord for OrdKey {
    fn cmp(&self, other: &Self) -> Ordering {
        type_rank(&self.0).cmp(&type_rank(&other.0)).then_with(|| {
            // Same rank: `order` is total within numerics/strings/booleans;
            // OID pairs fall back to the derived (structural) order.
            self.0
                .order(&other.0)
                .unwrap_or_else(|| self.0.cmp(&other.0))
        })
    }
}

impl PartialOrd for OrdKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for OrdKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for OrdKey {}

/// A hash secondary index over one column: key value → positions (into
/// [`Relation::tuples`]) of the tuples carrying it. Keys use `Const`'s
/// derived equality — the same equality the join verification loop applies
/// — so a probe returns exactly the tuples a scan-and-compare would keep.
#[derive(Debug, Clone, Default)]
struct HashIndex {
    postings: HashMap<Const, Vec<usize>>,
}

/// An ordered secondary index over one column, supporting range probes.
#[derive(Debug, Clone, Default)]
struct OrderedIndex {
    postings: BTreeMap<OrdKey, Vec<usize>>,
}

impl OrderedIndex {
    /// Whether every key in the index has the same type rank as `probe`
    /// (and that rank supports ordering) — the precondition for a range
    /// probe to be equivalent to scan-plus-filter, *including* the filter's
    /// incomparability errors.
    fn homogeneous_for(&self, probe: &Const) -> bool {
        let rank = type_rank(probe);
        if rank == 3 {
            return false; // OIDs have no order semantics in comparisons.
        }
        match (
            self.postings.keys().next(),
            self.postings.keys().next_back(),
        ) {
            (Some(min), Some(max)) => type_rank(&min.0) == rank && type_rank(&max.0) == rank,
            _ => true, // empty index: trivially homogeneous
        }
    }
}

/// One end of a range probe: the bounding constant and whether the bound
/// is inclusive.
pub type RangeBound = (Const, bool);

fn to_bound(b: Option<&RangeBound>) -> Bound<OrdKey> {
    match b {
        None => Bound::Unbounded,
        Some((c, true)) => Bound::Included(OrdKey(*c)),
        Some((c, false)) => Bound::Excluded(OrdKey(*c)),
    }
}

/// A stored relation: a deduplicated bag of constant tuples, plus any
/// declared secondary indexes (maintained incrementally by [`Relation::insert`]).
#[derive(Debug, Clone, Default)]
pub struct Relation {
    arity: Option<usize>,
    tuples: Vec<Vec<Const>>,
    set: HashSet<Vec<Const>>,
    hash_indexes: BTreeMap<usize, HashIndex>,
    ordered_indexes: BTreeMap<usize, OrderedIndex>,
}

impl Relation {
    /// Create an empty relation with known arity.
    pub fn with_arity(arity: usize) -> Self {
        Relation {
            arity: Some(arity),
            ..Default::default()
        }
    }

    /// The relation's arity, if any tuple has been inserted or the arity
    /// was declared.
    pub fn arity(&self) -> Option<usize> {
        self.arity
    }

    /// Insert a tuple; returns `true` if it was new.
    pub fn insert(&mut self, tuple: Vec<Const>) -> Result<bool> {
        match self.arity {
            Some(a) if a != tuple.len() => {
                return Err(DatalogError::ArityMismatch {
                    predicate: "<relation>".into(),
                    expected: a,
                    found: tuple.len(),
                })
            }
            None => self.arity = Some(tuple.len()),
            _ => {}
        }
        if self.set.insert(tuple.clone()) {
            let pos = self.tuples.len();
            for (&col, idx) in &mut self.hash_indexes {
                if let Some(c) = tuple.get(col) {
                    idx.postings.entry(*c).or_default().push(pos);
                }
            }
            for (&col, idx) in &mut self.ordered_indexes {
                if let Some(c) = tuple.get(col) {
                    idx.postings.entry(OrdKey(*c)).or_default().push(pos);
                }
            }
            self.tuples.push(tuple);
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Declare a hash secondary index on column `col`. Existing tuples are
    /// back-filled; later inserts maintain the index incrementally.
    pub fn declare_hash_index(&mut self, col: usize) {
        if self.hash_indexes.contains_key(&col) {
            return;
        }
        let mut idx = HashIndex::default();
        for (pos, t) in self.tuples.iter().enumerate() {
            if let Some(c) = t.get(col) {
                idx.postings.entry(*c).or_default().push(pos);
            }
        }
        self.hash_indexes.insert(col, idx);
    }

    /// Declare an ordered (range) secondary index on column `col`.
    /// Existing tuples are back-filled; later inserts maintain the index
    /// incrementally.
    pub fn declare_ordered_index(&mut self, col: usize) {
        if self.ordered_indexes.contains_key(&col) {
            return;
        }
        let mut idx = OrderedIndex::default();
        for (pos, t) in self.tuples.iter().enumerate() {
            if let Some(c) = t.get(col) {
                idx.postings.entry(OrdKey(*c)).or_default().push(pos);
            }
        }
        self.ordered_indexes.insert(col, idx);
    }

    /// Whether a hash index is declared on `col`.
    pub fn has_hash_index(&self, col: usize) -> bool {
        self.hash_indexes.contains_key(&col)
    }

    /// Whether an ordered index is declared on `col`.
    pub fn has_ordered_index(&self, col: usize) -> bool {
        self.ordered_indexes.contains_key(&col)
    }

    /// Columns with a declared hash index.
    pub fn hash_indexed_columns(&self) -> impl Iterator<Item = usize> + '_ {
        self.hash_indexes.keys().copied()
    }

    /// Equality probe against the hash index on `col`: tuple positions
    /// whose `col` equals `key`. `None` when no hash index is declared.
    pub fn hash_probe(&self, col: usize, key: &Const) -> Option<&[usize]> {
        self.hash_indexes
            .get(&col)
            .map(|idx| idx.postings.get(key).map_or(&[][..], Vec::as_slice))
    }

    /// Number of distinct keys in the index on `col` (hash preferred,
    /// ordered as fallback). `None` when the column has no index.
    pub fn index_distinct(&self, col: usize) -> Option<usize> {
        if let Some(idx) = self.hash_indexes.get(&col) {
            return Some(idx.postings.len());
        }
        self.ordered_indexes.get(&col).map(|i| i.postings.len())
    }

    /// Shared precondition + traversal for range probes. `None` means the
    /// probe is not answerable from an index (no index, or the column is
    /// not type-homogeneous with the probe constants); `Some` iterates the
    /// matching postings lists (possibly none, e.g. contradictory bounds).
    fn range_postings(
        &self,
        col: usize,
        lo: Option<&RangeBound>,
        hi: Option<&RangeBound>,
    ) -> Option<impl Iterator<Item = &Vec<usize>>> {
        let idx = self.ordered_indexes.get(&col)?;
        let probe = lo.or(hi).map(|(c, _)| c)?;
        if !idx.homogeneous_for(probe) {
            return None;
        }
        // An inverted or empty interval yields no tuples; `BTreeMap::range`
        // would panic on it, so detect it here.
        let empty = match (lo, hi) {
            (Some((l, li)), Some((h, hi_inc))) => {
                if type_rank(l) != type_rank(h) {
                    return None;
                }
                match OrdKey(*l).cmp(&OrdKey(*h)) {
                    Ordering::Greater => true,
                    Ordering::Equal => !(*li && *hi_inc),
                    Ordering::Less => false,
                }
            }
            _ => false,
        };
        let range = if empty {
            None
        } else {
            Some(idx.postings.range((to_bound(lo), to_bound(hi))))
        };
        Some(range.into_iter().flatten().map(|(_, v)| v))
    }

    /// Range probe against the ordered index on `col`: positions of tuples
    /// whose `col` lies within `[lo, hi]` (each bound optional, inclusive
    /// per its flag). Returns `None` — meaning "fall back to a scan" —
    /// when no ordered index is declared *or* the column holds values of a
    /// different type rank than the probe constants, so scan-and-filter
    /// error semantics (incomparable operands) are preserved.
    pub fn range_probe(
        &self,
        col: usize,
        lo: Option<&RangeBound>,
        hi: Option<&RangeBound>,
    ) -> Option<Vec<usize>> {
        let postings = self.range_postings(col, lo, hi)?;
        let mut out = Vec::new();
        for p in postings {
            out.extend_from_slice(p);
        }
        Some(out)
    }

    /// Number of tuples a [`Relation::range_probe`] with the same bounds
    /// would return, without materializing the positions.
    pub fn range_count(
        &self,
        col: usize,
        lo: Option<&RangeBound>,
        hi: Option<&RangeBound>,
    ) -> Option<usize> {
        Some(self.range_postings(col, lo, hi)?.map(Vec::len).sum())
    }

    /// Tuple at position `pos` (as returned by the probe methods).
    pub fn tuple_at(&self, pos: usize) -> &[Const] {
        &self.tuples[pos]
    }

    /// Whether the tuple is present.
    pub fn contains(&self, tuple: &[Const]) -> bool {
        self.set.contains(tuple)
    }

    /// All tuples, in insertion order.
    pub fn tuples(&self) -> &[Vec<Const>] {
        &self.tuples
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

/// A database of stored relations (the EDB, or a materialized EDB+IDB).
#[derive(Debug, Clone, Default)]
pub struct EdbDatabase {
    relations: HashMap<PredSym, Relation>,
}

impl EdbDatabase {
    /// Create an empty database.
    pub fn new() -> Self {
        EdbDatabase::default()
    }

    /// Insert a ground atom as a fact.
    pub fn insert_fact(&mut self, atom: &Atom) -> Result<bool> {
        if !atom.is_ground() {
            return Err(DatalogError::NonGroundFact {
                fact: atom.to_string(),
            });
        }
        let tuple: Vec<Const> = atom
            .args
            .iter()
            .map(|t| *t.as_const().expect("ground"))
            .collect();
        self.insert(atom.pred, tuple)
    }

    /// Insert a tuple into the named relation.
    pub fn insert(&mut self, pred: PredSym, tuple: Vec<Const>) -> Result<bool> {
        let pred_name = pred.name().to_string();
        let rel = self.relations.entry(pred).or_default();
        rel.insert(tuple).map_err(|e| match e {
            DatalogError::ArityMismatch {
                expected, found, ..
            } => DatalogError::ArityMismatch {
                predicate: pred_name,
                expected,
                found,
            },
            other => other,
        })
    }

    /// Declare an (empty) relation with a fixed arity.
    pub fn declare(&mut self, pred: PredSym, arity: usize) {
        self.relations
            .entry(pred)
            .or_insert_with(|| Relation::with_arity(arity));
    }

    /// Declare a hash secondary index on `pred`'s column `col` (creating
    /// the relation if absent). Existing tuples are back-filled; inserts
    /// maintain the index incrementally from then on.
    pub fn declare_hash_index(&mut self, pred: PredSym, col: usize) {
        self.relations
            .entry(pred)
            .or_default()
            .declare_hash_index(col);
    }

    /// Declare an ordered (range) secondary index on `pred`'s column
    /// `col` (creating the relation if absent).
    pub fn declare_ordered_index(&mut self, pred: PredSym, col: usize) {
        self.relations
            .entry(pred)
            .or_default()
            .declare_ordered_index(col);
    }

    /// Look up a relation.
    pub fn relation(&self, pred: &PredSym) -> Option<&Relation> {
        self.relations.get(pred)
    }

    /// Iterate over (predicate, relation) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&PredSym, &Relation)> {
        self.relations.iter()
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Merge all tuples of `other` into `self`.
    pub fn absorb(&mut self, other: &EdbDatabase) -> Result<()> {
        for (p, rel) in &other.relations {
            for t in rel.tuples() {
                self.insert(*p, t.clone())?;
            }
        }
        Ok(())
    }
}

/// A set of rules (views / IDB definitions).
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// The rules, in declaration order.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Create a program from rules.
    pub fn new(rules: Vec<Rule>) -> Self {
        Program { rules }
    }

    /// The set of intensional (rule-defined) predicates.
    pub fn idb_preds(&self) -> HashSet<PredSym> {
        self.rules.iter().map(|r| r.head.pred).collect()
    }

    /// Validate safety of every rule.
    pub fn validate(&self) -> Result<()> {
        for r in &self.rules {
            if !r.is_safe() {
                let positive: HashSet<_> = r
                    .body
                    .iter()
                    .filter(|l| l.is_positive())
                    .flat_map(|l| l.vars())
                    .collect();
                let bad = r
                    .vars()
                    .into_iter()
                    .find(|v| !positive.contains(v))
                    .map(|v| v.name().to_string())
                    .unwrap_or_default();
                return Err(DatalogError::UnsafeVariable {
                    clause: r.to_string(),
                    variable: bad,
                });
            }
        }
        Ok(())
    }

    /// Stratify the program: returns rule indices grouped into strata such
    /// that negation only refers to lower strata. Errors if the program
    /// has recursion through negation.
    pub fn stratify(&self) -> Result<Vec<Vec<usize>>> {
        let idb = self.idb_preds();
        // Compute per-predicate stratum numbers by fixpoint.
        let mut stratum: HashMap<PredSym, usize> = idb.iter().map(|p| (*p, 0)).collect();
        let max_iter = idb.len() * idb.len() + idb.len() + 2;
        for round in 0..=max_iter {
            let mut changed = false;
            for r in &self.rules {
                let head_s = stratum[&r.head.pred];
                let mut need = head_s;
                for l in &r.body {
                    match l {
                        Literal::Pos(a) => {
                            if let Some(&s) = stratum.get(&a.pred) {
                                need = need.max(s);
                            }
                        }
                        Literal::Neg(a) => {
                            if let Some(&s) = stratum.get(&a.pred) {
                                need = need.max(s + 1);
                            }
                        }
                        Literal::Cmp(_) => {}
                    }
                }
                if need > head_s {
                    stratum.insert(r.head.pred, need);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            if round == max_iter {
                // A stratum exceeding the predicate count proves a negative
                // cycle.
                let culprit = stratum
                    .iter()
                    .max_by_key(|(_, s)| **s)
                    .map(|(p, _)| p.name().to_string())
                    .unwrap_or_default();
                return Err(DatalogError::NotStratified { predicate: culprit });
            }
        }
        if stratum.values().any(|&s| s > idb.len()) {
            let culprit = stratum
                .iter()
                .max_by_key(|(_, s)| **s)
                .map(|(p, _)| p.name().to_string())
                .unwrap_or_default();
            return Err(DatalogError::NotStratified { predicate: culprit });
        }
        let max_s = stratum.values().copied().max().unwrap_or(0);
        let mut out = vec![Vec::new(); max_s + 1];
        for (i, r) in self.rules.iter().enumerate() {
            out[stratum[&r.head.pred]].push(i);
        }
        out.retain(|v| !v.is_empty());
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_fact, parse_rule};
    use crate::term::Term;

    #[test]
    fn relation_dedup_and_order() {
        let mut r = Relation::default();
        assert!(r.insert(vec![Const::Int(1)]).unwrap());
        assert!(!r.insert(vec![Const::Int(1)]).unwrap());
        assert!(r.insert(vec![Const::Int(2)]).unwrap());
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[Const::Int(1)]));
        assert_eq!(r.arity(), Some(1));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut db = EdbDatabase::new();
        db.insert(PredSym::new("p"), vec![Const::Int(1)]).unwrap();
        let err = db
            .insert(PredSym::new("p"), vec![Const::Int(1), Const::Int(2)])
            .unwrap_err();
        assert!(matches!(err, DatalogError::ArityMismatch { predicate, .. } if predicate == "p"));
    }

    #[test]
    fn insert_fact_requires_ground() {
        let mut db = EdbDatabase::new();
        let ok = parse_fact("p(1, \"a\")").unwrap();
        assert!(db.insert_fact(&ok).unwrap());
        let bad = Atom::new("p", vec![Term::var("X")]);
        assert!(db.insert_fact(&bad).is_err());
    }

    #[test]
    fn stratification_simple() {
        let p = Program::new(vec![
            parse_rule("a(X) <- e(X)").unwrap(),
            parse_rule("b(X) <- e(X), not a(X)").unwrap(),
        ]);
        let strata = p.stratify().unwrap();
        assert_eq!(strata.len(), 2);
        assert_eq!(strata[0], vec![0]);
        assert_eq!(strata[1], vec![1]);
    }

    #[test]
    fn stratification_rejects_negative_cycle() {
        let p = Program::new(vec![
            parse_rule("a(X) <- e(X), not b(X)").unwrap(),
            parse_rule("b(X) <- e(X), not a(X)").unwrap(),
        ]);
        assert!(matches!(
            p.stratify(),
            Err(DatalogError::NotStratified { .. })
        ));
    }

    #[test]
    fn stratification_allows_positive_recursion() {
        let p = Program::new(vec![
            parse_rule("tc(X, Y) <- e(X, Y)").unwrap(),
            parse_rule("tc(X, Z) <- tc(X, Y), e(Y, Z)").unwrap(),
        ]);
        let strata = p.stratify().unwrap();
        assert_eq!(strata.len(), 1);
        assert_eq!(strata[0].len(), 2);
    }

    #[test]
    fn validate_flags_unsafe_rule() {
        let p = Program::new(vec![parse_rule("v(Z) <- p(X)").unwrap()]);
        assert!(matches!(
            p.validate(),
            Err(DatalogError::UnsafeVariable { .. })
        ));
    }

    #[test]
    fn hash_index_backfills_and_maintains_incrementally() {
        let mut r = Relation::default();
        r.insert(vec![Const::Int(1), Const::Str("a".into())])
            .unwrap();
        r.insert(vec![Const::Int(2), Const::Str("b".into())])
            .unwrap();
        // Declared after the fact: back-fill covers existing tuples.
        r.declare_hash_index(1);
        assert_eq!(
            r.hash_probe(1, &Const::Str("a".into())),
            Some(&[0usize][..])
        );
        // Incremental maintenance on subsequent inserts.
        r.insert(vec![Const::Int(3), Const::Str("a".into())])
            .unwrap();
        assert_eq!(
            r.hash_probe(1, &Const::Str("a".into())),
            Some(&[0usize, 2][..])
        );
        assert_eq!(r.hash_probe(1, &Const::Str("zzz".into())), Some(&[][..]));
        assert_eq!(r.hash_probe(0, &Const::Int(1)), None, "no index on col 0");
        assert_eq!(r.index_distinct(1), Some(2));
    }

    #[test]
    fn ordered_index_range_probe_is_numeric_aware() {
        let mut r = Relation::default();
        r.declare_ordered_index(0);
        for v in [
            Const::Int(5),
            Const::Real(crate::term::R64::new(2.5)),
            Const::Int(10),
            Const::Real(crate::term::R64::new(7.0)),
        ] {
            r.insert(vec![v]).unwrap();
        }
        // 2.5 < x <= 7.0 → {5, 7.0}; Int/Real interleave numerically.
        let lo = (Const::Real(crate::term::R64::new(2.5)), false);
        let hi = (Const::Int(7), true);
        let mut hits = r.range_probe(0, Some(&lo), Some(&hi)).unwrap();
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 3]);
        assert_eq!(r.range_count(0, Some(&lo), Some(&hi)), Some(2));
        // Open-ended probe.
        assert_eq!(
            r.range_count(0, Some(&(Const::Int(6), true)), None),
            Some(2)
        );
        // Inverted interval: empty, not a panic.
        assert_eq!(
            r.range_count(
                0,
                Some(&(Const::Int(9), true)),
                Some(&(Const::Int(3), true))
            ),
            Some(0)
        );
    }

    #[test]
    fn range_probe_declines_on_mixed_type_columns() {
        let mut r = Relation::default();
        r.declare_ordered_index(0);
        r.insert(vec![Const::Int(1)]).unwrap();
        r.insert(vec![Const::Str("x".into())]).unwrap();
        // A scan would raise an incomparability error on the string row;
        // the probe must decline rather than silently skip it.
        assert_eq!(r.range_probe(0, Some(&(Const::Int(0), true)), None), None);
        // A type-homogeneous column accepts the probe.
        let mut ok = Relation::default();
        ok.declare_ordered_index(0);
        ok.insert(vec![Const::Str("a".into())]).unwrap();
        ok.insert(vec![Const::Str("c".into())]).unwrap();
        assert_eq!(
            ok.range_count(0, Some(&(Const::Str("b".into()), true)), None),
            Some(1)
        );
    }

    #[test]
    fn absorb_merges_databases() {
        let mut a = EdbDatabase::new();
        a.insert(PredSym::new("p"), vec![Const::Int(1)]).unwrap();
        let mut b = EdbDatabase::new();
        b.insert(PredSym::new("p"), vec![Const::Int(2)]).unwrap();
        b.insert(PredSym::new("q"), vec![Const::Int(3)]).unwrap();
        a.absorb(&b).unwrap();
        assert_eq!(a.total_tuples(), 3);
    }
}
