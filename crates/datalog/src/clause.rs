//! Clauses: rules, integrity constraints and queries.

use crate::atom::{Atom, CmpOp, Comparison, Literal, PredSym};
use crate::term::{Const, Term, Var, R64};
use std::collections::BTreeSet;
use std::fmt;

/// One token of a query's canonical form (see [`Query::canonical_form`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum CanonTok {
    Blank,
    V(usize),
    Pos(u32),
    Neg(u32),
    Op(CmpOp),
    CInt(i64),
    CReal(R64),
    CStr(u32),
    CBool(bool),
    COid(u64),
}

/// The canonical token sequence of a query: rename- and body-order-
/// invariant, and exactly the data [`Query::canonical_hash`] digests, so
/// equal forms always have equal hashes. Built by
/// [`Query::canonical_form`]; the Step-3 subsumption index compares these
/// to confirm duplicates exactly inside a contested hash bucket.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CanonicalForm {
    proj: Vec<CanonTok>,
    body: Vec<Vec<CanonTok>>,
}

impl CanonicalForm {
    /// The 64-bit digest of this form ([`Query::canonical_hash`]).
    pub fn hash64(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        self.proj.hash(&mut h);
        self.body.hash(&mut h);
        h.finish()
    }
}

/// A Datalog rule (or view definition) `head :- body`.
///
/// Access support relations (Section 5, Application 4) are represented as
/// rules defining a view predicate over a path of relationship predicates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// The head atom.
    pub head: Atom,
    /// The body literals (conjunction).
    pub body: Vec<Literal>,
}

impl Rule {
    /// Create a rule.
    pub fn new(head: Atom, body: Vec<Literal>) -> Self {
        Rule { head, body }
    }

    /// All variables of the rule (head and body), deduplicated and ordered.
    pub fn vars(&self) -> BTreeSet<&Var> {
        let mut out: BTreeSet<&Var> = self.head.vars().collect();
        for l in &self.body {
            out.extend(l.vars());
        }
        out
    }

    /// Check range-restriction safety: every head variable and every
    /// comparison variable must occur in some positive body literal; a
    /// variable of a negative literal must be bound too, unless it occurs
    /// *only* inside that one literal (it is then existential under the
    /// negation and evaluated as a partially-bound anti-join).
    pub fn is_safe(&self) -> bool {
        let positive: BTreeSet<&Var> = self
            .body
            .iter()
            .filter(|l| l.is_positive())
            .flat_map(|l| l.vars())
            .collect();
        // Occurrence counts across the whole clause, to recognize
        // negation-local existential variables.
        let mut occurrences: std::collections::HashMap<&Var, usize> =
            std::collections::HashMap::new();
        for v in self.head.vars() {
            *occurrences.entry(v).or_insert(0) += 1;
        }
        for l in &self.body {
            let mut per_lit: BTreeSet<&Var> = BTreeSet::new();
            per_lit.extend(l.vars());
            for v in per_lit {
                *occurrences.entry(v).or_insert(0) += 1;
            }
        }
        let needs: Vec<&Var> = self
            .head
            .vars()
            .chain(self.body.iter().flat_map(|l| {
                match l {
                    Literal::Neg(_) => l
                        .vars()
                        .into_iter()
                        .filter(|v| occurrences.get(v).copied().unwrap_or(0) > 1)
                        .collect::<Vec<_>>(),
                    Literal::Cmp(_) => l.vars(),
                    Literal::Pos(_) => Vec::new(),
                }
            }))
            .collect();
        // A variable equated to a constant by an `=` comparison counts as
        // bound.
        let mut bound = positive.clone();
        let mut changed = true;
        while changed {
            changed = false;
            for l in &self.body {
                if let Literal::Cmp(c) = l {
                    if c.op == crate::atom::CmpOp::Eq {
                        match (&c.lhs, &c.rhs) {
                            (Term::Var(v), t) | (t, Term::Var(v)) => {
                                let other_bound = match t {
                                    Term::Const(_) => true,
                                    Term::Var(w) => bound.contains(w),
                                };
                                if other_bound && bound.insert(v) {
                                    changed = true;
                                }
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
        needs.iter().all(|v| bound.contains(*v))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} <- ", self.head)?;
        write_body(f, &self.body)
    }
}

fn write_body(f: &mut fmt::Formatter<'_>, body: &[Literal]) -> fmt::Result {
    for (i, l) in body.iter().enumerate() {
        if i > 0 {
            f.write_str(", ")?;
        }
        write!(f, "{l}")?;
    }
    Ok(())
}

/// The head of an integrity constraint.
///
/// The paper's constraints (Section 4.2 and Section 5) take four shapes:
/// a denial (empty head), a positive database atom (subclass hierarchy,
/// inverse relationships, OID identification), a negative atom (derived
/// scope-reduction constraints such as IC6'), or an evaluable comparison
/// (range constraints like IC1, key/one-to-one equality constraints like
/// IC7).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstraintHead {
    /// Empty head: the body is inconsistent (a denial).
    None,
    /// A positive database atom implied by the body.
    Atom(Atom),
    /// A negated database atom implied by the body.
    NegAtom(Atom),
    /// An evaluable comparison implied by the body.
    Cmp(Comparison),
}

impl ConstraintHead {
    /// Variables occurring in the head.
    pub fn vars(&self) -> Vec<&Var> {
        match self {
            ConstraintHead::None => Vec::new(),
            ConstraintHead::Atom(a) | ConstraintHead::NegAtom(a) => a.vars().collect(),
            ConstraintHead::Cmp(c) => c.vars().collect(),
        }
    }
}

impl fmt::Display for ConstraintHead {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintHead::None => Ok(()),
            ConstraintHead::Atom(a) => a.fmt(f),
            ConstraintHead::NegAtom(a) => write!(f, "not {a}"),
            ConstraintHead::Cmp(c) => c.fmt(f),
        }
    }
}

/// An integrity constraint `Head <- Body`.
///
/// Variables appearing only in the head are existentially quantified
/// (footnote 1 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraint {
    /// Optional name (e.g. `IC7`), used in provenance reporting.
    pub name: Option<String>,
    /// The constraint head.
    pub head: ConstraintHead,
    /// The body literals.
    pub body: Vec<Literal>,
}

impl Constraint {
    /// Create an unnamed constraint.
    pub fn new(head: ConstraintHead, body: Vec<Literal>) -> Self {
        Constraint {
            name: None,
            head,
            body,
        }
    }

    /// Create a named constraint.
    pub fn named(name: impl Into<String>, head: ConstraintHead, body: Vec<Literal>) -> Self {
        Constraint {
            name: Some(name.into()),
            head,
            body,
        }
    }

    /// All variables of the constraint, deduplicated and ordered.
    pub fn vars(&self) -> BTreeSet<Var> {
        let mut out: BTreeSet<Var> = self.head.vars().into_iter().cloned().collect();
        for l in &self.body {
            out.extend(l.vars().into_iter().cloned());
        }
        out
    }

    /// Database predicates mentioned positively in the body.
    pub fn body_preds(&self) -> Vec<&PredSym> {
        self.body.iter().filter_map(Literal::pred).collect()
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(n) = &self.name {
            write!(f, "{n}: ")?;
        }
        match &self.head {
            ConstraintHead::None => f.write_str("<- ")?,
            h => write!(f, "{h} <- ")?,
        }
        write_body(f, &self.body)
    }
}

/// Where a lifted parameter constant sits in the original query body.
///
/// `lit` indexes into [`Query::body`]; `rhs` records which side of that
/// comparison held the constant, so [`Query::with_params`] can substitute
/// a new constant back without re-deriving the canonical form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamSlot {
    /// Index of the comparison literal in the query body.
    pub lit: usize,
    /// `true` when the constant is the right-hand operand.
    pub rhs: bool,
}

/// A parameter-normalized canonical fingerprint of a query.
///
/// Produced by [`Query::canonical_template`]: comparison constants that
/// face a variable (`Age < 30`) are lifted into numbered parameters, so
/// `Age < 30` and `Age < 40` share a `hash` while differing only in
/// `params`. A semantic-plan cache keys on `hash` and re-checks the
/// residue-applicability conditions against the bound `params`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalTemplate {
    /// Fingerprint of the query with lifted constants replaced by
    /// parameter numbers. Equal for queries identical up to lifted
    /// constants (and variable renaming; body reordering is absorbed
    /// up to duplicate shapes, as in [`Query::canonical_hash`]).
    pub hash: u64,
    /// The lifted constants, in parameter order.
    pub params: Vec<crate::term::Const>,
    /// Where each parameter lives in the original body (parallel to
    /// `params`).
    pub slots: Vec<ParamSlot>,
    /// Query variables in canonical first-occurrence order: two queries
    /// with equal `hash` correspond under `var_order[k] ↦ var_order[k]`.
    pub var_order: Vec<Var>,
}

/// A conjunctive query `q(Projection) <- Body`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// The name of the query predicate (`Q` in the paper; stored
    /// lower-cased by the parser).
    pub name: String,
    /// The projected terms.
    pub projection: Vec<Term>,
    /// The body literals.
    pub body: Vec<Literal>,
}

impl Query {
    /// Create a query.
    pub fn new(name: impl Into<String>, projection: Vec<Term>, body: Vec<Literal>) -> Self {
        Query {
            name: name.into(),
            projection,
            body,
        }
    }

    /// All variables of the query, deduplicated and ordered.
    pub fn vars(&self) -> BTreeSet<Var> {
        let mut out: BTreeSet<Var> = self
            .projection
            .iter()
            .filter_map(Term::as_var)
            .cloned()
            .collect();
        for l in &self.body {
            out.extend(l.vars().into_iter().cloned());
        }
        out
    }

    /// The positive database atoms of the body, in order.
    pub fn positive_atoms(&self) -> impl Iterator<Item = &Atom> {
        self.body.iter().filter_map(|l| match l {
            Literal::Pos(a) => Some(a),
            _ => None,
        })
    }

    /// Whether the query body contains the given literal.
    pub fn contains(&self, lit: &Literal) -> bool {
        self.body.iter().any(|l| match (l, lit) {
            (Literal::Cmp(a), Literal::Cmp(b)) => a.canonical() == b.canonical(),
            _ => l == lit,
        })
    }

    /// Safety check, mirroring [`Rule::is_safe`] with the projection as the
    /// head.
    pub fn is_safe(&self) -> bool {
        let head = Atom::new(self.name.as_str(), self.projection.clone());
        Rule::new(head, self.body.clone()).is_safe()
    }

    /// A canonical string for duplicate detection across equivalent
    /// queries: body literals are first sorted by a rename-independent
    /// shape, then variables are renamed by first occurrence, then the
    /// renamed literals are sorted again. Invariant under variable
    /// renaming and body reordering (up to duplicate shapes).
    pub fn canonical_key(&self) -> String {
        use std::collections::HashMap;
        // Shape: literal text with variables blanked.
        let shape = |l: &Literal| -> String {
            let blank = |t: &Term| match t {
                Term::Var(_) => "_".to_string(),
                Term::Const(c) => c.to_string(),
            };
            match l {
                Literal::Pos(a) => format!(
                    "{}({})",
                    a.pred,
                    a.args.iter().map(&blank).collect::<Vec<_>>().join(",")
                ),
                Literal::Neg(a) => format!(
                    "!{}({})",
                    a.pred,
                    a.args.iter().map(&blank).collect::<Vec<_>>().join(",")
                ),
                Literal::Cmp(c) => {
                    let c = c.canonical();
                    format!("{}{}{}", blank(&c.lhs), c.op, blank(&c.rhs))
                }
            }
        };
        let mut ordered: Vec<&Literal> = self.body.iter().collect();
        ordered.sort_by_key(|l| shape(l));
        let mut map: HashMap<String, String> = HashMap::new();
        let mut next = 0usize;
        let rename = |v: &Var, map: &mut HashMap<String, String>, next: &mut usize| {
            map.entry(v.name().to_string())
                .or_insert_with(|| {
                    let s = format!("V{next}");
                    *next += 1;
                    s
                })
                .clone()
        };
        let rt = |t: &Term, map: &mut HashMap<String, String>, next: &mut usize| match t {
            Term::Var(v) => rename(v, map, next),
            Term::Const(c) => c.to_string(),
        };
        let mut parts: Vec<String> = Vec::new();
        for t in &self.projection {
            parts.push(rt(t, &mut map, &mut next));
        }
        let mut body: Vec<String> = Vec::new();
        for l in ordered {
            let s = match l {
                Literal::Pos(a) => {
                    let args: Vec<String> =
                        a.args.iter().map(|t| rt(t, &mut map, &mut next)).collect();
                    format!("{}({})", a.pred, args.join(","))
                }
                Literal::Neg(a) => {
                    let args: Vec<String> =
                        a.args.iter().map(|t| rt(t, &mut map, &mut next)).collect();
                    format!("!{}({})", a.pred, args.join(","))
                }
                Literal::Cmp(c) => {
                    let c = c.canonical();
                    format!(
                        "{}{}{}",
                        rt(&c.lhs, &mut map, &mut next),
                        c.op,
                        rt(&c.rhs, &mut map, &mut next)
                    )
                }
            };
            body.push(s);
        }
        body.sort();
        format!("({})<-{}", parts.join(","), body.join("&"))
    }

    /// A structural fingerprint of the query's canonical token form
    /// ([`Query::canonical_form`]). Alpha-equivalent queries (equal up
    /// to variable renaming and body reordering) hash identically;
    /// distinct queries collide with ~2⁻⁶⁴ probability. The Step-3
    /// search dedups on this.
    pub fn canonical_hash(&self) -> u64 {
        self.canonical_form().hash64()
    }

    /// The exact canonical token sequence that [`Query::canonical_hash`]
    /// digests: body literals are sorted by a rename-independent shape,
    /// variables are renamed by first occurrence, and the renamed
    /// literals are sorted again.
    ///
    /// Note this is *not* the same tie-break order as
    /// [`Query::canonical_key`]: the key sorts shapes as strings (where
    /// `"_<616"` orders before `"c2(…)"`, so ambiguous duplicate-shape
    /// comparisons drive the variable renaming), while the token form
    /// sorts atoms before comparisons, letting the atoms pin the
    /// renaming so duplicate-shape comparison permutations canonicalize
    /// identically. Exact-equality duplicate detection must therefore
    /// compare canonical forms, not canonical keys, to agree with the
    /// fingerprint's equivalence.
    pub fn canonical_form(&self) -> CanonicalForm {
        use std::collections::HashMap;

        let const_tok = |c: &Const| match c {
            Const::Int(v) => CanonTok::CInt(*v),
            Const::Real(r) => CanonTok::CReal(*r),
            Const::Str(s) => CanonTok::CStr(s.id()),
            Const::Bool(b) => CanonTok::CBool(*b),
            Const::Oid(o) => CanonTok::COid(*o),
        };
        let blank = |t: &Term| match t {
            Term::Var(_) => CanonTok::Blank,
            Term::Const(c) => const_tok(c),
        };
        let shape = |l: &Literal| -> Vec<CanonTok> {
            match l {
                Literal::Pos(a) => {
                    let mut v = vec![CanonTok::Pos(a.pred.0.id())];
                    v.extend(a.args.iter().map(blank));
                    v
                }
                Literal::Neg(a) => {
                    let mut v = vec![CanonTok::Neg(a.pred.0.id())];
                    v.extend(a.args.iter().map(blank));
                    v
                }
                Literal::Cmp(c) => {
                    let c = c.canonical();
                    vec![CanonTok::Op(c.op), blank(&c.lhs), blank(&c.rhs)]
                }
            }
        };
        let mut ordered: Vec<&Literal> = self.body.iter().collect();
        ordered.sort_by_cached_key(|l| shape(l));
        let mut map: HashMap<Var, usize> = HashMap::new();
        let mut rt = |t: &Term| -> CanonTok {
            match t {
                Term::Var(v) => {
                    let n = map.len();
                    CanonTok::V(*map.entry(*v).or_insert(n))
                }
                Term::Const(c) => const_tok(c),
            }
        };
        let proj: Vec<CanonTok> = self.projection.iter().map(&mut rt).collect();
        let mut body: Vec<Vec<CanonTok>> = Vec::with_capacity(ordered.len());
        for l in ordered {
            body.push(match l {
                Literal::Pos(a) => {
                    let mut v = vec![CanonTok::Pos(a.pred.0.id())];
                    v.extend(a.args.iter().map(&mut rt));
                    v
                }
                Literal::Neg(a) => {
                    let mut v = vec![CanonTok::Neg(a.pred.0.id())];
                    v.extend(a.args.iter().map(&mut rt));
                    v
                }
                Literal::Cmp(c) => {
                    let c = c.canonical();
                    vec![CanonTok::Op(c.op), rt(&c.lhs), rt(&c.rhs)]
                }
            });
        }
        body.sort();
        CanonicalForm { proj, body }
    }

    /// The parameter-normalized variant of [`Query::canonical_hash`]:
    /// every comparison between a variable and a constant contributes a
    /// numbered parameter token instead of the constant itself, oriented
    /// variable-left so the constant's value cannot change the literal's
    /// canonical orientation. Ground comparisons, variable–variable
    /// comparisons, and constants inside database atoms are *not* lifted
    /// — they are part of the template shape.
    ///
    /// Two queries with equal template hashes correspond literal-for-
    /// literal under the variable map `var_order[k] ↦ var_order[k]` and
    /// the parameter map `params[i] ↦ params[i]`.
    pub fn canonical_template(&self) -> CanonicalTemplate {
        use crate::atom::CmpOp;
        use crate::term::{Const, R64};
        use std::collections::hash_map::DefaultHasher;
        use std::collections::HashMap;
        use std::hash::{Hash, Hasher};

        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        enum Tok {
            Blank,
            // A lifted constant, before (ParamBlank) and after (Param)
            // parameter numbers are assigned.
            ParamBlank,
            Param(usize),
            V(usize),
            Pos(u32),
            Neg(u32),
            Op(CmpOp),
            CInt(i64),
            CReal(R64),
            CStr(u32),
            CBool(bool),
            COid(u64),
        }
        let const_tok = |c: &Const| match c {
            Const::Int(v) => Tok::CInt(*v),
            Const::Real(r) => Tok::CReal(*r),
            Const::Str(s) => Tok::CStr(s.id()),
            Const::Bool(b) => Tok::CBool(*b),
            Const::Oid(o) => Tok::COid(*o),
        };
        // A comparison is liftable when exactly one side is a variable:
        // (var, const, var-left op, const-was-rhs).
        let liftable = |c: &Comparison| -> Option<(Var, Const, CmpOp, bool)> {
            match (&c.lhs, &c.rhs) {
                (Term::Var(v), Term::Const(k)) => Some((*v, *k, c.op, true)),
                (Term::Const(k), Term::Var(v)) => Some((*v, *k, c.op.flip(), false)),
                _ => None,
            }
        };
        let blank = |t: &Term| match t {
            Term::Var(_) => Tok::Blank,
            Term::Const(c) => const_tok(c),
        };
        let shape = |l: &Literal| -> Vec<Tok> {
            match l {
                Literal::Pos(a) => {
                    let mut v = vec![Tok::Pos(a.pred.0.id())];
                    v.extend(a.args.iter().map(blank));
                    v
                }
                Literal::Neg(a) => {
                    let mut v = vec![Tok::Neg(a.pred.0.id())];
                    v.extend(a.args.iter().map(blank));
                    v
                }
                Literal::Cmp(c) => match liftable(c) {
                    Some((_, _, op, _)) => vec![Tok::Op(op), Tok::Blank, Tok::ParamBlank],
                    None => {
                        let c = c.canonical();
                        vec![Tok::Op(c.op), blank(&c.lhs), blank(&c.rhs)]
                    }
                },
            }
        };
        // Sort body *indices* so parameter slots can point back into the
        // original body.
        let mut ordered: Vec<usize> = (0..self.body.len()).collect();
        ordered.sort_by_cached_key(|&i| shape(&self.body[i]));
        let mut map: HashMap<Var, usize> = HashMap::new();
        let rt = |t: &Term, map: &mut HashMap<Var, usize>| -> Tok {
            match t {
                Term::Var(v) => {
                    let n = map.len();
                    Tok::V(*map.entry(*v).or_insert(n))
                }
                Term::Const(c) => const_tok(c),
            }
        };
        let proj: Vec<Tok> = self.projection.iter().map(|t| rt(t, &mut map)).collect();
        let mut params: Vec<Const> = Vec::new();
        let mut slots: Vec<ParamSlot> = Vec::new();
        let mut body: Vec<Vec<Tok>> = Vec::with_capacity(ordered.len());
        for i in ordered {
            body.push(match &self.body[i] {
                Literal::Pos(a) => {
                    let mut v = vec![Tok::Pos(a.pred.0.id())];
                    v.extend(a.args.iter().map(|t| rt(t, &mut map)));
                    v
                }
                Literal::Neg(a) => {
                    let mut v = vec![Tok::Neg(a.pred.0.id())];
                    v.extend(a.args.iter().map(|t| rt(t, &mut map)));
                    v
                }
                Literal::Cmp(c) => match liftable(c) {
                    Some((v, k, op, rhs)) => {
                        let idx = params.len();
                        params.push(k);
                        slots.push(ParamSlot { lit: i, rhs });
                        vec![Tok::Op(op), rt(&Term::Var(v), &mut map), Tok::Param(idx)]
                    }
                    None => {
                        let c = c.canonical();
                        vec![Tok::Op(c.op), rt(&c.lhs, &mut map), rt(&c.rhs, &mut map)]
                    }
                },
            });
        }
        body.sort();
        let mut h = DefaultHasher::new();
        proj.hash(&mut h);
        body.hash(&mut h);
        let mut var_order: Vec<Var> = self.vars().iter().copied().collect();
        // `vars()` is alphabetical; reorder by canonical number. Every
        // query variable is in `map` because projection and body were
        // both walked above.
        var_order.sort_by_key(|v| map.get(v).copied().unwrap_or(usize::MAX));
        CanonicalTemplate {
            hash: h.finish(),
            params,
            slots,
            var_order,
        }
    }

    /// Substitute constants back into the parameter slots of this query,
    /// producing the member of the template family bound to `params`.
    /// Slots and params must be parallel (as produced by
    /// [`Query::canonical_template`]); excess entries on either side are
    /// ignored.
    pub fn with_params(&self, slots: &[ParamSlot], params: &[crate::term::Const]) -> Query {
        let mut q = self.clone();
        for (slot, k) in slots.iter().zip(params) {
            if let Some(Literal::Cmp(c)) = q.body.get_mut(slot.lit) {
                if slot.rhs {
                    c.rhs = Term::Const(*k);
                } else {
                    c.lhs = Term::Const(*k);
                }
            }
        }
        q
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, t) in self.projection.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            t.fmt(f)?;
        }
        f.write_str(") <- ")?;
        write_body(f, &self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::CmpOp;

    fn sample_query() -> Query {
        Query::new(
            "q",
            vec![Term::var("Name")],
            vec![
                Literal::pos(
                    "person",
                    vec![Term::var("X"), Term::var("Name"), Term::var("Age")],
                ),
                Literal::cmp(Term::var("Age"), CmpOp::Lt, Term::int(30)),
            ],
        )
    }

    #[test]
    fn query_display_matches_paper_style() {
        assert_eq!(
            sample_query().to_string(),
            "q(Name) <- person(X, Name, Age), Age < 30"
        );
    }

    #[test]
    fn safety_detects_unbound_head_var() {
        let q = Query::new(
            "q",
            vec![Term::var("Z")],
            vec![Literal::pos("p", vec![Term::var("X")])],
        );
        assert!(!q.is_safe());
        assert!(sample_query().is_safe());
    }

    #[test]
    fn safety_accepts_equality_grounding() {
        // Z is bound transitively through equalities to a constant.
        let q = Query::new(
            "q",
            vec![Term::var("Z")],
            vec![
                Literal::pos("p", vec![Term::var("X")]),
                Literal::cmp(Term::var("Y"), CmpOp::Eq, Term::int(3)),
                Literal::cmp(Term::var("Z"), CmpOp::Eq, Term::var("Y")),
            ],
        );
        assert!(q.is_safe());
    }

    #[test]
    fn negation_safety_rules() {
        // A negation-local variable is existential under the negation and
        // allowed (partially-bound anti-join).
        let q = Query::new(
            "q",
            vec![],
            vec![
                Literal::pos("p", vec![Term::var("X")]),
                Literal::neg("r", vec![Term::var("Y")]),
            ],
        );
        assert!(q.is_safe());
        let q2 = Query::new(
            "q",
            vec![],
            vec![
                Literal::pos("p", vec![Term::var("X")]),
                Literal::neg("r", vec![Term::var("X")]),
            ],
        );
        assert!(q2.is_safe());
        // But a variable shared between a negative literal and the
        // projection (and nowhere positive) is unsafe.
        let q3 = Query::new(
            "q",
            vec![Term::var("Y")],
            vec![
                Literal::pos("p", vec![Term::var("X")]),
                Literal::neg("r", vec![Term::var("Y")]),
            ],
        );
        assert!(!q3.is_safe());
        // And a variable shared between two negative literals only is
        // unsafe as well.
        let q4 = Query::new(
            "q",
            vec![],
            vec![
                Literal::pos("p", vec![Term::var("X")]),
                Literal::neg("r", vec![Term::var("Y")]),
                Literal::neg("s", vec![Term::var("Y")]),
            ],
        );
        assert!(!q4.is_safe());
    }

    #[test]
    fn canonical_key_is_rename_invariant() {
        let q1 = sample_query();
        let q2 = Query::new(
            "q",
            vec![Term::var("N")],
            vec![
                Literal::pos(
                    "person",
                    vec![Term::var("A"), Term::var("N"), Term::var("G")],
                ),
                Literal::cmp(Term::var("G"), CmpOp::Lt, Term::int(30)),
            ],
        );
        assert_eq!(q1.canonical_key(), q2.canonical_key());
    }

    #[test]
    fn canonical_key_is_order_invariant_for_cmp_orientation() {
        let q1 = Query::new(
            "q",
            vec![],
            vec![
                Literal::pos("p", vec![Term::var("X"), Term::var("Y")]),
                Literal::cmp(Term::var("X"), CmpOp::Eq, Term::var("Y")),
            ],
        );
        let q2 = Query::new(
            "q",
            vec![],
            vec![
                Literal::pos("p", vec![Term::var("X"), Term::var("Y")]),
                Literal::cmp(Term::var("Y"), CmpOp::Eq, Term::var("X")),
            ],
        );
        assert_eq!(q1.canonical_key(), q2.canonical_key());
    }

    #[test]
    fn canonical_hash_agrees_with_key_on_equivalents() {
        let q1 = sample_query();
        // Renamed variables.
        let q2 = Query::new(
            "q",
            vec![Term::var("N")],
            vec![
                Literal::pos(
                    "person",
                    vec![Term::var("A"), Term::var("N"), Term::var("G")],
                ),
                Literal::cmp(Term::var("G"), CmpOp::Lt, Term::int(30)),
            ],
        );
        assert_eq!(q1.canonical_key(), q2.canonical_key());
        assert_eq!(q1.canonical_hash(), q2.canonical_hash());
        // Reordered body + flipped comparison orientation.
        let q3 = Query::new(
            "q",
            vec![Term::var("Name")],
            vec![
                Literal::cmp(Term::int(30), CmpOp::Gt, Term::var("Age")),
                Literal::pos(
                    "person",
                    vec![Term::var("X"), Term::var("Name"), Term::var("Age")],
                ),
            ],
        );
        assert_eq!(q1.canonical_key(), q3.canonical_key());
        assert_eq!(q1.canonical_hash(), q3.canonical_hash());
    }

    #[test]
    fn canonical_hash_separates_distinct_queries() {
        let q1 = sample_query();
        let q2 = Query::new(
            "q",
            vec![Term::var("Name")],
            vec![
                Literal::pos(
                    "person",
                    vec![Term::var("X"), Term::var("Name"), Term::var("Age")],
                ),
                Literal::cmp(Term::var("Age"), CmpOp::Lt, Term::int(31)),
            ],
        );
        assert_ne!(q1.canonical_hash(), q2.canonical_hash());
        // Negation is distinguished from a positive literal.
        let q3 = Query::new(
            "q",
            vec![],
            vec![
                Literal::pos("p", vec![Term::var("X")]),
                Literal::neg("r", vec![Term::var("X")]),
            ],
        );
        let q4 = Query::new(
            "q",
            vec![],
            vec![
                Literal::pos("p", vec![Term::var("X")]),
                Literal::pos("r", vec![Term::var("X")]),
            ],
        );
        assert_ne!(q3.canonical_hash(), q4.canonical_hash());
    }

    #[test]
    fn constraint_display() {
        let ic = Constraint::named(
            "IC1",
            ConstraintHead::Cmp(Comparison::new(
                Term::var("Salary"),
                CmpOp::Gt,
                Term::int(40000),
            )),
            vec![Literal::pos(
                "faculty",
                vec![Term::var("OID"), Term::var("Salary")],
            )],
        );
        assert_eq!(
            ic.to_string(),
            "IC1: Salary > 40000 <- faculty(OID, Salary)"
        );
    }

    #[test]
    fn denial_display() {
        let ic = Constraint::new(
            ConstraintHead::None,
            vec![Literal::pos("p", vec![Term::var("X")])],
        );
        assert_eq!(ic.to_string(), "<- p(X)");
    }

    #[test]
    fn rule_safety() {
        let r = Rule::new(
            Atom::new("asr", vec![Term::var("X"), Term::var("W")]),
            vec![
                Literal::pos("takes", vec![Term::var("X"), Term::var("Y")]),
                Literal::pos("has_ta", vec![Term::var("Y"), Term::var("W")]),
            ],
        );
        assert!(r.is_safe());
        let bad = Rule::new(
            Atom::new("v", vec![Term::var("Z")]),
            vec![Literal::pos("p", vec![Term::var("X")])],
        );
        assert!(!bad.is_safe());
    }

    #[test]
    fn template_lifts_comparison_constants() {
        use crate::term::Const;
        let q30 = sample_query();
        let q40 = Query::new(
            "q",
            vec![Term::var("Name")],
            vec![
                Literal::pos(
                    "person",
                    vec![Term::var("X"), Term::var("Name"), Term::var("Age")],
                ),
                Literal::cmp(Term::var("Age"), CmpOp::Lt, Term::int(40)),
            ],
        );
        assert_ne!(q30.canonical_hash(), q40.canonical_hash());
        let t30 = q30.canonical_template();
        let t40 = q40.canonical_template();
        assert_eq!(t30.hash, t40.hash);
        assert_eq!(t30.params, vec![Const::Int(30)]);
        assert_eq!(t40.params, vec![Const::Int(40)]);
        assert_eq!(t30.slots, t40.slots);
    }

    #[test]
    fn template_is_orientation_invariant() {
        // `30 > Age` and `Age < 30` are the same template member; the
        // flipped orientation must not change hash or lifted constant.
        let q = sample_query();
        let flipped = Query::new(
            "q",
            vec![Term::var("Name")],
            vec![
                Literal::pos(
                    "person",
                    vec![Term::var("X"), Term::var("Name"), Term::var("Age")],
                ),
                Literal::cmp(Term::int(30), CmpOp::Gt, Term::var("Age")),
            ],
        );
        let t1 = q.canonical_template();
        let t2 = flipped.canonical_template();
        assert_eq!(t1.hash, t2.hash);
        assert_eq!(t1.params, t2.params);
        // The slot remembers which side the constant was actually on.
        assert!(t1.slots[0].rhs);
        assert!(!t2.slots[0].rhs);
    }

    #[test]
    fn template_keeps_ground_and_var_var_comparisons() {
        // A ground comparison is part of the shape, not a parameter.
        let g1 = Query::new(
            "q",
            vec![],
            vec![
                Literal::pos("p", vec![Term::var("X")]),
                Literal::cmp(Term::int(1), CmpOp::Eq, Term::int(2)),
            ],
        );
        let g2 = Query::new(
            "q",
            vec![],
            vec![
                Literal::pos("p", vec![Term::var("X")]),
                Literal::cmp(Term::int(1), CmpOp::Eq, Term::int(3)),
            ],
        );
        assert_ne!(g1.canonical_template().hash, g2.canonical_template().hash);
        assert!(g1.canonical_template().params.is_empty());
        // A var-var comparison is likewise not lifted.
        let vv = Query::new(
            "q",
            vec![],
            vec![
                Literal::pos("p", vec![Term::var("X"), Term::var("Y")]),
                Literal::cmp(Term::var("X"), CmpOp::Lt, Term::var("Y")),
            ],
        );
        assert!(vv.canonical_template().params.is_empty());
    }

    #[test]
    fn template_distinguishes_atom_constants() {
        // Constants inside database atoms are not parameters: different
        // atom constants are different templates.
        let a1 = Query::new(
            "q",
            vec![],
            vec![Literal::pos("p", vec![Term::var("X"), Term::int(1)])],
        );
        let a2 = Query::new(
            "q",
            vec![],
            vec![Literal::pos("p", vec![Term::var("X"), Term::int(2)])],
        );
        assert_ne!(a1.canonical_template().hash, a2.canonical_template().hash);
    }

    #[test]
    fn with_params_round_trips() {
        use crate::term::Const;
        let q = sample_query();
        let t = q.canonical_template();
        // Substituting a template's own params back is the identity.
        assert_eq!(q.with_params(&t.slots, &t.params), q);
        // Substituting fresh constants reproduces the sibling query's
        // canonical hash.
        let q40 = q.with_params(&t.slots, &[Const::Int(40)]);
        let expected = Query::new(
            "q",
            vec![Term::var("Name")],
            vec![
                Literal::pos(
                    "person",
                    vec![Term::var("X"), Term::var("Name"), Term::var("Age")],
                ),
                Literal::cmp(Term::var("Age"), CmpOp::Lt, Term::int(40)),
            ],
        );
        assert_eq!(q40.canonical_hash(), expected.canonical_hash());
        assert_eq!(q40.canonical_template().hash, t.hash);
    }

    #[test]
    fn template_var_order_aligns_equal_hashes() {
        // Template-equal queries written with different variable names
        // correspond under var_order position.
        let a = sample_query();
        let b = Query::new(
            "q",
            vec![Term::var("N")],
            vec![
                Literal::pos(
                    "person",
                    vec![Term::var("P"), Term::var("N"), Term::var("G")],
                ),
                Literal::cmp(Term::var("G"), CmpOp::Lt, Term::int(99)),
            ],
        );
        let ta = a.canonical_template();
        let tb = b.canonical_template();
        assert_eq!(ta.hash, tb.hash);
        assert_eq!(ta.var_order.len(), tb.var_order.len());
        // Renaming a's query along var_order → var_order and rebinding
        // params yields b's canonical hash.
        let renamed = Query {
            name: a.name.clone(),
            projection: a
                .projection
                .iter()
                .map(|t| remap(t, &ta.var_order, &tb.var_order))
                .collect(),
            body: a
                .body
                .iter()
                .map(|l| remap_lit(l, &ta.var_order, &tb.var_order))
                .collect(),
        };
        let renamed = renamed.with_params(&renamed.canonical_template().slots, &tb.params);
        assert_eq!(renamed.canonical_hash(), b.canonical_hash());
    }

    fn remap(t: &Term, from: &[Var], to: &[Var]) -> Term {
        match t {
            Term::Var(v) => {
                let i = from.iter().position(|w| w == v).expect("var in order");
                Term::Var(to[i])
            }
            c => *c,
        }
    }

    fn remap_lit(l: &Literal, from: &[Var], to: &[Var]) -> Literal {
        match l {
            Literal::Pos(a) => Literal::Pos(Atom::new(
                a.pred,
                a.args.iter().map(|t| remap(t, from, to)).collect(),
            )),
            Literal::Neg(a) => Literal::Neg(Atom::new(
                a.pred,
                a.args.iter().map(|t| remap(t, from, to)).collect(),
            )),
            Literal::Cmp(c) => Literal::Cmp(Comparison::new(
                remap(&c.lhs, from, to),
                c.op,
                remap(&c.rhs, from, to),
            )),
        }
    }

    #[test]
    fn query_contains_uses_canonical_cmp() {
        let q = sample_query();
        assert!(q.contains(&Literal::cmp(Term::var("Age"), CmpOp::Lt, Term::int(30))));
        assert!(q.contains(&Literal::cmp(Term::int(30), CmpOp::Gt, Term::var("Age"))));
        assert!(!q.contains(&Literal::cmp(Term::var("Age"), CmpOp::Gt, Term::int(30))));
    }
}
