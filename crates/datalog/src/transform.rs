//! Query-time application of residues: Step 3 of the paper's pipeline.
//!
//! Given a query and the compiled [`crate::residue::ResidueSet`],
//! this module enumerates the *atomic semantic transformations* justified
//! by the integrity constraints:
//!
//! * **Contradiction** — a denial residue matches, or a residue head
//!   conflicts with the query's comparison constraints (Example 1,
//!   Application 1);
//! * **AddCmp** — a comparison head is attached (restriction introduction;
//!   also the key-equality `Z = W` of Application 3);
//! * **AddAtom** — an atom head is attached (join introduction: IC9 and
//!   the forward direction of an access-support-relation definition,
//!   Application 4);
//! * **AddNegAtom** — a negated-atom head is attached (access scope
//!   reduction via IC6′, Application 2);
//! * **RemoveCmp** — a comparison implied by the rest of the query is
//!   dropped (the `Name1 = Name2` of Application 3);
//! * **RemoveAtoms** — a group of positive atoms implied by the rest of
//!   the query (validated by the bounded chase) is dropped (join
//!   elimination; the ASR fold of Application 4).

use crate::atom::{Atom, Comparison, Literal, PredSym};
use crate::chase::{group_removal_sound, ChaseBudget, ChaseContext};
use crate::clause::{ConstraintHead, Query, Rule};
use crate::fxhash::{FxHashMap, FxHashSet, FxHasher};
use crate::residue::{standardize_residue_apart, ResidueSet};
use crate::solver::{ConstraintSet, Sat};
use crate::subst::Subst;
use crate::subsume::{match_body_onto, match_db_staged, MatchTarget};
use crate::term::{Term, Var};
use crate::unify::match_atoms;
use sqo_obs as obs;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex, OnceLock};

/// An atomic semantic transformation of a query.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Append a comparison literal to the body.
    AddCmp(Comparison),
    /// Append a positive atom to the body (join introduction).
    AddAtom(Atom),
    /// Append a negated atom to the body (scope reduction).
    AddNegAtom(Atom),
    /// Remove a comparison literal implied by the remaining body.
    RemoveCmp(Comparison),
    /// Remove a group of positive atoms implied by the remaining body.
    /// Groups arise from view folds (Application 4); single-atom removal
    /// is the common case.
    RemoveAtoms(Vec<Atom>),
}

impl Op {
    /// The transformation kind as a stable provenance label (the paper's
    /// terminology for each atomic rewrite).
    pub fn kind(&self) -> &'static str {
        match self {
            Op::AddCmp(c) if c.op == crate::atom::CmpOp::Eq => "key-equality",
            Op::AddCmp(_) => "restriction-introduction",
            Op::AddAtom(_) => "join-introduction",
            Op::AddNegAtom(_) => "scope-reduction",
            Op::RemoveCmp(_) => "comparison-removal",
            Op::RemoveAtoms(atoms) if atoms.len() > 1 => "view-fold",
            Op::RemoveAtoms(_) => "join-elimination",
        }
    }
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Op::AddCmp(c) => write!(f, "add {c}"),
            Op::AddAtom(a) => write!(f, "add {a}"),
            Op::AddNegAtom(a) => write!(f, "add not {a}"),
            Op::RemoveCmp(c) => write!(f, "remove {c}"),
            Op::RemoveAtoms(atoms) => {
                f.write_str("remove ")?;
                for (i, a) in atoms.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                Ok(())
            }
        }
    }
}

/// A candidate transformation together with its provenance.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The transformation.
    pub op: Op,
    /// Name of the justifying integrity constraint or view, if any.
    pub ic_name: Option<String>,
    /// Provenance id of the compiled residue that produced the candidate
    /// (see [`crate::residue::Residue::provenance_id`]), if one did.
    pub residue: Option<String>,
    /// Human-readable explanation for reports.
    pub note: String,
}

/// The result of analysing a query against the compiled constraints.
#[derive(Debug, Clone)]
pub enum Analysis {
    /// The query can never produce answers; it need not be evaluated.
    Contradiction {
        /// Justifying constraint name, if known.
        ic_name: Option<String>,
        /// Human-readable explanation.
        note: String,
    },
    /// The applicable transformations (possibly empty).
    Candidates(Vec<Candidate>),
}

/// Everything the transformer needs besides the query itself.
pub struct TransformContext {
    /// Compiled residues.
    pub residues: ResidueSet,
    /// Chase dependencies (derived from the same constraints + views).
    pub chase: ChaseContext,
    /// View definitions usable for folding (access support relations).
    pub views: Vec<Rule>,
    /// Functional-dependency map: `pred → k` means the first `k`
    /// arguments determine the rest.
    pub functional: BTreeMap<PredSym, usize>,
    /// Chase budget for removal checks.
    pub budget: ChaseBudget,
}

impl TransformContext {
    /// Build a context from compiled residues, views and OID-functional
    /// relations. The chase context is derived from the full (original +
    /// derived) constraint set.
    pub fn new(
        residues: ResidueSet,
        views: Vec<Rule>,
        functional: BTreeMap<PredSym, usize>,
    ) -> Self {
        let chase = ChaseContext::from_constraints(
            &residues.constraints,
            views.clone(),
            functional.clone(),
        );
        TransformContext {
            residues,
            chase,
            views,
            functional,
            budget: ChaseBudget::default(),
        }
    }

    /// A context with no semantic knowledge at all.
    pub fn empty() -> Self {
        TransformContext::new(ResidueSet::default(), Vec::new(), BTreeMap::new())
    }
}

/// Build the query's comparison context: its own comparison literals plus
/// equalities derived by OID-functional congruence (two atoms of an
/// OID-functional relation with entailed-equal OIDs have pairwise equal
/// attributes — the paper's IC8).
pub fn query_solver(q: &Query, functional: &BTreeMap<PredSym, usize>) -> ConstraintSet {
    let mut solver = ConstraintSet::new();
    for l in &q.body {
        if let Literal::Cmp(c) = l {
            solver.assert_cmp(c);
        }
    }
    // Congruence fixpoint.
    let atoms: Vec<&Atom> = q.positive_atoms().collect();
    loop {
        let mut new_eqs: Vec<Comparison> = Vec::new();
        for (i, a) in atoms.iter().enumerate() {
            let Some(&k) = functional.get(&a.pred) else {
                continue;
            };
            if a.args.len() < k {
                continue;
            }
            for b in atoms.iter().skip(i + 1) {
                if a.pred != b.pred || a.args.len() != b.args.len() {
                    continue;
                }
                let prefix_eq = a.args[..k]
                    .iter()
                    .zip(&b.args[..k])
                    .all(|(x, y)| x == y || solver.entails_equal(x, y));
                if prefix_eq {
                    for (x, y) in a.args.iter().zip(&b.args).skip(k) {
                        if x != y {
                            let eq = Comparison::eq(*x, *y);
                            if !solver.implies(&eq) {
                                new_eqs.push(eq);
                            }
                        }
                    }
                }
            }
        }
        if new_eqs.is_empty() {
            break;
        }
        for eq in new_eqs {
            solver.assert_cmp(&eq);
        }
    }
    solver
}

/// Analyse the query: detect contradictions and enumerate candidate
/// transformations.
pub fn analyse(q: &Query, ctx: &TransformContext) -> Analysis {
    let solver = query_solver(q, &ctx.functional);
    if solver.check() == Sat::Unsatisfiable {
        return Analysis::Contradiction {
            ic_name: None,
            note: "the query's own comparison literals are inconsistent".into(),
        };
    }
    let mut candidates: Vec<Candidate> = Vec::new();
    let qvars = q.vars();
    let target = MatchTarget::new(&q.body, &solver);

    // Signature sets for the rest-literal prefilter: a residue whose rest
    // contains a database literal with no same-sign, same-predicate,
    // same-arity counterpart in the query can never map into it
    // (`match_body_onto` matches positives onto positives and negatives
    // onto negatives), so it is skipped before the allocating
    // standardize-apart + match work.
    let mut pos_sigs: FxHashSet<(PredSym, usize)> = FxHashSet::default();
    let mut neg_sigs: FxHashSet<(PredSym, usize)> = FxHashSet::default();
    for l in &q.body {
        match l {
            Literal::Pos(a) => {
                pos_sigs.insert((a.pred, a.args.len()));
            }
            Literal::Neg(a) => {
                neg_sigs.insert((a.pred, a.args.len()));
            }
            Literal::Cmp(_) => {}
        }
    }
    let rest_can_match = |rest: &[Literal]| {
        rest.iter().all(|l| match l {
            Literal::Pos(a) => pos_sigs.contains(&(a.pred, a.args.len())),
            Literal::Neg(a) => neg_sigs.contains(&(a.pred, a.args.len())),
            Literal::Cmp(_) => true,
        })
    };

    // Residue applications.
    for lit in &q.body {
        let Literal::Pos(anchor_target) = lit else {
            continue;
        };
        for residue in ctx.residues.residues_for(&anchor_target.pred) {
            if residue.anchor.args.len() != anchor_target.args.len()
                || !rest_can_match(&residue.rest)
            {
                obs::bump(obs::Counter::PrefilterMisses);
                continue;
            }
            obs::bump(obs::Counter::PrefilterHits);
            let residue = standardize_residue_apart(residue, &qvars);
            let mut seed = Subst::new();
            if !match_atoms(&residue.anchor, anchor_target, &mut seed) {
                continue;
            }
            let residue_id = residue.provenance_id();
            for theta in match_body_onto(&residue.rest, &target, &seed) {
                obs::bump(obs::Counter::ResiduesApplied);
                let head = theta.apply_head(&residue.head);
                let provenance = residue.ic_name.clone();
                match head {
                    ConstraintHead::None => {
                        return Analysis::Contradiction {
                            ic_name: provenance,
                            note: format!(
                                "denial constraint{} fully matches the query",
                                name_suffix(&residue.ic_name)
                            ),
                        };
                    }
                    ConstraintHead::Cmp(c) => {
                        // Heads mentioning unresolved residue variables are
                        // existential and carry no usable restriction.
                        if has_foreign_var(&c, &qvars) {
                            continue;
                        }
                        if solver.sat_with(&c) == Sat::Unsatisfiable {
                            return Analysis::Contradiction {
                                ic_name: provenance,
                                note: format!(
                                    "residue head `{c}`{} contradicts the query",
                                    name_suffix(&residue.ic_name)
                                ),
                            };
                        }
                        if solver.implies(&c) || q.contains(&Literal::Cmp(c)) {
                            continue;
                        }
                        push_candidate(
                            &mut candidates,
                            Candidate {
                                note: format!("restriction `{c}` attached by residue"),
                                op: Op::AddCmp(c),
                                ic_name: provenance,
                                residue: Some(residue_id.clone()),
                            },
                        );
                    }
                    ConstraintHead::Atom(a) => {
                        // Adding is pointless if an existing atom already
                        // subsumes the candidate: same predicate, and every
                        // position that is bound to a query term agrees
                        // (foreign/existential positions match anything).
                        if atom_subsumed_in_query(&a, q, &qvars, &solver) {
                            continue;
                        }
                        // Rename leftover residue variables to fresh query
                        // variables (they are existential witnesses).
                        let a = freshen_foreign_vars(&a, &qvars);
                        push_candidate(
                            &mut candidates,
                            Candidate {
                                note: format!("join introduction: `{a}` implied by the query"),
                                op: Op::AddAtom(a),
                                ic_name: provenance,
                                residue: Some(residue_id.clone()),
                            },
                        );
                    }
                    ConstraintHead::NegAtom(a) => {
                        // At least one variable must be anchored to the
                        // query; the rest are existential under the
                        // negation (partially-bound anti-join) and get
                        // fresh negation-local names.
                        if !a.vars().any(|v| qvars.contains(v)) {
                            continue;
                        }
                        // Dedup against existing negated atoms, treating
                        // negation-local variables (occurring once in the
                        // whole query) as wildcards on both sides.
                        let local_ok = |b: &Atom, cand: &Atom| {
                            b.pred == cand.pred
                                && b.args.len() == cand.args.len()
                                && b.args.iter().zip(&cand.args).all(|(x, y)| {
                                    x == y || (term_occurs_once(x, q) && !var_in(y, &qvars))
                                })
                        };
                        if q.body
                            .iter()
                            .any(|l| matches!(l, Literal::Neg(b) if local_ok(b, &a)))
                        {
                            continue;
                        }
                        let a = freshen_foreign_vars(&a, &qvars);
                        // A positively required identical atom would make
                        // the query contradictory (existential positions
                        // match anything).
                        let clash = q.positive_atoms().any(|b| {
                            b.pred == a.pred
                                && b.args.len() == a.args.len()
                                && b.args.iter().zip(&a.args).all(|(x, y)| {
                                    x == y || !var_in(y, &qvars) || solver.entails_equal(x, y)
                                })
                        });
                        if clash {
                            return Analysis::Contradiction {
                                ic_name: provenance,
                                note: format!(
                                    "residue head `not {a}`{} contradicts a required atom",
                                    name_suffix(&residue.ic_name)
                                ),
                            };
                        }
                        push_candidate(
                            &mut candidates,
                            Candidate {
                                note: format!(
                                    "scope reduction: answers cannot lie in `{}`",
                                    a.pred
                                ),
                                op: Op::AddNegAtom(a),
                                ic_name: provenance,
                                residue: Some(residue_id.clone()),
                            },
                        );
                    }
                }
            }
        }
    }

    tail_candidates(q, ctx, &solver, &mut candidates);

    Analysis::Candidates(candidates)
}

/// The solver-dependent tail of the analysis, shared by [`analyse`] and
/// [`analyse_cached`]: comparison removal, chase-validated atom removal,
/// and view folds. These phases only *add* candidates — none of them can
/// surface a contradiction — so the helper has no early return.
fn tail_candidates(
    q: &Query,
    ctx: &TransformContext,
    solver: &ConstraintSet,
    candidates: &mut Vec<Candidate>,
) {
    // Comparison removal: a comparison implied by the rest of the body.
    for (i, l) in q.body.iter().enumerate() {
        let Literal::Cmp(c) = l else { continue };
        let rest: Vec<Literal> = q
            .body
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, l)| l.clone())
            .collect();
        let rest_query = Query::new(q.name.clone(), q.projection.clone(), rest);
        let rest_solver = query_solver(&rest_query, &ctx.functional);
        if rest_solver.implies(c) {
            push_candidate(
                candidates,
                Candidate {
                    note: format!("`{c}` is implied by the rest of the query"),
                    op: Op::RemoveCmp(*c),
                    ic_name: None,
                    residue: None,
                },
            );
        }
    }

    // Single-atom removal validated by the chase.
    let proj_vars: BTreeSet<Var> = q
        .projection
        .iter()
        .filter_map(Term::as_var)
        .cloned()
        .collect();
    // Prefilter: an atom can only be derivable by the chase if its
    // predicate is the head of some tgd, occurs in a view body (reverse
    // view firing), or appears more than once in the query (congruence /
    // egd merging can expose duplicates).
    let derivable_pred = |pred: &PredSym| {
        ctx.chase.tgds.iter().any(|t| match &t.head {
            crate::clause::ConstraintHead::Atom(h) => h.pred == *pred,
            _ => false,
        }) || ctx
            .views
            .iter()
            .any(|v| v.body.iter().any(|l| l.pred() == Some(pred)))
    };
    for (i, l) in q.body.iter().enumerate() {
        let Literal::Pos(a) = l else { continue };
        let duplicated = q.positive_atoms().filter(|b| b.pred == a.pred).count() > 1;
        if !duplicated && !derivable_pred(&a.pred) {
            continue;
        }
        let kept: Vec<Literal> = q
            .body
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, l)| l.clone())
            .collect();
        // Removal must keep the query safe.
        let candidate_query = Query::new(q.name.clone(), q.projection.clone(), kept.clone());
        if !candidate_query.is_safe() {
            continue;
        }
        if group_removal_sound(
            &kept,
            std::slice::from_ref(a),
            &proj_vars,
            &ctx.chase,
            solver,
            ctx.budget.clone(),
        ) {
            push_candidate(
                candidates,
                Candidate {
                    note: format!("join elimination: `{a}` is implied by the rest of the query"),
                    op: Op::RemoveAtoms(vec![a.clone()]),
                    ic_name: None,
                    residue: None,
                },
            );
        }
    }

    // View folds (access support relations).
    for view in &ctx.views {
        for cand in fold_view_candidates(q, view, solver, ctx, &proj_vars) {
            push_candidate(candidates, cand);
        }
    }
}

/// Structural identity of a query for the residue-application phase:
/// its positive atoms in body order, negative atoms in body order, and
/// variable set. Two queries with the same structure differ only in
/// their comparison literals, which residue application consumes solely
/// through the per-query [`ConstraintSet`] — so everything *except* the
/// solver-dependent checks can be computed once per structure and
/// replayed across sibling variants.
#[derive(Debug, PartialEq, Eq, Hash)]
struct StructKey {
    pos: Vec<Atom>,
    neg: Vec<Atom>,
    qvars: BTreeSet<Var>,
}

impl StructKey {
    fn of(q: &Query, qvars: &BTreeSet<Var>) -> (StructKey, u64) {
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        for l in &q.body {
            match l {
                Literal::Pos(a) => pos.push(a.clone()),
                Literal::Neg(a) => neg.push(a.clone()),
                Literal::Cmp(_) => {}
            }
        }
        let key = StructKey {
            pos,
            neg,
            qvars: qvars.clone(),
        };
        use std::hash::{Hash, Hasher};
        let mut h = FxHasher::default();
        key.hash(&mut h);
        let hash = h.finish();
        (key, hash)
    }
}

/// What to do with one matched residue-head instantiation, precomputed
/// at structure-cache build time. Solver-independent checks (foreign
/// comparison variables, negated-head anchoring, head freshening, note
/// rendering) are resolved here; solver-dependent checks replay per
/// query in [`analyse_cached`].
#[derive(Debug)]
enum HeadAction {
    /// Denial head: the match alone proves a contradiction.
    Denial { note: String },
    /// Structurally discarded head (foreign comparison variable or
    /// unanchored negated head): counts as an application, adds nothing.
    Discard,
    /// Comparison head to test and attach against the node's solver.
    Cmp {
        c: Comparison,
        contra_note: String,
        note: String,
    },
    /// Atom head (join introduction); `raw` is the pre-freshening
    /// instantiation the subsumption check runs against.
    Atom {
        raw: Atom,
        freshened: Atom,
        note: String,
    },
    /// Negated-atom head (scope reduction); `raw` drives the
    /// negation-dedup check, `freshened` the clash check and the op.
    NegAtom {
        raw: Atom,
        freshened: Atom,
        contra_note: String,
        note: String,
    },
}

/// One staged match of a residue against a structure: the deferred
/// (instantiated) body comparisons that gate it per query, and the
/// precomputed head action.
#[derive(Debug)]
struct ThetaEntry {
    deferred: Vec<Comparison>,
    action: HeadAction,
}

/// All staged matches of one residue application (anchor body position ×
/// residue), with shared provenance.
#[derive(Debug)]
struct AppEntry {
    ic_name: Option<String>,
    residue_id: String,
    matches: Vec<ThetaEntry>,
}

/// The cached residue-application phase for one query structure.
#[derive(Debug)]
struct StructEntry {
    apps: Vec<AppEntry>,
}

/// A per-search memo of the residue-application phase, keyed by query
/// structure. [`analyse_cached`] consults it so sibling variants that
/// share positive/negative atoms — differing only in comparison
/// literals, the overwhelmingly common case under restriction-heavy IC
/// sets — pay for residue matching once instead of once per node.
///
/// Thread-safe and deterministic: the mutex guards only the bucket map
/// (fetching/inserting entry slots), and each entry is built exactly
/// once inside its own `OnceLock` *outside* the lock — so parallel and
/// sequential searches bump build-time counters identically, and
/// concurrent builders of different structures don't serialize.
#[derive(Debug, Default)]
pub struct AnalysisCache {
    #[allow(clippy::type_complexity)]
    map: Mutex<FxHashMap<u64, Vec<(StructKey, Arc<OnceLock<StructEntry>>)>>>,
}

impl AnalysisCache {
    /// An empty cache, scoped to one search (one query + context).
    pub fn new() -> Self {
        Self::default()
    }

    /// Fetch or create the entry slot for a structure. The build itself
    /// happens in the caller via `get_or_init`, outside the map lock.
    fn slot(&self, key: StructKey, hash: u64) -> Arc<OnceLock<StructEntry>> {
        let mut map = self.map.lock().expect("analysis cache poisoned");
        let bucket = map.entry(hash).or_default();
        if let Some((_, slot)) = bucket.iter().find(|(k, _)| *k == key) {
            return Arc::clone(slot);
        }
        let slot = Arc::new(OnceLock::new());
        bucket.push((key, Arc::clone(&slot)));
        slot
    }
}

/// Build the cached residue-application phase for one structure. Runs
/// the same enumeration as the residue loop of [`analyse`] minus the
/// solver-dependent checks; build-time counters (exactness skips,
/// prefilter hits/misses, subsumption stagings, unification attempts)
/// are bumped here exactly once per structure.
fn build_struct_entry(q: &Query, qvars: &BTreeSet<Var>, ctx: &TransformContext) -> StructEntry {
    let mut pos_refs: Vec<&Atom> = Vec::new();
    let mut neg_refs: Vec<&Atom> = Vec::new();
    let mut pos_sigs: FxHashSet<(PredSym, usize)> = FxHashSet::default();
    let mut neg_sigs: FxHashSet<(PredSym, usize)> = FxHashSet::default();
    for l in &q.body {
        match l {
            Literal::Pos(a) => {
                pos_refs.push(a);
                pos_sigs.insert((a.pred, a.args.len()));
            }
            Literal::Neg(a) => {
                neg_refs.push(a);
                neg_sigs.insert((a.pred, a.args.len()));
            }
            Literal::Cmp(_) => {}
        }
    }
    let rest_can_match = |rest: &[Literal]| {
        rest.iter().all(|l| match l {
            Literal::Pos(a) => pos_sigs.contains(&(a.pred, a.args.len())),
            Literal::Neg(a) => neg_sigs.contains(&(a.pred, a.args.len())),
            Literal::Cmp(_) => true,
        })
    };

    let mut apps: Vec<AppEntry> = Vec::new();
    for anchor_target in &pos_refs {
        for residue in ctx.residues.residues_for(&anchor_target.pred) {
            // Exactness prefilter: applications that provably cannot
            // contribute for *any* query are dropped wholesale (see
            // [`crate::residue::Residue::exact_skippable`]).
            if residue.exact_skippable() {
                obs::bump(obs::Counter::SearchExactSkipped);
                continue;
            }
            if residue.anchor.args.len() != anchor_target.args.len()
                || !rest_can_match(&residue.rest)
            {
                obs::bump(obs::Counter::PrefilterMisses);
                continue;
            }
            obs::bump(obs::Counter::PrefilterHits);
            let residue = standardize_residue_apart(residue, qvars);
            let mut seed = Subst::new();
            if !match_atoms(&residue.anchor, anchor_target, &mut seed) {
                continue;
            }
            let staged = match_db_staged(&residue.rest, &pos_refs, &neg_refs, &seed);
            if staged.is_empty() {
                continue;
            }
            let mut matches: Vec<ThetaEntry> = Vec::with_capacity(staged.len());
            for m in staged {
                let action = match m.theta.apply_head(&residue.head) {
                    ConstraintHead::None => HeadAction::Denial {
                        note: format!(
                            "denial constraint{} fully matches the query",
                            name_suffix(&residue.ic_name)
                        ),
                    },
                    ConstraintHead::Cmp(c) => {
                        if has_foreign_var(&c, qvars) {
                            HeadAction::Discard
                        } else {
                            HeadAction::Cmp {
                                contra_note: format!(
                                    "residue head `{c}`{} contradicts the query",
                                    name_suffix(&residue.ic_name)
                                ),
                                note: format!("restriction `{c}` attached by residue"),
                                c,
                            }
                        }
                    }
                    ConstraintHead::Atom(a) => {
                        let freshened = freshen_foreign_vars(&a, qvars);
                        HeadAction::Atom {
                            note: format!("join introduction: `{freshened}` implied by the query"),
                            raw: a,
                            freshened,
                        }
                    }
                    ConstraintHead::NegAtom(a) => {
                        if !a.vars().any(|v| qvars.contains(v)) {
                            HeadAction::Discard
                        } else {
                            let freshened = freshen_foreign_vars(&a, qvars);
                            HeadAction::NegAtom {
                                contra_note: format!(
                                    "residue head `not {freshened}`{} contradicts a required atom",
                                    name_suffix(&residue.ic_name)
                                ),
                                note: format!(
                                    "scope reduction: answers cannot lie in `{}`",
                                    freshened.pred
                                ),
                                raw: a,
                                freshened,
                            }
                        }
                    }
                };
                matches.push(ThetaEntry {
                    deferred: m.deferred,
                    action,
                });
            }
            apps.push(AppEntry {
                ic_name: residue.ic_name.clone(),
                residue_id: residue.provenance_id(),
                matches,
            });
        }
    }
    StructEntry { apps }
}

/// [`analyse`] with the residue-application phase served from `cache`.
///
/// Produces the identical [`Analysis`] for every query: the cached
/// enumeration replays staged matches in the exact order the uncached
/// loop visits them, and contradiction short-circuit points are
/// identical. One check is reordered — the implied/contained test runs
/// *before* the contradiction probe — which cannot change the outcome:
/// a comparison already contained in the query asserts nothing new, and
/// an implied one (`unsat(solver ∧ ¬c)`) cannot make a solver the
/// closure found satisfiable turn unsatisfiable, because both
/// judgements compose through the same complete order/constant closure.
/// Only observability counters differ from [`analyse`]: structure-level
/// work (prefilter, unification, subsumption staging) is counted once
/// per structure instead of once per node.
pub fn analyse_cached(q: &Query, ctx: &TransformContext, cache: &AnalysisCache) -> Analysis {
    let solver = query_solver(q, &ctx.functional);
    if solver.check() == Sat::Unsatisfiable {
        return Analysis::Contradiction {
            ic_name: None,
            note: "the query's own comparison literals are inconsistent".into(),
        };
    }
    let qvars = q.vars();
    let (key, hash) = StructKey::of(q, &qvars);
    let slot = cache.slot(key, hash);
    let entry = slot.get_or_init(|| build_struct_entry(q, &qvars, ctx));

    let mut candidates: Vec<Candidate> = Vec::new();
    for app in &entry.apps {
        for m in &app.matches {
            if !m.deferred.iter().all(|c| solver.implies(c)) {
                continue;
            }
            obs::bump(obs::Counter::ResiduesApplied);
            match &m.action {
                HeadAction::Denial { note } => {
                    return Analysis::Contradiction {
                        ic_name: app.ic_name.clone(),
                        note: note.clone(),
                    };
                }
                HeadAction::Discard => {}
                HeadAction::Cmp {
                    c,
                    contra_note,
                    note,
                } => {
                    if solver.implies(c) || q.contains(&Literal::Cmp(*c)) {
                        continue;
                    }
                    if solver.sat_with(c) == Sat::Unsatisfiable {
                        return Analysis::Contradiction {
                            ic_name: app.ic_name.clone(),
                            note: contra_note.clone(),
                        };
                    }
                    push_candidate(
                        &mut candidates,
                        Candidate {
                            note: note.clone(),
                            op: Op::AddCmp(*c),
                            ic_name: app.ic_name.clone(),
                            residue: Some(app.residue_id.clone()),
                        },
                    );
                }
                HeadAction::Atom {
                    raw,
                    freshened,
                    note,
                } => {
                    if atom_subsumed_in_query(raw, q, &qvars, &solver) {
                        continue;
                    }
                    push_candidate(
                        &mut candidates,
                        Candidate {
                            note: note.clone(),
                            op: Op::AddAtom(freshened.clone()),
                            ic_name: app.ic_name.clone(),
                            residue: Some(app.residue_id.clone()),
                        },
                    );
                }
                HeadAction::NegAtom {
                    raw,
                    freshened,
                    contra_note,
                    note,
                } => {
                    let local_ok = |b: &Atom, cand: &Atom| {
                        b.pred == cand.pred
                            && b.args.len() == cand.args.len()
                            && b.args.iter().zip(&cand.args).all(|(x, y)| {
                                x == y || (term_occurs_once(x, q) && !var_in(y, &qvars))
                            })
                    };
                    if q.body
                        .iter()
                        .any(|l| matches!(l, Literal::Neg(b) if local_ok(b, raw)))
                    {
                        continue;
                    }
                    let clash = q.positive_atoms().any(|b| {
                        b.pred == freshened.pred
                            && b.args.len() == freshened.args.len()
                            && b.args.iter().zip(&freshened.args).all(|(x, y)| {
                                x == y || !var_in(y, &qvars) || solver.entails_equal(x, y)
                            })
                    });
                    if clash {
                        return Analysis::Contradiction {
                            ic_name: app.ic_name.clone(),
                            note: contra_note.clone(),
                        };
                    }
                    push_candidate(
                        &mut candidates,
                        Candidate {
                            note: note.clone(),
                            op: Op::AddNegAtom(freshened.clone()),
                            ic_name: app.ic_name.clone(),
                            residue: Some(app.residue_id.clone()),
                        },
                    );
                }
            }
        }
    }

    tail_candidates(q, ctx, &solver, &mut candidates);

    Analysis::Candidates(candidates)
}

/// Enumerate view-related candidates for one view definition.
///
/// Two phases: if the view head is not yet in the query but the view body
/// matches, propose introducing the head atom (sound: the definition acts
/// as the IC `head ← body`). If the head *is* present, propose removing
/// the largest chase-validated subset of the matched body literals — the
/// actual fold.
fn fold_view_candidates(
    q: &Query,
    view: &Rule,
    solver: &ConstraintSet,
    ctx: &TransformContext,
    proj_vars: &BTreeSet<Var>,
) -> Vec<Candidate> {
    let mut out = Vec::new();
    let qvars = q.vars();
    let packed = crate::clause::Constraint {
        name: None,
        head: ConstraintHead::Atom(view.head.clone()),
        body: view.body.clone(),
    };
    let fresh = crate::subst::standardize_apart(&packed, &qvars);
    let ConstraintHead::Atom(head) = &fresh.head else {
        return out;
    };
    let target = MatchTarget::new(&q.body, solver);
    for theta in match_body_onto(&fresh.body, &target, &Subst::new()) {
        let head_inst = theta.apply_atom(head);
        if has_foreign_atom_var(&head_inst, &qvars) {
            // The view head must be fully determined by the match.
            continue;
        }
        let head_present = q
            .body
            .iter()
            .any(|l| matches!(l, Literal::Pos(b) if *b == head_inst));
        let matched: Vec<Atom> = fresh
            .body
            .iter()
            .filter_map(|l| match l {
                Literal::Pos(a) => Some(theta.apply_atom(a)),
                _ => None,
            })
            .collect();
        if !head_present {
            out.push(Candidate {
                note: format!(
                    "introduce access support relation `{}` for the matched path",
                    view.head.pred
                ),
                op: Op::AddAtom(head_inst),
                ic_name: Some(format!("view {}", view.head.pred)),
                residue: None,
            });
            continue;
        }
        // Fold phase: try removing all matched literals, then all except
        // those mentioning projected variables (the paper's Q1 case keeps
        // has_ta(V, W) because V is projected).
        let attempts: [Vec<Atom>; 2] = [
            matched.clone(),
            matched
                .iter()
                .filter(|a| !a.vars().any(|v| proj_vars.contains(v)))
                .cloned()
                .collect(),
        ];
        for removal in attempts {
            if removal.is_empty() {
                continue;
            }
            let mut kept: Vec<Literal> = Vec::new();
            let mut to_remove = removal.clone();
            for l in &q.body {
                if let Literal::Pos(a) = l {
                    if let Some(pos) = to_remove.iter().position(|r| r == a) {
                        to_remove.remove(pos);
                        continue;
                    }
                }
                kept.push(l.clone());
            }
            if !to_remove.is_empty() {
                continue;
            }
            let folded = Query::new(q.name.clone(), q.projection.clone(), kept.clone());
            if !folded.is_safe() {
                continue;
            }
            if group_removal_sound(
                &kept,
                &removal,
                proj_vars,
                &ctx.chase,
                solver,
                ctx.budget.clone(),
            ) {
                out.push(Candidate {
                    note: format!(
                        "fold path expression into access support relation `{}`",
                        view.head.pred
                    ),
                    op: Op::RemoveAtoms(removal),
                    ic_name: Some(format!("view {}", view.head.pred)),
                    residue: None,
                });
                break; // largest sound removal found for this match
            }
        }
    }
    out
}

/// Apply a transformation, returning the new query. Additions are
/// appended at the end of the body, matching the paper's presentation.
pub fn apply(q: &Query, op: &Op) -> Query {
    let mut body = q.body.clone();
    match op {
        Op::AddCmp(c) => body.push(Literal::Cmp(*c)),
        Op::AddAtom(a) => body.push(Literal::Pos(a.clone())),
        Op::AddNegAtom(a) => body.push(Literal::Neg(a.clone())),
        Op::RemoveCmp(c) => {
            let canon = c.canonical();
            if let Some(pos) = body
                .iter()
                .position(|l| matches!(l, Literal::Cmp(d) if d.canonical() == canon))
            {
                body.remove(pos);
            }
        }
        Op::RemoveAtoms(atoms) => {
            for a in atoms {
                if let Some(pos) = body
                    .iter()
                    .position(|l| matches!(l, Literal::Pos(b) if b == a))
                {
                    body.remove(pos);
                }
            }
        }
    }
    Query::new(q.name.clone(), q.projection.clone(), body)
}

fn push_candidate(cands: &mut Vec<Candidate>, c: Candidate) {
    if !cands.iter().any(|e| e.op == c.op) {
        cands.push(c);
    }
}

fn name_suffix(name: &Option<String>) -> String {
    match name {
        Some(n) => format!(" ({n})"),
        None => String::new(),
    }
}

/// Whether a term is a variable belonging to the given set.
fn var_in(t: &Term, vars: &BTreeSet<Var>) -> bool {
    matches!(t, Term::Var(v) if vars.contains(v))
}

/// Whether a variable term occurs exactly once across the whole query
/// (projection + body) — i.e. it is local to its literal.
fn term_occurs_once(t: &Term, q: &Query) -> bool {
    let Term::Var(v) = t else { return false };
    let mut count = q.projection.iter().filter(|p| *p == t).count();
    for l in &q.body {
        count += l.vars().into_iter().filter(|w| *w == v).count();
    }
    count == 1
}

/// An added atom is redundant if an existing query atom matches it on
/// every position bound to a query term (foreign positions are
/// existential and match anything).
fn atom_subsumed_in_query(
    a: &Atom,
    q: &Query,
    qvars: &BTreeSet<Var>,
    solver: &ConstraintSet,
) -> bool {
    q.positive_atoms().any(|b| {
        b.pred == a.pred
            && b.args.len() == a.args.len()
            && b.args.iter().zip(&a.args).all(|(x, y)| {
                x == y || !var_in(y, qvars) && y.as_var().is_some() || solver.entails_equal(x, y)
            })
    })
}

fn has_foreign_var(c: &Comparison, qvars: &BTreeSet<Var>) -> bool {
    c.vars().any(|v| !qvars.contains(v))
}

fn has_foreign_atom_var(a: &Atom, qvars: &BTreeSet<Var>) -> bool {
    a.vars().any(|v| !qvars.contains(v))
}

/// Replace residue-local variables in an added atom with fresh query
/// variables (existential witnesses), numbered to avoid clashes.
fn freshen_foreign_vars(a: &Atom, qvars: &BTreeSet<Var>) -> Atom {
    let mut counter = 0usize;
    let mut s = Subst::new();
    for v in a.vars() {
        if !qvars.contains(v) && s.lookup(v).is_none() {
            loop {
                counter += 1;
                let fresh = Var::new(format!("NV{counter}"));
                if !qvars.contains(&fresh) {
                    s.bind(*v, Term::Var(fresh));
                    break;
                }
            }
        }
    }
    s.apply_atom(a)
}

/// Whether two comparisons are the same up to orientation.
pub fn same_cmp(a: &Comparison, b: &Comparison) -> bool {
    a.canonical() == b.canonical()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::CmpOp;
    use crate::clause::Constraint;
    use crate::residue::ResidueSet;

    fn v(n: &str) -> Term {
        Term::var(n)
    }

    /// Example 1 of the paper: residue `Age > 30` at faculty contradicts
    /// `Age < 18` in the query.
    #[test]
    fn example1_contradiction() {
        let ic = Constraint::named(
            "IC",
            ConstraintHead::Cmp(Comparison::new(v("Age"), CmpOp::Gt, Term::int(30))),
            vec![Literal::pos("faculty", vec![v("Sec"), v("Fac"), v("Age")])],
        );
        let ctx = TransformContext::new(ResidueSet::compile(vec![ic]), vec![], BTreeMap::new());
        let q = Query::new(
            "q",
            vec![v("Name")],
            vec![
                Literal::pos("student", vec![v("St"), v("Name")]),
                Literal::pos("takes_section", vec![v("St"), v("Sec")]),
                Literal::pos("faculty", vec![v("Sec"), v("Fac"), v("Age")]),
                Literal::cmp(v("Age"), CmpOp::Lt, Term::int(18)),
            ],
        );
        match analyse(&q, &ctx) {
            Analysis::Contradiction { ic_name, .. } => {
                assert_eq!(ic_name.as_deref(), Some("IC"));
            }
            other => panic!("expected contradiction, got {other:?}"),
        }
    }

    /// Restriction introduction: the same residue *adds* `Age > 30` when
    /// the query has no conflicting bound.
    #[test]
    fn restriction_introduction() {
        let ic = Constraint::named(
            "IC",
            ConstraintHead::Cmp(Comparison::new(v("Age"), CmpOp::Gt, Term::int(30))),
            vec![Literal::pos("faculty", vec![v("S"), v("F"), v("Age")])],
        );
        let ctx = TransformContext::new(ResidueSet::compile(vec![ic]), vec![], BTreeMap::new());
        let q = Query::new(
            "q",
            vec![v("F")],
            vec![Literal::pos("faculty", vec![v("Sec"), v("F"), v("A")])],
        );
        let Analysis::Candidates(cands) = analyse(&q, &ctx) else {
            panic!("no contradiction expected");
        };
        assert!(cands.iter().any(|c| matches!(
            &c.op,
            Op::AddCmp(cmp) if cmp.to_string() == "A > 30"
        )));
    }

    /// Application 2: scope reduction adds `not faculty(...)`.
    #[test]
    fn application2_scope_reduction() {
        let ic4 = Constraint::named(
            "IC4",
            ConstraintHead::Cmp(Comparison::new(v("Age"), CmpOp::Ge, Term::int(30))),
            vec![Literal::pos("faculty", vec![v("X"), v("Name"), v("Age")])],
        );
        let ic5 = Constraint::named(
            "IC5",
            ConstraintHead::Atom(Atom::new("person", vec![v("X"), v("Name"), v("Age")])),
            vec![Literal::pos("faculty", vec![v("X"), v("Name"), v("Age")])],
        );
        let ctx =
            TransformContext::new(ResidueSet::compile(vec![ic4, ic5]), vec![], BTreeMap::new());
        let q = Query::new(
            "q",
            vec![v("Name")],
            vec![
                Literal::pos("person", vec![v("X"), v("Name"), v("Age")]),
                Literal::cmp(v("Age"), CmpOp::Lt, Term::int(30)),
            ],
        );
        let Analysis::Candidates(cands) = analyse(&q, &ctx) else {
            panic!("no contradiction expected");
        };
        let scope = cands
            .iter()
            .find(|c| matches!(&c.op, Op::AddNegAtom(a) if a.pred.name() == "faculty"));
        assert!(scope.is_some(), "candidates: {cands:#?}");
        // Applying it yields the paper's optimized query.
        let q2 = apply(&q, &scope.unwrap().op);
        assert_eq!(
            q2.to_string(),
            "q(Name) <- person(X, Name, Age), Age < 30, not faculty(X, Name, Age)"
        );
    }

    /// Scope reduction also fires with a strictly stronger query bound
    /// (footnote 4: `Age < 20` in the query, `Age < 30` in the IC).
    #[test]
    fn scope_reduction_with_stronger_bound() {
        let ic4 = Constraint::named(
            "IC4",
            ConstraintHead::Cmp(Comparison::new(v("Age"), CmpOp::Ge, Term::int(30))),
            vec![Literal::pos("faculty", vec![v("X"), v("N"), v("Age")])],
        );
        let ic5 = Constraint::named(
            "IC5",
            ConstraintHead::Atom(Atom::new("person", vec![v("X"), v("N"), v("Age")])),
            vec![Literal::pos("faculty", vec![v("X"), v("N"), v("Age")])],
        );
        let ctx =
            TransformContext::new(ResidueSet::compile(vec![ic4, ic5]), vec![], BTreeMap::new());
        let q = Query::new(
            "q",
            vec![v("Name")],
            vec![
                Literal::pos("person", vec![v("X"), v("Name"), v("Age")]),
                Literal::cmp(v("Age"), CmpOp::Lt, Term::int(20)),
            ],
        );
        let Analysis::Candidates(cands) = analyse(&q, &ctx) else {
            panic!("no contradiction expected");
        };
        assert!(cands
            .iter()
            .any(|c| matches!(&c.op, Op::AddNegAtom(a) if a.pred.name() == "faculty")));
    }

    /// Application 3: the key constraint adds `Z = W`; afterwards
    /// `Name1 = Name2` becomes removable.
    #[test]
    fn application3_key_join_reduction() {
        let ic7 = Constraint::named(
            "IC7",
            ConstraintHead::Cmp(Comparison::eq(v("X1"), v("X2"))),
            vec![
                Literal::pos("faculty", vec![v("X1"), v("N1")]),
                Literal::pos("faculty", vec![v("X2"), v("N2")]),
                Literal::cmp(v("N1"), CmpOp::Eq, v("N2")),
            ],
        );
        let mut fd = BTreeMap::new();
        fd.insert(PredSym::new("faculty"), 1);
        let ctx = TransformContext::new(ResidueSet::compile(vec![ic7]), vec![], fd);
        let q = Query::new(
            "q",
            vec![v("Sid"), v("Id")],
            vec![
                Literal::pos("student", vec![v("S"), v("Sid")]),
                Literal::pos("faculty", vec![v("Z"), v("Name1")]),
                Literal::pos("ta", vec![v("T"), v("Id")]),
                Literal::pos("faculty", vec![v("W"), v("Name2")]),
                Literal::cmp(v("Name1"), CmpOp::Eq, v("Name2")),
            ],
        );
        let Analysis::Candidates(cands) = analyse(&q, &ctx) else {
            panic!("no contradiction expected");
        };
        let add_eq = cands.iter().find(|c| {
            matches!(&c.op, Op::AddCmp(cmp) if cmp.op == CmpOp::Eq
                && cmp.canonical() == Comparison::eq(v("Z"), v("W")).canonical())
        });
        assert!(add_eq.is_some(), "candidates: {cands:#?}");
        // After adding Z = W, Name1 = Name2 becomes removable.
        let q2 = apply(&q, &add_eq.unwrap().op);
        let Analysis::Candidates(cands2) = analyse(&q2, &ctx) else {
            panic!("no contradiction expected");
        };
        assert!(
            cands2.iter().any(|c| matches!(
                &c.op,
                Op::RemoveCmp(cmp) if same_cmp(cmp, &Comparison::eq(v("Name1"), v("Name2")))
            )),
            "candidates after Z = W: {cands2:#?}"
        );
    }

    /// Join introduction via IC9 (Application 4, Q1).
    #[test]
    fn application4_join_introduction() {
        let ic9 = Constraint::named(
            "IC9",
            ConstraintHead::Atom(Atom::new("has_ta", vec![v("V"), v("W")])),
            vec![
                Literal::pos("takes", vec![v("X"), v("Y")]),
                Literal::pos("is_section_of", vec![v("Y"), v("Z")]),
                Literal::pos("has_sections", vec![v("Z"), v("V")]),
            ],
        );
        let ctx = TransformContext::new(ResidueSet::compile(vec![ic9]), vec![], BTreeMap::new());
        let q = Query::new(
            "q1",
            vec![v("V")],
            vec![
                Literal::pos("student", vec![v("X"), v("Name")]),
                Literal::pos("takes", vec![v("X"), v("Y")]),
                Literal::pos("is_section_of", vec![v("Y"), v("Z")]),
                Literal::pos("has_sections", vec![v("Z"), v("V")]),
                Literal::cmp(v("Name"), CmpOp::Eq, Term::str("johnson")),
            ],
        );
        let Analysis::Candidates(cands) = analyse(&q, &ctx) else {
            panic!("no contradiction expected");
        };
        let intro = cands
            .iter()
            .find(|c| matches!(&c.op, Op::AddAtom(a) if a.pred.name() == "has_ta"));
        assert!(intro.is_some(), "candidates: {cands:#?}");
        // The introduced atom binds V and a fresh witness variable.
        if let Op::AddAtom(a) = &intro.unwrap().op {
            assert_eq!(a.args[0], v("V"));
            assert!(matches!(&a.args[1], Term::Var(w) if w.name().starts_with("NV")));
        }
    }

    /// View introduction then fold (Application 4, Q).
    #[test]
    fn application4_view_fold() {
        let view = Rule::new(
            Atom::new("asr", vec![v("X"), v("W")]),
            vec![
                Literal::pos("takes", vec![v("X"), v("Y")]),
                Literal::pos("is_section_of", vec![v("Y"), v("Z")]),
                Literal::pos("has_sections", vec![v("Z"), v("V")]),
                Literal::pos("has_ta", vec![v("V"), v("W")]),
            ],
        );
        let ctx = TransformContext::new(ResidueSet::compile(vec![]), vec![view], BTreeMap::new());
        let q = Query::new(
            "q",
            vec![v("W")],
            vec![
                Literal::pos("student", vec![v("X"), v("Name")]),
                Literal::pos("takes", vec![v("X"), v("Y")]),
                Literal::pos("is_section_of", vec![v("Y"), v("Z")]),
                Literal::pos("has_sections", vec![v("Z"), v("V")]),
                Literal::pos("has_ta", vec![v("V"), v("W")]),
                Literal::cmp(v("Name"), CmpOp::Eq, Term::str("james")),
            ],
        );
        // Phase 1: the ASR atom is proposed.
        let Analysis::Candidates(cands) = analyse(&q, &ctx) else {
            panic!("no contradiction expected");
        };
        let intro = cands
            .iter()
            .find(|c| matches!(&c.op, Op::AddAtom(a) if a.pred.name() == "asr"))
            .expect("asr introduction");
        let q2 = apply(&q, &intro.op);
        // Phase 2: the whole chain is foldable away.
        let Analysis::Candidates(cands2) = analyse(&q2, &ctx) else {
            panic!("no contradiction expected");
        };
        let fold = cands2
            .iter()
            .find(|c| matches!(&c.op, Op::RemoveAtoms(atoms) if atoms.len() == 4))
            .expect("4-atom fold");
        let q3 = apply(&q2, &fold.op);
        assert_eq!(
            q3.to_string(),
            "q(W) <- student(X, Name), Name = \"james\", asr(X, W)"
        );
    }

    /// Applying a NegAtom residue against a query that positively
    /// requires the atom reports a contradiction.
    #[test]
    fn neg_head_against_required_atom_contradicts() {
        let ic4 = Constraint::named(
            "IC4",
            ConstraintHead::Cmp(Comparison::new(v("Age"), CmpOp::Ge, Term::int(30))),
            vec![Literal::pos("faculty", vec![v("X"), v("Age")])],
        );
        let ic5 = Constraint::named(
            "IC5",
            ConstraintHead::Atom(Atom::new("person", vec![v("X"), v("Age")])),
            vec![Literal::pos("faculty", vec![v("X"), v("Age")])],
        );
        let ctx =
            TransformContext::new(ResidueSet::compile(vec![ic4, ic5]), vec![], BTreeMap::new());
        // Query requires BOTH person and faculty on the same OID with
        // Age < 30 — contradictory.
        let q = Query::new(
            "q",
            vec![v("X")],
            vec![
                Literal::pos("person", vec![v("X"), v("Age")]),
                Literal::pos("faculty", vec![v("X"), v("Age")]),
                Literal::cmp(v("Age"), CmpOp::Lt, Term::int(30)),
            ],
        );
        match analyse(&q, &ctx) {
            Analysis::Contradiction { .. } => {}
            Analysis::Candidates(c) => panic!("expected contradiction, got {c:#?}"),
        }
    }

    #[test]
    fn apply_remove_cmp_matches_either_orientation() {
        let q = Query::new(
            "q",
            vec![],
            vec![
                Literal::pos("p", vec![v("X"), v("Y")]),
                Literal::cmp(v("X"), CmpOp::Eq, v("Y")),
            ],
        );
        let q2 = apply(&q, &Op::RemoveCmp(Comparison::eq(v("Y"), v("X"))));
        assert_eq!(q2.body.len(), 1);
    }

    #[test]
    fn inherently_contradictory_query_detected() {
        let ctx = TransformContext::empty();
        let q = Query::new(
            "q",
            vec![],
            vec![
                Literal::pos("p", vec![v("X")]),
                Literal::cmp(v("X"), CmpOp::Lt, Term::int(0)),
                Literal::cmp(v("X"), CmpOp::Gt, Term::int(1)),
            ],
        );
        assert!(matches!(analyse(&q, &ctx), Analysis::Contradiction { .. }));
    }

    #[test]
    fn no_candidates_without_knowledge() {
        let ctx = TransformContext::empty();
        let q = Query::new("q", vec![v("X")], vec![Literal::pos("p", vec![v("X")])]);
        let Analysis::Candidates(cands) = analyse(&q, &ctx) else {
            panic!("satisfiable");
        };
        assert!(cands.is_empty(), "{cands:#?}");
    }
}
