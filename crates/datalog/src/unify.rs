//! Unification and one-way matching for the function-free fragment.
//!
//! Two operations are needed by the residue method:
//!
//! * **Unification** (two-way): used during semantic compilation when an
//!   integrity-constraint body literal is resolved against a relation
//!   template (partial subsumption, Section 2 of the paper).
//! * **Matching** (one-way, a.k.a. θ-subsumption step): used at query
//!   transformation time, when a residue's remaining body literal must be
//!   mapped *onto* a query literal without instantiating the query.

use crate::atom::Atom;
use crate::subst::Subst;
use crate::term::Term;

/// Unify two terms under an accumulating substitution. Returns `true` and
/// extends `s` on success; on failure `s` may be partially extended, so
/// callers should clone before speculative unification.
pub fn unify_terms(a: &Term, b: &Term, s: &mut Subst) -> bool {
    let ra = s.resolve(a);
    let rb = s.resolve(b);
    match (ra, rb) {
        (Term::Const(x), Term::Const(y)) => x == y,
        (Term::Var(v), t) | (t, Term::Var(v)) => s.bind(v, t),
    }
}

/// Unify two atoms (same predicate, same arity, pairwise-unifiable args).
pub fn unify_atoms(a: &Atom, b: &Atom, s: &mut Subst) -> bool {
    if a.pred != b.pred || a.arity() != b.arity() {
        return false;
    }
    a.args
        .iter()
        .zip(&b.args)
        .all(|(x, y)| unify_terms(x, y, s))
}

/// One-way matching: extend `s` so that `pattern`θ = `target`, binding only
/// variables of the pattern side. The target is treated as fixed — its
/// variables behave like constants.
///
/// **Precondition:** the pattern's variables must be disjoint from the
/// target's (standardize apart first, as every optimizer call site does
/// via [`crate::subst::standardize_apart`] /
/// [`crate::residue::standardize_residue_apart`]). With shared names a
/// substitution cannot distinguish the two variable spaces and bindings
/// may chain through the overlap.
pub fn match_terms(pattern: &Term, target: &Term, s: &mut Subst) -> bool {
    match pattern {
        Term::Const(c) => matches!(target, Term::Const(d) if c == d),
        // Only ever bind *pattern* variables; an already-bound pattern
        // variable must coincide with the target exactly (target variables
        // behave like constants and are never bound). Identity matches are
        // recorded too, so a repeated pattern variable stays consistent
        // even when pattern and target share variable names.
        Term::Var(v) => match s.lookup(v) {
            Some(bound) => bound == target,
            None => s.bind_exact(*v, *target),
        },
    }
}

/// One-way matching of atoms: `pattern`θ = `target`.
pub fn match_atoms(pattern: &Atom, target: &Atom, s: &mut Subst) -> bool {
    sqo_obs::bump(sqo_obs::Counter::UnifyAttempts);
    if pattern.pred != target.pred || pattern.arity() != target.arity() {
        return false;
    }
    pattern
        .args
        .iter()
        .zip(&target.args)
        .all(|(p, t)| match_terms(p, t, s))
}

/// Compute the most general unifier of two atoms, if any.
pub fn mgu(a: &Atom, b: &Atom) -> Option<Subst> {
    let mut s = Subst::new();
    if unify_atoms(a, b, &mut s) {
        Some(s)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Var;

    #[test]
    fn unify_basic() {
        let a = Atom::new("p", vec![Term::var("X"), Term::int(3)]);
        let b = Atom::new("p", vec![Term::str("a"), Term::var("Y")]);
        let s = mgu(&a, &b).expect("unifies");
        assert_eq!(s.apply_atom(&a), s.apply_atom(&b));
    }

    #[test]
    fn unify_fails_on_pred_or_arity() {
        let a = Atom::new("p", vec![Term::var("X")]);
        let b = Atom::new("q", vec![Term::var("X")]);
        assert!(mgu(&a, &b).is_none());
        let c = Atom::new("p", vec![Term::var("X"), Term::var("Y")]);
        assert!(mgu(&a, &c).is_none());
    }

    #[test]
    fn unify_occurs_trivially_fine_without_functions() {
        // Function-free: X with Y, then Y with X must not loop.
        let a = Atom::new("p", vec![Term::var("X"), Term::var("Y")]);
        let b = Atom::new("p", vec![Term::var("Y"), Term::var("X")]);
        let s = mgu(&a, &b).expect("unifies");
        assert_eq!(s.apply_atom(&a), s.apply_atom(&b));
    }

    #[test]
    fn unify_conflicting_constants_fails() {
        let a = Atom::new("p", vec![Term::var("X"), Term::var("X")]);
        let b = Atom::new("p", vec![Term::int(1), Term::int(2)]);
        assert!(mgu(&a, &b).is_none());
    }

    #[test]
    fn matching_is_one_way() {
        let pat = Atom::new("p", vec![Term::var("X")]);
        let tgt = Atom::new("p", vec![Term::var("QueryVar")]);
        let mut s = Subst::new();
        assert!(match_atoms(&pat, &tgt, &mut s));
        assert_eq!(s.apply_term(&Term::var("X")), Term::var("QueryVar"));

        // The reverse direction must fail: a constant pattern position
        // cannot match a target variable.
        let pat2 = Atom::new("p", vec![Term::int(1)]);
        let mut s2 = Subst::new();
        assert!(!match_atoms(&pat2, &tgt, &mut s2));
    }

    #[test]
    fn matching_respects_repeated_pattern_vars() {
        let pat = Atom::new("p", vec![Term::var("X"), Term::var("X")]);
        let tgt_ok = Atom::new("p", vec![Term::var("A"), Term::var("A")]);
        let tgt_bad = Atom::new("p", vec![Term::var("A"), Term::var("B")]);
        assert!(match_atoms(&pat, &tgt_ok, &mut Subst::new()));
        assert!(!match_atoms(&pat, &tgt_bad, &mut Subst::new()));
    }

    #[test]
    fn mgu_is_most_general_on_samples() {
        // mgu of p(X, b) and p(a, Y) must map X↦a, Y↦b and nothing else.
        let a = Atom::new("p", vec![Term::var("X"), Term::str("b")]);
        let b = Atom::new("p", vec![Term::str("a"), Term::var("Y")]);
        let s = mgu(&a, &b).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.apply_term(&Term::var("X")), Term::str("a"));
        assert_eq!(s.apply_term(&Term::var("Y")), Term::str("b"));
        let _ = Var::new("X"); // silence unused import on some cfgs
    }
}
