//! A sound decision procedure for conjunctions of comparison literals.
//!
//! The residue method needs two judgements about sets of evaluable atoms
//! (`X = Y`, `Age > 30`, `Name1 = "john"`, …):
//!
//! * **Satisfiability** — after a residue adds a comparison to a query, an
//!   unsatisfiable set means the query is contradictory and need not be
//!   evaluated (Example 1 and Application 1 of the paper).
//! * **Implication** — a comparison implied by the rest of the set is
//!   redundant and can be removed; implication is also how a residue's
//!   evaluable body literals are matched against the query.
//!
//! The solver treats the numeric domain as *dense* (reals): `X > 3 ∧ X < 4`
//! is satisfiable. This is sound for contradiction detection (it never
//! reports a false contradiction) and matches the paper's examples, which
//! never rely on integer gaps. Implication is decided as
//! `unsat(set ∪ {¬c})`, which is likewise sound.
//!
//! Implementation: a union-find over term nodes for equalities, plus a
//! transitive closure over `≤`/`<` edges where strictness is the path
//! maximum. Non-strict cycles merge their nodes; a strict cycle, a merged
//! disequality, two distinct constants in one class, or a derived
//! constant-to-constant edge that contradicts the real order each yield
//! *unsatisfiable*.

use crate::atom::{CmpOp, Comparison};
use crate::term::{Const, Term};
use std::collections::HashMap;

/// Result of a satisfiability check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sat {
    /// The constraint set has a model.
    Satisfiable,
    /// The constraint set is contradictory.
    Unsatisfiable,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Strict {
    NonStrict,
    Strict,
}

/// A conjunction of comparison constraints over variables and constants.
#[derive(Debug, Clone, Default)]
pub struct ConstraintSet {
    nodes: Vec<Term>,
    index: HashMap<Term, usize>,
    /// Asserted equalities (pairs of node ids).
    eqs: Vec<(usize, usize)>,
    /// Asserted `a ≤ b` / `a < b` edges.
    edges: Vec<(usize, usize, Strict)>,
    /// Asserted disequalities.
    diseqs: Vec<(usize, usize)>,
    /// Set when an assertion is immediately inconsistent (e.g. `"a" < 3`).
    poisoned: bool,
    /// Memo of [`ConstraintSet::check`] for the current assertions
    /// (cleared by `assert_cmp`). Lets repeated checks — and the
    /// incremental probe inside [`ConstraintSet::sat_with`] — skip
    /// recomputation on an unchanged set.
    checked: std::cell::Cell<Option<Sat>>,
}

impl ConstraintSet {
    /// An empty (trivially satisfiable) constraint set.
    pub fn new() -> Self {
        ConstraintSet::default()
    }

    /// Build a constraint set from comparisons.
    pub fn from_comparisons<'a>(cmps: impl IntoIterator<Item = &'a Comparison>) -> Self {
        let mut s = ConstraintSet::new();
        for c in cmps {
            s.assert_cmp(c);
        }
        s
    }

    fn node(&mut self, t: &Term) -> usize {
        if let Some(&i) = self.index.get(t) {
            return i;
        }
        let i = self.nodes.len();
        self.nodes.push(*t);
        self.index.insert(*t, i);
        i
    }

    /// Assert a comparison. Returns `self` satisfiability *after* the
    /// assertion (recomputed from scratch; cheap at query sizes).
    pub fn assert_cmp(&mut self, c: &Comparison) -> Sat {
        let l = self.node(&c.lhs);
        let r = self.node(&c.rhs);
        // Order comparisons between incomparable constant types poison the
        // set immediately (a query `"a" < 3` can never hold).
        if let (Term::Const(a), Term::Const(b)) = (&c.lhs, &c.rhs) {
            let order_op = !matches!(c.op, CmpOp::Eq | CmpOp::Ne);
            if order_op && a.order(b).is_none() {
                self.poisoned = true;
            }
        }
        match c.op {
            CmpOp::Eq => self.eqs.push((l, r)),
            CmpOp::Ne => self.diseqs.push((l, r)),
            CmpOp::Lt => self.edges.push((l, r, Strict::Strict)),
            CmpOp::Le => self.edges.push((l, r, Strict::NonStrict)),
            CmpOp::Gt => self.edges.push((r, l, Strict::Strict)),
            CmpOp::Ge => self.edges.push((r, l, Strict::NonStrict)),
        }
        self.checked.set(None);
        self.check()
    }

    /// Interval fast path for the dominant query shape: no equalities, no
    /// disequalities, and every order edge touching a constant (var–const
    /// bounds and ground const–const assertions). In that fragment the
    /// closure the general algorithm computes collapses to pairwise
    /// lower-bound × upper-bound checks per variable — every cycle through
    /// a variable alternates const→var→const, so the only derivable
    /// const–const relations are exactly those pairs — making this
    /// decision-for-decision identical to the general path, just without
    /// the union-find, hash maps, or Floyd–Warshall. Returns `None` when
    /// the constraint set (or the extra probe edge) falls outside the
    /// fragment.
    fn bounds_sat(&self, extra: Option<(&Term, &Term, Strict)>) -> Option<Sat> {
        if !self.eqs.is_empty() || !self.diseqs.is_empty() {
            return None;
        }
        // Allocation-free on purpose: this runs twice per residue
        // candidate, and edge counts are query-sized (a handful), so
        // O(E²) pair scans beat building per-variable bound lists.
        let edge = |k: usize| -> (&Term, &Term, Strict) {
            if k < self.edges.len() {
                let (a, b, s) = self.edges[k];
                (&self.nodes[a], &self.nodes[b], s)
            } else {
                extra.expect("index past own edges only with an extra edge")
            }
        };
        let ordered = |lo: &Const, hi: &Const, s: Strict| -> bool {
            let op = if s == Strict::Strict {
                CmpOp::Lt
            } else {
                CmpOp::Le
            };
            matches!(lo.order(hi), Some(ord) if op.test(ord))
        };
        let total = self.edges.len() + usize::from(extra.is_some());
        for k in 0..total {
            match edge(k) {
                (Term::Const(ca), Term::Const(cb), s) if !ordered(ca, cb, s) => {
                    return Some(Sat::Unsatisfiable);
                }
                (Term::Var(_), Term::Var(_), _) => return None,
                _ => {}
            }
        }
        for k1 in 0..total {
            let (Term::Const(lo), Term::Var(v1), s1) = edge(k1) else {
                continue;
            };
            for k2 in 0..total {
                let (Term::Var(v2), Term::Const(hi), s2) = edge(k2) else {
                    continue;
                };
                if v1 == v2 && !ordered(lo, hi, s1.max(s2)) {
                    return Some(Sat::Unsatisfiable);
                }
            }
        }
        Some(Sat::Satisfiable)
    }

    /// Satisfiability of `self ∧ c` without mutating or cloning `self`.
    /// Decision-identical to `self.clone().assert_cmp(c)`.
    pub fn sat_with(&self, c: &Comparison) -> Sat {
        if self.poisoned {
            return Sat::Unsatisfiable;
        }
        if let (Term::Const(a), Term::Const(b)) = (&c.lhs, &c.rhs) {
            let order_op = !matches!(c.op, CmpOp::Eq | CmpOp::Ne);
            if order_op && a.order(b).is_none() {
                return Sat::Unsatisfiable;
            }
        }
        let extra = match c.op {
            CmpOp::Lt => Some((&c.lhs, &c.rhs, Strict::Strict)),
            CmpOp::Le => Some((&c.lhs, &c.rhs, Strict::NonStrict)),
            CmpOp::Gt => Some((&c.rhs, &c.lhs, Strict::Strict)),
            CmpOp::Ge => Some((&c.rhs, &c.lhs, Strict::NonStrict)),
            CmpOp::Eq | CmpOp::Ne => None,
        };
        if let Some(edge) = extra {
            if self.checked.get() == Some(Sat::Satisfiable) {
                if let Some(sat) = self.bounds_sat_incremental(edge) {
                    return sat;
                }
            }
            if let Some(sat) = self.bounds_sat(Some(edge)) {
                return sat;
            }
        }
        let mut probe = self.clone();
        probe.assert_cmp(c)
    }

    /// Incremental form of [`ConstraintSet::bounds_sat`] for a set
    /// already known satisfiable: only const–const triples *through the
    /// extra edge* can newly violate the real order, so one scan over
    /// the existing edges (pairing the extra bound against the same
    /// variable's opposite bounds) decides. Bails out (`None`) on any
    /// var–var edge — there, violations can route around the extra
    /// edge's variable — or outside the fragment.
    fn bounds_sat_incremental(&self, extra: (&Term, &Term, Strict)) -> Option<Sat> {
        if !self.eqs.is_empty() || !self.diseqs.is_empty() {
            return None;
        }
        let ordered = |lo: &Const, hi: &Const, s: Strict| -> bool {
            let op = if s == Strict::Strict {
                CmpOp::Lt
            } else {
                CmpOp::Le
            };
            matches!(lo.order(hi), Some(ord) if op.test(ord))
        };
        match extra {
            (Term::Const(ca), Term::Const(cb), s) => {
                // A ground extra edge composes with the (already
                // consistent) rest only transitively; its own validity
                // decides.
                if self.edges.iter().any(|&(a, b, _)| {
                    matches!(self.nodes[a], Term::Var(_)) && matches!(self.nodes[b], Term::Var(_))
                }) {
                    return None;
                }
                Some(if ordered(ca, cb, s) {
                    Sat::Satisfiable
                } else {
                    Sat::Unsatisfiable
                })
            }
            (Term::Const(lo), Term::Var(v), s1) => {
                for &(a, b, s2) in &self.edges {
                    match (&self.nodes[a], &self.nodes[b]) {
                        (Term::Var(_), Term::Var(_)) => return None,
                        (Term::Var(v2), Term::Const(hi))
                            if v2 == v && !ordered(lo, hi, s1.max(s2)) =>
                        {
                            return Some(Sat::Unsatisfiable);
                        }
                        _ => {}
                    }
                }
                Some(Sat::Satisfiable)
            }
            (Term::Var(v), Term::Const(hi), s1) => {
                for &(a, b, s2) in &self.edges {
                    match (&self.nodes[a], &self.nodes[b]) {
                        (Term::Var(_), Term::Var(_)) => return None,
                        (Term::Const(lo), Term::Var(v2))
                            if v2 == v && !ordered(lo, hi, s1.max(s2)) =>
                        {
                            return Some(Sat::Unsatisfiable);
                        }
                        _ => {}
                    }
                }
                Some(Sat::Satisfiable)
            }
            (Term::Var(_), Term::Var(_), _) => None,
        }
    }

    /// Check satisfiability of the currently asserted constraints.
    pub fn check(&self) -> Sat {
        if let Some(s) = self.checked.get() {
            return s;
        }
        let s = self.check_uncached();
        self.checked.set(Some(s));
        s
    }

    fn check_uncached(&self) -> Sat {
        if self.poisoned {
            return Sat::Unsatisfiable;
        }
        if let Some(sat) = self.bounds_sat(None) {
            return sat;
        }
        let n = self.nodes.len();
        let mut uf = UnionFind::new(n);
        for &(a, b) in &self.eqs {
            uf.union(a, b);
        }
        loop {
            // Representative-level closure over order edges.
            let mut reach: HashMap<(usize, usize), Strict> = HashMap::new();
            let add = |m: &mut HashMap<(usize, usize), Strict>, a: usize, b: usize, s: Strict| {
                let e = m.entry((a, b)).or_insert(s);
                if s > *e {
                    *e = s;
                }
            };
            for &(a, b, s) in &self.edges {
                add(&mut reach, uf.find(a), uf.find(b), s);
            }
            // Implicit edges between comparable constants reflect the real
            // order, so that e.g. `30 < X, X < 18` closes through `30 → 18`
            // and is caught against `18 < 30`.
            // (We only need the *check* direction: derived const→const
            // edges are validated below against Const::order.)
            let reps: Vec<usize> = {
                let mut r: Vec<usize> = (0..n).map(|i| uf.find(i)).collect();
                r.sort_unstable();
                r.dedup();
                r
            };
            // Floyd–Warshall with strictness as path maximum.
            let mut closed = reach.clone();
            for &k in &reps {
                for &i in &reps {
                    let Some(&s1) = closed.get(&(i, k)) else {
                        continue;
                    };
                    for &j in &reps {
                        let Some(&s2) = closed.get(&(k, j)) else {
                            continue;
                        };
                        let s = s1.max(s2);
                        let e = closed.entry((i, j)).or_insert(s);
                        if s > *e {
                            *e = s;
                        }
                    }
                }
            }
            // Strict self-loop ⇒ unsat.
            for &i in &reps {
                if closed.get(&(i, i)) == Some(&Strict::Strict) {
                    return Sat::Unsatisfiable;
                }
            }
            // Pin each class to its constant (if any); two distinct
            // constants in one class ⇒ unsat.
            let mut class_const: HashMap<usize, &Const> = HashMap::new();
            for (i, t) in self.nodes.iter().enumerate() {
                if let Term::Const(c) = t {
                    let rep = uf.find(i);
                    if let Some(prev) = class_const.get(&rep) {
                        if !prev.same_value(c) {
                            return Sat::Unsatisfiable;
                        }
                    } else {
                        class_const.insert(rep, c);
                    }
                }
            }
            // Validate derived constant-to-constant relations against the
            // real order.
            for (&(a, b), &s) in &closed {
                if a == b {
                    continue;
                }
                if let (Some(&ca), Some(&cb)) = (class_const.get(&a), class_const.get(&b)) {
                    match ca.order(cb) {
                        None => return Sat::Unsatisfiable,
                        Some(ord) => {
                            let op = if s == Strict::Strict {
                                CmpOp::Lt
                            } else {
                                CmpOp::Le
                            };
                            if !op.test(ord) {
                                return Sat::Unsatisfiable;
                            }
                        }
                    }
                }
            }
            // Non-strict cycles merge their endpoints; iterate to fixpoint.
            let mut merged = false;
            for (&(a, b), &s) in &closed {
                if a != b
                    && s == Strict::NonStrict
                    && closed.get(&(b, a)).copied() == Some(Strict::NonStrict)
                    && uf.find(a) != uf.find(b)
                {
                    uf.union(a, b);
                    merged = true;
                }
            }
            if !merged {
                // Disequality violated by the final classes ⇒ unsat.
                for &(a, b) in &self.diseqs {
                    let (ra, rb) = (uf.find(a), uf.find(b));
                    if ra == rb {
                        return Sat::Unsatisfiable;
                    }
                    // Classes pinned to the same constant value (covers
                    // syntactically distinct but equal constants too).
                    if let (Some(&x), Some(&y)) = (class_const.get(&ra), class_const.get(&rb)) {
                        if x.same_value(y) {
                            return Sat::Unsatisfiable;
                        }
                    }
                }
                return Sat::Satisfiable;
            }
        }
    }

    /// Whether the set entails the given comparison, decided as
    /// `unsat(self ∧ ¬c)`. Sound; incomplete only for disjunctive
    /// disequality reasoning.
    pub fn implies(&self, c: &Comparison) -> bool {
        // Ground comparisons decide directly where possible.
        if let (Term::Const(a), Term::Const(b)) = (&c.lhs, &c.rhs) {
            match c.op {
                CmpOp::Eq => return a.same_value(b),
                CmpOp::Ne => return !a.same_value(b),
                _ => {
                    if let Some(ord) = a.order(b) {
                        return c.op.test(ord);
                    }
                }
            }
        }
        self.sat_with(&c.negate()) == Sat::Unsatisfiable
    }

    /// Whether the two terms are entailed equal.
    pub fn entails_equal(&self, a: &Term, b: &Term) -> bool {
        self.implies(&Comparison::eq(*a, *b))
    }
}

#[derive(Debug, Clone)]
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra.max(rb)] = ra.min(rb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmp(l: Term, op: CmpOp, r: Term) -> Comparison {
        Comparison::new(l, op, r)
    }
    fn v(n: &str) -> Term {
        Term::var(n)
    }
    fn i(x: i64) -> Term {
        Term::int(x)
    }

    #[test]
    fn example1_contradiction_age_lt18_gt30() {
        // The paper's Example 1: Age < 18 together with residue Age > 30.
        let mut s = ConstraintSet::new();
        assert_eq!(
            s.assert_cmp(&cmp(v("Age"), CmpOp::Lt, i(18))),
            Sat::Satisfiable
        );
        assert_eq!(
            s.assert_cmp(&cmp(v("Age"), CmpOp::Gt, i(30))),
            Sat::Unsatisfiable
        );
    }

    #[test]
    fn application1_contradiction_v_lt1000_gt3000() {
        // Application 1: V < 1000 together with residue V > 3000.
        let s = ConstraintSet::from_comparisons(&[
            cmp(v("V"), CmpOp::Lt, i(1000)),
            cmp(v("V"), CmpOp::Gt, i(3000)),
        ]);
        assert_eq!(s.check(), Sat::Unsatisfiable);
    }

    #[test]
    fn transitive_chains() {
        let s = ConstraintSet::from_comparisons(&[
            cmp(v("X"), CmpOp::Lt, v("Y")),
            cmp(v("Y"), CmpOp::Le, v("Z")),
            cmp(v("Z"), CmpOp::Lt, v("X")),
        ]);
        assert_eq!(s.check(), Sat::Unsatisfiable);
        let s2 = ConstraintSet::from_comparisons(&[
            cmp(v("X"), CmpOp::Le, v("Y")),
            cmp(v("Y"), CmpOp::Le, v("Z")),
            cmp(v("Z"), CmpOp::Le, v("X")),
        ]);
        assert_eq!(s2.check(), Sat::Satisfiable); // all equal is a model
    }

    #[test]
    fn nonstrict_cycle_merges_and_violates_diseq() {
        let s = ConstraintSet::from_comparisons(&[
            cmp(v("X"), CmpOp::Le, v("Y")),
            cmp(v("Y"), CmpOp::Le, v("X")),
            cmp(v("X"), CmpOp::Ne, v("Y")),
        ]);
        assert_eq!(s.check(), Sat::Unsatisfiable);
    }

    #[test]
    fn equality_pins_constants() {
        let s = ConstraintSet::from_comparisons(&[
            cmp(v("X"), CmpOp::Eq, i(3)),
            cmp(v("X"), CmpOp::Eq, i(4)),
        ]);
        assert_eq!(s.check(), Sat::Unsatisfiable);
        let s2 = ConstraintSet::from_comparisons(&[
            cmp(v("X"), CmpOp::Eq, i(3)),
            cmp(v("Y"), CmpOp::Eq, v("X")),
            cmp(v("Y"), CmpOp::Gt, i(2)),
        ]);
        assert_eq!(s2.check(), Sat::Satisfiable);
        let s3 = ConstraintSet::from_comparisons(&[
            cmp(v("X"), CmpOp::Eq, i(3)),
            cmp(v("Y"), CmpOp::Eq, v("X")),
            cmp(v("Y"), CmpOp::Gt, i(3)),
        ]);
        assert_eq!(s3.check(), Sat::Unsatisfiable);
    }

    #[test]
    fn string_equality_and_order() {
        let s = ConstraintSet::from_comparisons(&[
            cmp(v("N"), CmpOp::Eq, Term::str("john")),
            cmp(v("N"), CmpOp::Eq, Term::str("james")),
        ]);
        assert_eq!(s.check(), Sat::Unsatisfiable);
        let s2 = ConstraintSet::from_comparisons(&[
            cmp(v("N"), CmpOp::Gt, Term::str("a")),
            cmp(v("N"), CmpOp::Lt, Term::str("b")),
        ]);
        assert_eq!(s2.check(), Sat::Satisfiable);
    }

    #[test]
    fn cross_type_order_is_unsat() {
        let s = ConstraintSet::from_comparisons(&[cmp(Term::str("a"), CmpOp::Lt, i(3))]);
        assert_eq!(s.check(), Sat::Unsatisfiable);
        // But cross-type disequality is fine (always true).
        let s2 = ConstraintSet::from_comparisons(&[cmp(Term::str("a"), CmpOp::Ne, i(3))]);
        assert_eq!(s2.check(), Sat::Satisfiable);
        // Cross-type equality is unsat.
        let s3 = ConstraintSet::from_comparisons(&[cmp(Term::str("a"), CmpOp::Eq, i(3))]);
        assert_eq!(s3.check(), Sat::Unsatisfiable);
    }

    #[test]
    fn dense_domain_gap_is_satisfiable() {
        // Over the reals X with 3 < X < 4 has a model; the solver must NOT
        // report a contradiction (sound w.r.t. the dense interpretation).
        let s = ConstraintSet::from_comparisons(&[
            cmp(v("X"), CmpOp::Gt, i(3)),
            cmp(v("X"), CmpOp::Lt, i(4)),
        ]);
        assert_eq!(s.check(), Sat::Satisfiable);
    }

    #[test]
    fn implication_basics() {
        let s = ConstraintSet::from_comparisons(&[cmp(v("X"), CmpOp::Gt, i(30))]);
        assert!(s.implies(&cmp(v("X"), CmpOp::Gt, i(20))));
        assert!(s.implies(&cmp(v("X"), CmpOp::Ge, i(30))));
        assert!(s.implies(&cmp(v("X"), CmpOp::Ne, i(30))));
        assert!(!s.implies(&cmp(v("X"), CmpOp::Gt, i(40))));
        assert!(!s.implies(&cmp(v("X"), CmpOp::Lt, i(40))));
    }

    #[test]
    fn implication_via_equalities() {
        let s = ConstraintSet::from_comparisons(&[
            cmp(v("X"), CmpOp::Eq, v("Y")),
            cmp(v("Y"), CmpOp::Eq, v("Z")),
        ]);
        assert!(s.entails_equal(&v("X"), &v("Z")));
        assert!(s.implies(&cmp(v("Z"), CmpOp::Eq, v("X"))));
        assert!(!s.entails_equal(&v("X"), &v("W")));
    }

    #[test]
    fn implication_antisymmetry() {
        let s = ConstraintSet::from_comparisons(&[
            cmp(v("X"), CmpOp::Le, v("Y")),
            cmp(v("Y"), CmpOp::Le, v("X")),
        ]);
        assert!(s.entails_equal(&v("X"), &v("Y")));
    }

    #[test]
    fn ground_implication_fast_path() {
        let s = ConstraintSet::new();
        assert!(s.implies(&cmp(i(3), CmpOp::Lt, i(4))));
        assert!(!s.implies(&cmp(i(4), CmpOp::Lt, i(3))));
        assert!(s.implies(&cmp(Term::str("a"), CmpOp::Ne, i(3))));
        assert!(s.implies(&cmp(Term::real(3.0), CmpOp::Eq, i(3))));
    }

    #[test]
    fn mixed_int_real_bounds() {
        let s = ConstraintSet::from_comparisons(&[
            cmp(v("X"), CmpOp::Gt, Term::real(0.5)),
            cmp(v("X"), CmpOp::Lt, i(0)),
        ]);
        assert_eq!(s.check(), Sat::Unsatisfiable);
    }

    #[test]
    fn empty_set_is_satisfiable_and_implies_nothing_contingent() {
        let s = ConstraintSet::new();
        assert_eq!(s.check(), Sat::Satisfiable);
        assert!(!s.implies(&cmp(v("X"), CmpOp::Lt, v("Y"))));
        assert!(s.implies(&cmp(v("X"), CmpOp::Eq, v("X"))));
        assert!(s.implies(&cmp(v("X"), CmpOp::Le, v("X"))));
    }

    /// The interval fast path must decide exactly like the general
    /// union-find/closure path: enumerate small bound-only constraint
    /// sets and compare `check()`/`sat_with()` (which take the fast
    /// path) against a set with a redundant variable–variable tautology
    /// appended (which forces the general path without changing the
    /// decision).
    #[test]
    fn bounds_fast_path_matches_general_path() {
        let ops = [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];
        let consts = [0i64, 5, 10];
        let mut cases = 0usize;
        for &op1 in &ops {
            for &c1 in &consts {
                for &op2 in &ops {
                    for &c2 in &consts {
                        for &op3 in &ops {
                            for &c3 in &consts {
                                let cmps = [
                                    cmp(v("X"), op1, i(c1)),
                                    cmp(v("X"), op2, i(c2)),
                                    cmp(v("Y"), op3, i(c3)),
                                ];
                                let fast = ConstraintSet::from_comparisons(&cmps);
                                assert!(fast.bounds_sat(None).is_some());
                                let mut general = ConstraintSet::from_comparisons(&cmps);
                                // `Z ≤ W` touches no constant, so the fast
                                // path refuses and the general closure runs.
                                general.assert_cmp(&cmp(v("Z"), CmpOp::Le, v("W")));
                                assert!(general.bounds_sat(None).is_none());
                                assert_eq!(fast.check(), general.check(), "{cmps:?}");
                                for &op in &ops {
                                    for &k in &consts {
                                        let probe = cmp(v("X"), op, i(k));
                                        assert_eq!(
                                            fast.sat_with(&probe),
                                            {
                                                let mut g = general.clone();
                                                g.assert_cmp(&probe)
                                            },
                                            "{cmps:?} + {probe:?}"
                                        );
                                        assert_eq!(
                                            fast.implies(&probe),
                                            general.implies(&probe),
                                            "{cmps:?} => {probe:?}"
                                        );
                                    }
                                }
                                cases += 1;
                            }
                        }
                    }
                }
            }
        }
        assert_eq!(cases, 1728);
    }

    #[test]
    fn ground_const_edges_in_fast_path() {
        // Asserted const–const order edges are validated directly.
        let s = ConstraintSet::from_comparisons(&[cmp(i(3), CmpOp::Lt, i(4))]);
        assert_eq!(s.check(), Sat::Satisfiable);
        let s = ConstraintSet::from_comparisons(&[cmp(i(4), CmpOp::Lt, i(3))]);
        assert_eq!(s.check(), Sat::Unsatisfiable);
        // Incomparable constant types refuse order outright.
        let s = ConstraintSet::from_comparisons(&[
            cmp(v("X"), CmpOp::Ge, Term::str("a")),
            cmp(v("X"), CmpOp::Le, i(3)),
        ]);
        assert_eq!(s.check(), Sat::Unsatisfiable);
    }
}
