//! Semantic compilation: attaching residues to relations.
//!
//! Following the residue method (Section 2 of the paper; Chakravarthy,
//! Grant & Minker 1990), each integrity constraint `H ← B1, …, Bn` is
//! compiled, *before any query arrives*, into residues by partial
//! subsumption: for each positive database literal `Bi`, the fragment
//!
//! ```text
//!   anchor:  Bi
//!   rest:    B1, …, Bi-1, Bi+1, …, Bn
//!   head:    H
//! ```
//!
//! is attached to `Bi`'s relation. At query time, a residue anchored at a
//! relation occurring in the query applies if its `rest` also maps into
//! the query; its (instantiated) head is then a formula true of every
//! answer, usable to add or remove literals, or to detect a contradiction.
//!
//! The compiler also performs the paper's IC-derivation steps
//! (Application 2, the IC4 + IC5 ⇒ IC6 ⇒ IC6′ chain):
//!
//! * **Body strengthening**: given an inclusion constraint
//!   `c1(…) ← c2(…)` (subclass hierarchy) and any IC with `c2` in its
//!   body, a derived IC adds the implied `c1` atom to the body
//!   (IC4 + IC5 ⇒ IC6).
//! * **Contrapositives**: from `H ← B1,…,Bn` derive
//!   `¬Bi ← B1,…,Bi-1,Bi+1,…,Bn, ¬H` whenever the remaining body still
//!   contains a positive database literal to anchor at (IC6 ⇒ IC6′).

use crate::atom::{Atom, Literal, PredSym};
use crate::clause::{Constraint, ConstraintHead};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::unify::mgu;
use sqo_obs as obs;

/// A compiled integrity-constraint fragment attached to a relation.
#[derive(Debug, Clone)]
pub struct Residue {
    /// Compile-order ordinal of this residue within its [`ResidueSet`];
    /// the stable half of the provenance id (see [`Residue::provenance_id`]).
    pub id: u32,
    /// Index of the originating constraint in [`ResidueSet::constraints`].
    pub ic_index: usize,
    /// Name of the originating constraint, if any (e.g. `"IC7"`).
    pub ic_name: Option<String>,
    /// The body literal this residue is anchored at (the relation it is
    /// "attached to" in the paper's terminology).
    pub anchor: Atom,
    /// The remaining body literals that must also map into a query for the
    /// residue to apply.
    pub rest: Vec<Literal>,
    /// The residue head: what becomes true of every query answer.
    pub head: ConstraintHead,
    /// Sorted, deduplicated variables of the whole residue (anchor,
    /// rest, and head), precomputed at compile time so the per-query
    /// standardize-apart clash check does not rebuild it.
    pub vars: Vec<crate::term::Var>,
    /// Lazily-built copy of this residue with every variable renamed
    /// into a reserved namespace no parser produces, so
    /// [`standardize_residue_apart`] can return a borrow instead of
    /// renaming afresh on every query it is applied to.
    apart: std::sync::OnceLock<Box<Residue>>,
}

/// Equality on the semantic fields only — the lazy standardized copy is
/// derived data.
impl PartialEq for Residue {
    fn eq(&self, other: &Self) -> bool {
        self.ic_index == other.ic_index
            && self.ic_name == other.ic_name
            && self.anchor == other.anchor
            && self.rest == other.rest
            && self.head == other.head
    }
}

impl Eq for Residue {}

/// The sorted, deduplicated variable set of a residue's parts.
fn residue_vars(anchor: &Atom, rest: &[Literal], head: &ConstraintHead) -> Vec<crate::term::Var> {
    let mut vars: Vec<crate::term::Var> = Vec::with_capacity(anchor.args.len() + 4);
    match head {
        ConstraintHead::None => {}
        ConstraintHead::Atom(a) | ConstraintHead::NegAtom(a) => vars.extend(a.vars().copied()),
        ConstraintHead::Cmp(c) => vars.extend(c.vars().copied()),
    }
    vars.extend(anchor.vars().copied());
    for l in rest {
        match l {
            Literal::Pos(a) | Literal::Neg(a) => vars.extend(a.vars().copied()),
            Literal::Cmp(c) => vars.extend(c.vars().copied()),
        }
    }
    vars.sort_unstable();
    vars.dedup();
    vars
}

impl Residue {
    /// Stable provenance id of the form `r<ordinal>@<anchor-pred>`, e.g.
    /// `r3@faculty`. The ordinal is the compile-order position of the
    /// residue in its [`ResidueSet`], so ids are deterministic for a given
    /// schema + IC set and let `explain()` output name the exact compiled
    /// fragment that drove a rewrite.
    pub fn provenance_id(&self) -> String {
        format!("r{}@{}", self.id, self.anchor.pred)
    }

    /// Whether a matching substitution can ever bind `v`: only variables
    /// occurring in the anchor or in a positive/negative `rest` literal
    /// are bound by body matching (comparison literals are checked, never
    /// matched, so they bind nothing).
    fn bindable(&self, v: &crate::term::Var) -> bool {
        self.anchor.vars().any(|w| w == v)
            || self.rest.iter().any(|l| match l {
                Literal::Pos(a) | Literal::Neg(a) => a.vars().any(|w| w == v),
                Literal::Cmp(_) => false,
            })
    }

    /// Exactness prefilter: `true` when applying this residue can never
    /// contribute a candidate or a contradiction to *any* query, so the
    /// application can be skipped wholesale (the OBDA notion of an
    /// exactly-covered assertion — the residue head carries no
    /// information the query's own atoms could absorb).
    ///
    /// The classification is purely syntactic, so skipping is provably
    /// equivalent to running the per-application checks:
    ///
    /// * A comparison head with a variable no body literal can bind keeps
    ///   that variable foreign under every matching substitution, so the
    ///   foreign-variable check discards every instantiation.
    /// * A negated-atom head none of whose variables are bindable is
    ///   never anchored to the query, so the anchoring check discards
    ///   every instantiation (a ground negated head included).
    ///
    /// Denial heads (contradiction signals), atom heads, and every other
    /// comparison head are kept.
    pub fn exact_skippable(&self) -> bool {
        match &self.head {
            ConstraintHead::None | ConstraintHead::Atom(_) => false,
            ConstraintHead::Cmp(c) => c.vars().any(|v| !self.bindable(v)),
            ConstraintHead::NegAtom(a) => a.vars().all(|v| !self.bindable(v)),
        }
    }
}

impl std::fmt::Display for Residue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{{}", self.head)?;
        write!(f, " <-")?;
        for (i, l) in self.rest.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, " {l}")?;
        }
        write!(f, "}} @ {}", self.anchor.pred)
    }
}

/// Options controlling semantic compilation.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Derive strengthened ICs through inclusion constraints
    /// (IC4 + IC5 ⇒ IC6).
    pub derive_strengthened: bool,
    /// Derive contrapositive ICs (IC6 ⇒ IC6′), enabling scope reduction.
    pub derive_contrapositives: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            derive_strengthened: true,
            derive_contrapositives: true,
        }
    }
}

/// The result of semantic compilation: all (original and derived)
/// constraints, and their residues indexed by anchor relation.
#[derive(Debug, Clone, Default)]
pub struct ResidueSet {
    /// Original constraints followed by derived ones.
    pub constraints: Vec<Constraint>,
    by_pred: FxHashMap<PredSym, Vec<Residue>>,
    residue_count: usize,
}

impl ResidueSet {
    /// Compile a set of integrity constraints with default options.
    pub fn compile(constraints: Vec<Constraint>) -> Self {
        Self::compile_with(constraints, &CompileOptions::default())
    }

    /// Compile a set of integrity constraints.
    pub fn compile_with(mut constraints: Vec<Constraint>, opts: &CompileOptions) -> Self {
        let _span = obs::span!("step1.residue_compile");
        if opts.derive_strengthened {
            // Saturate inclusion constraints transitively first, so a
            // two-hop hierarchy (faculty ⊆ employee ⊆ person) still
            // produces the one-hop inclusion the strengthening step needs.
            let closed = saturate_inclusions(&constraints);
            constraints.extend(closed);
            let derived = derive_strengthened(&constraints);
            constraints.extend(derived);
        }
        if opts.derive_contrapositives {
            let derived = derive_contrapositives(&constraints);
            constraints.extend(derived);
        }
        let mut by_pred: FxHashMap<PredSym, Vec<Residue>> =
            FxHashMap::with_capacity_and_hasher(constraints.len(), Default::default());
        let mut residue_count = 0;
        for (idx, ic) in constraints.iter().enumerate() {
            for (i, lit) in ic.body.iter().enumerate() {
                let Literal::Pos(anchor) = lit else { continue };
                let mut rest: Vec<Literal> = Vec::with_capacity(ic.body.len() - 1);
                rest.extend(
                    ic.body
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| *j != i)
                        .map(|(_, l)| l.clone()),
                );
                let vars = residue_vars(anchor, &rest, &ic.head);
                by_pred.entry(anchor.pred).or_default().push(Residue {
                    id: residue_count as u32,
                    ic_index: idx,
                    ic_name: ic.name.clone(),
                    anchor: anchor.clone(),
                    rest,
                    head: ic.head.clone(),
                    vars,
                    apart: std::sync::OnceLock::new(),
                });
                residue_count += 1;
            }
        }
        obs::add(obs::Counter::ResiduesAttached, residue_count as u64);
        ResidueSet {
            constraints,
            by_pred,
            residue_count,
        }
    }

    /// Residues attached to the given relation.
    pub fn residues_for(&self, pred: &PredSym) -> &[Residue] {
        self.by_pred.get(pred).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of residues across all relations.
    pub fn len(&self) -> usize {
        self.residue_count
    }

    /// Whether no residues were produced.
    pub fn is_empty(&self) -> bool {
        self.residue_count == 0
    }

    /// Iterate over all residues.
    pub fn iter(&self) -> impl Iterator<Item = &Residue> {
        self.by_pred.values().flatten()
    }
}

/// An inclusion constraint is `c1(args) ← c2(args')` with a single positive
/// body literal and an atom head (e.g. the subclass-hierarchy ICs of
/// Section 4.2).
fn as_inclusion(ic: &Constraint) -> Option<(&Atom, &Atom)> {
    let ConstraintHead::Atom(head) = &ic.head else {
        return None;
    };
    let [Literal::Pos(body)] = ic.body.as_slice() else {
        return None;
    };
    Some((head, body))
}

/// Transitively compose inclusion constraints: from `a(…) ← b(…)` and
/// `b(…) ← c(…)` derive `a(…) ← c(…)` (bounded fixpoint).
///
/// Inclusions are indexed by head predicate, so each composition round
/// pairs an upper inclusion only with the inclusions that can actually
/// feed its body, instead of scanning the full cross product.
fn saturate_inclusions(constraints: &[Constraint]) -> Vec<Constraint> {
    let mut all: Vec<Constraint> = constraints
        .iter()
        .filter(|c| as_inclusion(c).is_some())
        .cloned()
        .collect();
    // head pred → indices into `all`, and the (head, body) pred pairs
    // already present (for O(1) known-checks).
    let mut by_head: FxHashMap<PredSym, Vec<usize>> = FxHashMap::default();
    let mut known: FxHashSet<(PredSym, PredSym)> = FxHashSet::default();
    for (i, c) in all.iter().enumerate() {
        let (h, b) = as_inclusion(c).expect("filtered to inclusions");
        by_head.entry(h.pred).or_default().push(i);
        known.insert((h.pred, b.pred));
    }
    let mut derived: Vec<Constraint> = Vec::new();
    for _round in 0..constraints.len() {
        let mut new_ics: Vec<Constraint> = Vec::new();
        for ui in 0..all.len() {
            let upper = &all[ui];
            let Some((_u_head, u_body)) = as_inclusion(upper) else {
                continue;
            };
            let Some(lowers) = by_head.get(&u_body.pred) else {
                continue;
            };
            for &li in lowers {
                let lower = &all[li];
                let Some((l_head, _)) = as_inclusion(lower) else {
                    continue;
                };
                // Standardize the upper IC apart and unify its body with
                // the lower IC's head.
                let used = lower.vars();
                let upper_fresh = crate::subst::standardize_apart(upper, &used);
                let Some((u_head_f, u_body_f)) = as_inclusion(&upper_fresh) else {
                    continue;
                };
                let Some(theta) = mgu(u_body_f, l_head) else {
                    continue;
                };
                let new_head = theta.apply_atom(u_head_f);
                let new_body = theta.apply_body(&lower.body);
                // Skip trivial or already-known inclusions.
                if new_body
                    .iter()
                    .any(|l| matches!(l, Literal::Pos(a) if a.pred == new_head.pred))
                {
                    continue;
                }
                let candidate = Constraint {
                    name: match (&upper.name, &lower.name) {
                        (Some(a), Some(b)) => Some(format!("{a}∘{b}")),
                        _ => None,
                    },
                    head: ConstraintHead::Atom(new_head),
                    body: new_body,
                };
                let key = inclusion_key(&candidate).expect("candidate is an inclusion");
                if known.insert(key) {
                    new_ics.push(candidate);
                }
            }
        }
        if new_ics.is_empty() {
            break;
        }
        for c in &new_ics {
            let (h, _) = as_inclusion(c).expect("derived inclusions");
            by_head.entry(h.pred).or_default().push(all.len());
            all.push(c.clone());
        }
        derived.extend(new_ics);
    }
    derived
}

fn inclusion_key(c: &Constraint) -> Option<(PredSym, PredSym)> {
    as_inclusion(c).map(|(h, b)| (h.pred, b.pred))
}

/// Derive strengthened constraints: for each IC containing a positive body
/// atom `b` unifiable with an inclusion IC's body, add the inclusion's
/// (instantiated) head atom to the body. This reproduces the paper's
/// IC4 + IC5 ⇒ IC6 step: `Age ≥ 30 ← faculty(..)` becomes
/// `Age ≥ 30 ← faculty(..), person(..)`.
fn derive_strengthened(constraints: &[Constraint]) -> Vec<Constraint> {
    // Index inclusion ICs by their body predicate so each target body
    // literal only visits the inclusions that can strengthen it. The
    // emitted order (inclusion position, then body-literal index) is
    // observable downstream, so candidates carry a sort key.
    let mut inclusions_by_body: FxHashMap<PredSym, Vec<(usize, &Constraint)>> =
        FxHashMap::default();
    for (n, inc) in constraints.iter().enumerate() {
        if let Some((_, inc_body)) = as_inclusion(inc) {
            inclusions_by_body
                .entry(inc_body.pred)
                .or_default()
                .push((n, inc));
        }
    }
    let mut out = Vec::new();
    for ic in constraints {
        // Skip inclusion ICs themselves: strengthening them yields noise.
        if as_inclusion(ic).is_some() {
            continue;
        }
        let mut local: Vec<((usize, usize), Constraint)> = Vec::new();
        for (i, lit) in ic.body.iter().enumerate() {
            let Literal::Pos(b) = lit else { continue };
            let Some(incs) = inclusions_by_body.get(&b.pred) else {
                continue;
            };
            for &(n, inc) in incs {
                // Standardize the inclusion IC apart from the target IC.
                let used = ic.vars();
                let inc_fresh = crate::subst::standardize_apart(inc, &used);
                let Some((inc_head_f, inc_body_f)) = as_inclusion(&inc_fresh) else {
                    continue;
                };
                let Some(theta) = mgu(inc_body_f, b) else {
                    continue;
                };
                let new_atom = theta.apply_atom(inc_head_f);
                // Skip if the body already contains the implied atom.
                if ic
                    .body
                    .iter()
                    .any(|l| matches!(l, Literal::Pos(a) if *a == new_atom))
                {
                    continue;
                }
                let mut body = ic.body.clone();
                body.insert(i + 1, Literal::Pos(new_atom));
                let name = match (&ic.name, &inc.name) {
                    (Some(a), Some(b)) => Some(format!("{a}+{b}")),
                    _ => None,
                };
                local.push((
                    (n, i),
                    Constraint {
                        name,
                        head: ic.head.clone(),
                        body,
                    },
                ));
            }
        }
        local.sort_by_key(|(k, _)| *k);
        out.extend(local.into_iter().map(|(_, c)| c));
    }
    dedup_constraints(out)
}

/// Derive contrapositives: `H ← B` yields `¬Bi ← (B \ Bi), ¬H` for each
/// positive `Bi`, provided the remaining body retains a positive database
/// literal to anchor the resulting residue (and to keep it safe).
fn derive_contrapositives(constraints: &[Constraint]) -> Vec<Constraint> {
    let mut out = Vec::new();
    for ic in constraints {
        // The negated head becomes a body literal; denials contribute
        // nothing extra here (their residues already signal contradiction).
        let neg_head: Option<Literal> = match &ic.head {
            ConstraintHead::None => None,
            ConstraintHead::Atom(a) => Some(Literal::Neg(a.clone())),
            ConstraintHead::NegAtom(a) => Some(Literal::Pos(a.clone())),
            // Order-comparison heads only: negating an equality head (key
            // and functionality ICs) yields disequality-guarded residues
            // that are never usefully applicable — the equality form is
            // already exploited directly (join elimination) and as an egd.
            ConstraintHead::Cmp(c) if c.op != crate::atom::CmpOp::Eq => {
                Some(Literal::Cmp(c.negate()))
            }
            ConstraintHead::Cmp(_) => None,
        };
        let Some(neg_head) = neg_head else { continue };
        for (i, lit) in ic.body.iter().enumerate() {
            let Literal::Pos(b) = lit else { continue };
            let rest: Vec<Literal> = ic
                .body
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, l)| l.clone())
                .collect();
            // Anchorability: the remaining body must still contain a
            // positive database literal.
            if !rest.iter().any(Literal::is_positive) {
                continue;
            }
            let mut body = rest;
            body.push(neg_head.clone());
            out.push(Constraint {
                name: ic.name.as_ref().map(|n| format!("{n}'")),
                head: ConstraintHead::NegAtom(b.clone()),
                body,
            });
        }
    }
    dedup_constraints(out)
}

/// One token of a constraint's structural dedup key. The key is exact
/// (not a hash): two constraints share a key iff they have the same
/// head and body up to comparison orientation — the same equivalence
/// the old rendered-string key expressed, without the string building.
#[derive(PartialEq, Eq, Hash)]
enum KeyTok {
    Tag(u8),
    Pred(PredSym),
    T(crate::term::Term),
    Op(crate::atom::CmpOp),
}

fn key_atom(out: &mut Vec<KeyTok>, tag: u8, a: &Atom) {
    out.push(KeyTok::Tag(tag));
    out.push(KeyTok::Pred(a.pred));
    out.extend(a.args.iter().map(|t| KeyTok::T(*t)));
}

fn key_cmp(out: &mut Vec<KeyTok>, tag: u8, c: &crate::atom::Comparison) {
    let c = c.canonical();
    out.push(KeyTok::Tag(tag));
    out.push(KeyTok::Op(c.op));
    out.push(KeyTok::T(c.lhs));
    out.push(KeyTok::T(c.rhs));
}

fn constraint_key(ic: &Constraint) -> Vec<KeyTok> {
    let mut out = Vec::new();
    match &ic.head {
        ConstraintHead::None => out.push(KeyTok::Tag(0)),
        ConstraintHead::Atom(a) => key_atom(&mut out, 1, a),
        ConstraintHead::NegAtom(a) => key_atom(&mut out, 2, a),
        // The head comparison keeps its orientation, as the rendered
        // key did.
        ConstraintHead::Cmp(c) => {
            out.push(KeyTok::Tag(3));
            out.push(KeyTok::Op(c.op));
            out.push(KeyTok::T(c.lhs));
            out.push(KeyTok::T(c.rhs));
        }
    }
    for l in &ic.body {
        match l {
            Literal::Pos(a) => key_atom(&mut out, 4, a),
            Literal::Neg(a) => key_atom(&mut out, 5, a),
            Literal::Cmp(c) => key_cmp(&mut out, 6, c),
        }
    }
    out
}

fn dedup_constraints(ics: Vec<Constraint>) -> Vec<Constraint> {
    let mut seen: FxHashSet<Vec<KeyTok>> = FxHashSet::default();
    let mut out = Vec::new();
    for ic in ics {
        if seen.insert(constraint_key(&ic)) {
            out.push(ic);
        }
    }
    out
}

/// Apply a renaming substitution to a residue's three parts, rebuilding
/// the precomputed variable set.
fn apply_rename(r: &Residue, s: &crate::subst::Subst) -> Residue {
    let anchor = s.apply_atom(&r.anchor);
    let rest: Vec<Literal> = r.rest.iter().map(|l| s.apply_literal(l)).collect();
    let head = s.apply_head(&r.head);
    let vars = residue_vars(&anchor, &rest, &head);
    Residue {
        id: r.id,
        ic_index: r.ic_index,
        ic_name: r.ic_name.clone(),
        anchor,
        rest,
        head,
        vars,
        apart: std::sync::OnceLock::new(),
    }
}

/// Rename a residue's variables apart from a set of used variables.
/// Used at query-application time; matching requires the pattern's
/// variables to be disjoint from the query's (see
/// [`crate::unify::match_terms`]).
///
/// This sits on the inner loop of [`crate::transform::analyse`] — once
/// per attached residue per frontier query — so the common cases return
/// a borrow: either the residue itself (no clash), or its lazily-built
/// copy renamed into a reserved `\u{1}`-prefixed namespace no parser
/// produces. The renamed names are not observable downstream: matched
/// variables are substituted by query terms, and unmatched (foreign)
/// ones are either discarded or freshened into `NV*` query names before
/// they reach a candidate. Only the pathological case of a query that
/// itself uses reserved names pays for a per-call fresh renaming.
pub fn standardize_residue_apart<'r>(
    r: &'r Residue,
    used: &std::collections::BTreeSet<crate::term::Var>,
) -> std::borrow::Cow<'r, Residue> {
    use crate::term::{Term, Var};
    use std::borrow::Cow;
    if !r.vars.iter().any(|v| used.contains(v)) {
        return Cow::Borrowed(r);
    }
    let apart = r.apart.get_or_init(|| {
        let mut s = crate::subst::Subst::new();
        for v in &r.vars {
            s.bind(*v, Term::Var(Var::new(format!("\u{1}{}", v.name()))));
        }
        Box::new(apply_rename(r, &s))
    });
    if !apart.vars.iter().any(|v| used.contains(v)) {
        return Cow::Borrowed(apart);
    }
    let mut s = crate::subst::Subst::new();
    let mut counter = 0usize;
    for v in r.vars.iter().filter(|v| used.contains(v)) {
        loop {
            counter += 1;
            let fresh = Var::new(format!("{}_{counter}", v.name()));
            if !used.contains(&fresh) && r.vars.binary_search(&fresh).is_err() {
                s.bind(*v, Term::Var(fresh));
                break;
            }
        }
    }
    Cow::Owned(apply_rename(r, &s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{CmpOp, Comparison};
    use crate::term::Term;

    fn ic1() -> Constraint {
        // IC1: Salary > 40000 <- faculty(OID, Salary)
        Constraint::named(
            "IC1",
            ConstraintHead::Cmp(Comparison::new(
                Term::var("Salary"),
                CmpOp::Gt,
                Term::int(40000),
            )),
            vec![Literal::pos(
                "faculty",
                vec![Term::var("OID"), Term::var("Salary")],
            )],
        )
    }

    fn ic4() -> Constraint {
        // IC4: Age >= 30 <- faculty(X, Name, Age)
        Constraint::named(
            "IC4",
            ConstraintHead::Cmp(Comparison::new(Term::var("Age"), CmpOp::Ge, Term::int(30))),
            vec![Literal::pos(
                "faculty",
                vec![Term::var("X"), Term::var("Name"), Term::var("Age")],
            )],
        )
    }

    fn ic5() -> Constraint {
        // IC5: person(X, Name, Age) <- faculty(X, Name, Age)
        Constraint::named(
            "IC5",
            ConstraintHead::Atom(Atom::new(
                "person",
                vec![Term::var("X"), Term::var("Name"), Term::var("Age")],
            )),
            vec![Literal::pos(
                "faculty",
                vec![Term::var("X"), Term::var("Name"), Term::var("Age")],
            )],
        )
    }

    #[test]
    fn single_body_literal_residue() {
        let rs = ResidueSet::compile_with(
            vec![ic1()],
            &CompileOptions {
                derive_strengthened: false,
                derive_contrapositives: false,
            },
        );
        let rs_fac = rs.residues_for(&PredSym::new("faculty"));
        assert_eq!(rs_fac.len(), 1);
        assert!(rs_fac[0].rest.is_empty());
        assert_eq!(
            rs_fac[0].head,
            ConstraintHead::Cmp(Comparison::new(
                Term::var("Salary"),
                CmpOp::Gt,
                Term::int(40000)
            ))
        );
        assert_eq!(rs.residues_for(&PredSym::new("student")).len(), 0);
    }

    #[test]
    fn residue_per_body_literal() {
        // IC with two database literals yields a residue at each.
        let ic = Constraint::new(
            ConstraintHead::Cmp(Comparison::new(Term::var("A"), CmpOp::Lt, Term::var("B"))),
            vec![
                Literal::pos("p", vec![Term::var("X"), Term::var("A")]),
                Literal::pos("q", vec![Term::var("X"), Term::var("B")]),
            ],
        );
        let rs = ResidueSet::compile_with(
            vec![ic],
            &CompileOptions {
                derive_strengthened: false,
                derive_contrapositives: false,
            },
        );
        assert_eq!(rs.residues_for(&PredSym::new("p")).len(), 1);
        assert_eq!(rs.residues_for(&PredSym::new("q")).len(), 1);
        assert_eq!(rs.residues_for(&PredSym::new("p"))[0].rest.len(), 1);
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn ic4_ic5_derives_ic6_and_ic6_prime() {
        let rs = ResidueSet::compile(vec![ic4(), ic5()]);
        // IC6: Age >= 30 <- faculty(..), person(..)
        let ic6 = rs.constraints.iter().find(|c| {
            matches!(&c.head, ConstraintHead::Cmp(_))
                && c.body.len() == 2
                && c.body
                    .iter()
                    .any(|l| l.pred().map(|p| p.name()) == Some("person"))
        });
        assert!(
            ic6.is_some(),
            "IC6 should be derived: {:#?}",
            rs.constraints
        );
        // IC6': not faculty(..) <- person(..), Age < 30 — i.e. a residue
        // anchored at person with a NegAtom(faculty) head.
        let person_residues = rs.residues_for(&PredSym::new("person"));
        let scope = person_residues
            .iter()
            .find(|r| matches!(&r.head, ConstraintHead::NegAtom(a) if a.pred.name() == "faculty"));
        assert!(
            scope.is_some(),
            "IC6' residue at person: {person_residues:#?}"
        );
        let scope = scope.unwrap();
        // Its remaining body must contain the negated range comparison.
        assert!(scope
            .rest
            .iter()
            .any(|l| matches!(l, Literal::Cmp(c) if c.op == CmpOp::Lt)));
    }

    #[test]
    fn contrapositive_requires_anchor() {
        // Single-literal IC1 has no contrapositive (removing faculty leaves
        // nothing to anchor at).
        let rs = ResidueSet::compile(vec![ic1()]);
        assert!(rs
            .constraints
            .iter()
            .all(|c| !matches!(&c.head, ConstraintHead::NegAtom(_))));
    }

    #[test]
    fn denial_residue_has_empty_head() {
        let ic = Constraint::new(
            ConstraintHead::None,
            vec![
                Literal::pos("p", vec![Term::var("X")]),
                Literal::pos("q", vec![Term::var("X")]),
            ],
        );
        let rs = ResidueSet::compile(vec![ic]);
        let rp = rs.residues_for(&PredSym::new("p"));
        assert_eq!(rp.len(), 1);
        assert_eq!(rp[0].head, ConstraintHead::None);
    }

    #[test]
    fn standardize_residue_apart_avoids_query_vars() {
        let rs = ResidueSet::compile(vec![ic1()]);
        let r = &rs.residues_for(&PredSym::new("faculty"))[0];
        let used: std::collections::BTreeSet<_> = [
            crate::term::Var::new("Salary"),
            crate::term::Var::new("OID"),
        ]
        .into_iter()
        .collect();
        let fresh = standardize_residue_apart(r, &used);
        for v in fresh.anchor.vars() {
            assert!(!used.contains(v), "anchor var {v} clashes");
        }
    }

    #[test]
    fn derived_sets_are_deduplicated() {
        // Compiling the same IC twice should not duplicate derived ICs.
        let rs = ResidueSet::compile(vec![ic4(), ic4(), ic5()]);
        let neg_count = rs
            .constraints
            .iter()
            .filter(|c| matches!(&c.head, ConstraintHead::NegAtom(_)))
            .count();
        // Only the faculty-anchored contrapositive of derived IC6 family.
        assert!(neg_count >= 1);
        let keys: Vec<String> = rs.constraints.iter().map(|c| c.to_string()).collect();
        let mut dedup = keys.clone();
        dedup.sort();
        dedup.dedup();
        // Duplicates may exist between the two identical originals, but
        // derived constraints must be unique.
        let derived: Vec<_> = keys.iter().skip(3).collect();
        let mut d2 = derived.clone();
        d2.sort();
        d2.dedup();
        assert_eq!(derived.len(), d2.len());
    }

    #[test]
    fn residue_display() {
        let rs = ResidueSet::compile_with(
            vec![ic1()],
            &CompileOptions {
                derive_strengthened: false,
                derive_contrapositives: false,
            },
        );
        let r = &rs.residues_for(&PredSym::new("faculty"))[0];
        assert_eq!(r.to_string(), "{Salary > 40000 <-} @ faculty");
    }
}
