//! Semantic compilation: attaching residues to relations.
//!
//! Following the residue method (Section 2 of the paper; Chakravarthy,
//! Grant & Minker 1990), each integrity constraint `H ← B1, …, Bn` is
//! compiled, *before any query arrives*, into residues by partial
//! subsumption: for each positive database literal `Bi`, the fragment
//!
//! ```text
//!   anchor:  Bi
//!   rest:    B1, …, Bi-1, Bi+1, …, Bn
//!   head:    H
//! ```
//!
//! is attached to `Bi`'s relation. At query time, a residue anchored at a
//! relation occurring in the query applies if its `rest` also maps into
//! the query; its (instantiated) head is then a formula true of every
//! answer, usable to add or remove literals, or to detect a contradiction.
//!
//! The compiler also performs the paper's IC-derivation steps
//! (Application 2, the IC4 + IC5 ⇒ IC6 ⇒ IC6′ chain):
//!
//! * **Body strengthening**: given an inclusion constraint
//!   `c1(…) ← c2(…)` (subclass hierarchy) and any IC with `c2` in its
//!   body, a derived IC adds the implied `c1` atom to the body
//!   (IC4 + IC5 ⇒ IC6).
//! * **Contrapositives**: from `H ← B1,…,Bn` derive
//!   `¬Bi ← B1,…,Bi-1,Bi+1,…,Bn, ¬H` whenever the remaining body still
//!   contains a positive database literal to anchor at (IC6 ⇒ IC6′).

use crate::atom::{Atom, Literal, PredSym};
use crate::clause::{Constraint, ConstraintHead};
use crate::unify::mgu;
use std::collections::HashMap;

/// A compiled integrity-constraint fragment attached to a relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Residue {
    /// Index of the originating constraint in [`ResidueSet::constraints`].
    pub ic_index: usize,
    /// Name of the originating constraint, if any (e.g. `"IC7"`).
    pub ic_name: Option<String>,
    /// The body literal this residue is anchored at (the relation it is
    /// "attached to" in the paper's terminology).
    pub anchor: Atom,
    /// The remaining body literals that must also map into a query for the
    /// residue to apply.
    pub rest: Vec<Literal>,
    /// The residue head: what becomes true of every query answer.
    pub head: ConstraintHead,
}

impl std::fmt::Display for Residue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{{}", self.head)?;
        write!(f, " <-")?;
        for (i, l) in self.rest.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, " {l}")?;
        }
        write!(f, "}} @ {}", self.anchor.pred)
    }
}

/// Options controlling semantic compilation.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Derive strengthened ICs through inclusion constraints
    /// (IC4 + IC5 ⇒ IC6).
    pub derive_strengthened: bool,
    /// Derive contrapositive ICs (IC6 ⇒ IC6′), enabling scope reduction.
    pub derive_contrapositives: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            derive_strengthened: true,
            derive_contrapositives: true,
        }
    }
}

/// The result of semantic compilation: all (original and derived)
/// constraints, and their residues indexed by anchor relation.
#[derive(Debug, Clone, Default)]
pub struct ResidueSet {
    /// Original constraints followed by derived ones.
    pub constraints: Vec<Constraint>,
    by_pred: HashMap<PredSym, Vec<Residue>>,
    residue_count: usize,
}

impl ResidueSet {
    /// Compile a set of integrity constraints with default options.
    pub fn compile(constraints: Vec<Constraint>) -> Self {
        Self::compile_with(constraints, &CompileOptions::default())
    }

    /// Compile a set of integrity constraints.
    pub fn compile_with(mut constraints: Vec<Constraint>, opts: &CompileOptions) -> Self {
        if opts.derive_strengthened {
            // Saturate inclusion constraints transitively first, so a
            // two-hop hierarchy (faculty ⊆ employee ⊆ person) still
            // produces the one-hop inclusion the strengthening step needs.
            let closed = saturate_inclusions(&constraints);
            constraints.extend(closed);
            let derived = derive_strengthened(&constraints);
            constraints.extend(derived);
        }
        if opts.derive_contrapositives {
            let derived = derive_contrapositives(&constraints);
            constraints.extend(derived);
        }
        let mut by_pred: HashMap<PredSym, Vec<Residue>> = HashMap::new();
        let mut residue_count = 0;
        for (idx, ic) in constraints.iter().enumerate() {
            for (i, lit) in ic.body.iter().enumerate() {
                let Literal::Pos(anchor) = lit else { continue };
                let rest: Vec<Literal> = ic
                    .body
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, l)| l.clone())
                    .collect();
                by_pred
                    .entry(anchor.pred.clone())
                    .or_default()
                    .push(Residue {
                        ic_index: idx,
                        ic_name: ic.name.clone(),
                        anchor: anchor.clone(),
                        rest,
                        head: ic.head.clone(),
                    });
                residue_count += 1;
            }
        }
        ResidueSet {
            constraints,
            by_pred,
            residue_count,
        }
    }

    /// Residues attached to the given relation.
    pub fn residues_for(&self, pred: &PredSym) -> &[Residue] {
        self.by_pred.get(pred).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of residues across all relations.
    pub fn len(&self) -> usize {
        self.residue_count
    }

    /// Whether no residues were produced.
    pub fn is_empty(&self) -> bool {
        self.residue_count == 0
    }

    /// Iterate over all residues.
    pub fn iter(&self) -> impl Iterator<Item = &Residue> {
        self.by_pred.values().flatten()
    }
}

/// An inclusion constraint is `c1(args) ← c2(args')` with a single positive
/// body literal and an atom head (e.g. the subclass-hierarchy ICs of
/// Section 4.2).
fn as_inclusion(ic: &Constraint) -> Option<(&Atom, &Atom)> {
    let ConstraintHead::Atom(head) = &ic.head else {
        return None;
    };
    let [Literal::Pos(body)] = ic.body.as_slice() else {
        return None;
    };
    Some((head, body))
}

/// Transitively compose inclusion constraints: from `a(…) ← b(…)` and
/// `b(…) ← c(…)` derive `a(…) ← c(…)` (bounded fixpoint).
fn saturate_inclusions(constraints: &[Constraint]) -> Vec<Constraint> {
    let mut all: Vec<Constraint> = constraints
        .iter()
        .filter(|c| as_inclusion(c).is_some())
        .cloned()
        .collect();
    let mut derived: Vec<Constraint> = Vec::new();
    for _round in 0..constraints.len() {
        let mut new_ics: Vec<Constraint> = Vec::new();
        for upper in &all {
            let Some((u_head, u_body)) = as_inclusion(upper) else {
                continue;
            };
            for lower in &all {
                let Some((l_head, _)) = as_inclusion(lower) else {
                    continue;
                };
                if l_head.pred != u_body.pred {
                    continue;
                }
                // Standardize the upper IC apart and unify its body with
                // the lower IC's head.
                let used = lower.vars();
                let upper_fresh = crate::subst::standardize_apart(upper, &used);
                let Some((u_head_f, u_body_f)) = as_inclusion(&upper_fresh) else {
                    continue;
                };
                let Some(theta) = mgu(u_body_f, l_head) else {
                    continue;
                };
                let _ = u_head;
                let new_head = theta.apply_atom(u_head_f);
                let new_body = theta.apply_body(&lower.body);
                // Skip trivial or already-known inclusions.
                if new_body
                    .iter()
                    .any(|l| matches!(l, Literal::Pos(a) if a.pred == new_head.pred))
                {
                    continue;
                }
                let candidate = Constraint {
                    name: match (&upper.name, &lower.name) {
                        (Some(a), Some(b)) => Some(format!("{a}∘{b}")),
                        _ => None,
                    },
                    head: ConstraintHead::Atom(new_head),
                    body: new_body,
                };
                let key = inclusion_key(&candidate);
                let known = all.iter().chain(&new_ics).any(|c| inclusion_key(c) == key);
                if !known {
                    new_ics.push(candidate);
                }
            }
        }
        if new_ics.is_empty() {
            break;
        }
        all.extend(new_ics.iter().cloned());
        derived.extend(new_ics);
    }
    derived
}

fn inclusion_key(c: &Constraint) -> String {
    match (&c.head, c.body.first()) {
        (ConstraintHead::Atom(h), Some(Literal::Pos(b))) => {
            format!("{}<-{}", h.pred, b.pred)
        }
        _ => c.to_string(),
    }
}

/// Derive strengthened constraints: for each IC containing a positive body
/// atom `b` unifiable with an inclusion IC's body, add the inclusion's
/// (instantiated) head atom to the body. This reproduces the paper's
/// IC4 + IC5 ⇒ IC6 step: `Age ≥ 30 ← faculty(..)` becomes
/// `Age ≥ 30 ← faculty(..), person(..)`.
fn derive_strengthened(constraints: &[Constraint]) -> Vec<Constraint> {
    let mut out = Vec::new();
    for ic in constraints {
        // Skip inclusion ICs themselves: strengthening them yields noise.
        if as_inclusion(ic).is_some() {
            continue;
        }
        for inc in constraints {
            let Some((_inc_head, inc_body)) = as_inclusion(inc) else {
                continue;
            };
            for (i, lit) in ic.body.iter().enumerate() {
                let Literal::Pos(b) = lit else { continue };
                if b.pred != inc_body.pred {
                    continue;
                }
                // Standardize the inclusion IC apart from the target IC.
                let used = ic.vars();
                let inc_fresh = crate::subst::standardize_apart(inc, &used);
                let Some((inc_head_f, inc_body_f)) = as_inclusion(&inc_fresh) else {
                    continue;
                };
                let Some(theta) = mgu(inc_body_f, b) else {
                    continue;
                };
                let new_atom = theta.apply_atom(inc_head_f);
                // Skip if the body already contains the implied atom.
                if ic
                    .body
                    .iter()
                    .any(|l| matches!(l, Literal::Pos(a) if *a == new_atom))
                {
                    continue;
                }
                let mut body = ic.body.clone();
                body.insert(i + 1, Literal::Pos(new_atom));
                let name = match (&ic.name, &inc.name) {
                    (Some(a), Some(b)) => Some(format!("{a}+{b}")),
                    _ => None,
                };
                out.push(Constraint {
                    name,
                    head: ic.head.clone(),
                    body,
                });
            }
        }
    }
    dedup_constraints(out)
}

/// Derive contrapositives: `H ← B` yields `¬Bi ← (B \ Bi), ¬H` for each
/// positive `Bi`, provided the remaining body retains a positive database
/// literal to anchor the resulting residue (and to keep it safe).
fn derive_contrapositives(constraints: &[Constraint]) -> Vec<Constraint> {
    let mut out = Vec::new();
    for ic in constraints {
        // The negated head becomes a body literal; denials contribute
        // nothing extra here (their residues already signal contradiction).
        let neg_head: Option<Literal> = match &ic.head {
            ConstraintHead::None => None,
            ConstraintHead::Atom(a) => Some(Literal::Neg(a.clone())),
            ConstraintHead::NegAtom(a) => Some(Literal::Pos(a.clone())),
            // Order-comparison heads only: negating an equality head (key
            // and functionality ICs) yields disequality-guarded residues
            // that are never usefully applicable — the equality form is
            // already exploited directly (join elimination) and as an egd.
            ConstraintHead::Cmp(c) if c.op != crate::atom::CmpOp::Eq => {
                Some(Literal::Cmp(c.negate()))
            }
            ConstraintHead::Cmp(_) => None,
        };
        let Some(neg_head) = neg_head else { continue };
        for (i, lit) in ic.body.iter().enumerate() {
            let Literal::Pos(b) = lit else { continue };
            let rest: Vec<Literal> = ic
                .body
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, l)| l.clone())
                .collect();
            // Anchorability: the remaining body must still contain a
            // positive database literal.
            if !rest.iter().any(Literal::is_positive) {
                continue;
            }
            let mut body = rest;
            body.push(neg_head.clone());
            out.push(Constraint {
                name: ic.name.as_ref().map(|n| format!("{n}'")),
                head: ConstraintHead::NegAtom(b.clone()),
                body,
            });
        }
    }
    dedup_constraints(out)
}

fn dedup_constraints(ics: Vec<Constraint>) -> Vec<Constraint> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for ic in ics {
        let key = format!(
            "{}<-{}",
            ic.head,
            ic.body
                .iter()
                .map(canonical_lit)
                .collect::<Vec<_>>()
                .join(",")
        );
        if seen.insert(key) {
            out.push(ic);
        }
    }
    out
}

fn canonical_lit(l: &Literal) -> String {
    match l {
        Literal::Cmp(c) => c.canonical().to_string(),
        other => other.to_string(),
    }
}

/// Rename a residue's variables apart from a set of used variables,
/// returning the renamed residue. Used at query-application time.
pub fn standardize_residue_apart(
    r: &Residue,
    used: &std::collections::BTreeSet<crate::term::Var>,
) -> Residue {
    // Reuse constraint renaming by packing the residue into a constraint.
    let mut body = vec![Literal::Pos(r.anchor.clone())];
    body.extend(r.rest.iter().cloned());
    let packed = Constraint {
        name: r.ic_name.clone(),
        head: r.head.clone(),
        body,
    };
    let renamed = crate::subst::standardize_apart(&packed, used);
    let mut it = renamed.body.into_iter();
    let Some(Literal::Pos(anchor)) = it.next() else {
        unreachable!("anchor literal is positive by construction");
    };
    Residue {
        ic_index: r.ic_index,
        ic_name: r.ic_name.clone(),
        anchor,
        rest: it.collect(),
        head: renamed.head,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{CmpOp, Comparison};
    use crate::term::Term;

    fn ic1() -> Constraint {
        // IC1: Salary > 40000 <- faculty(OID, Salary)
        Constraint::named(
            "IC1",
            ConstraintHead::Cmp(Comparison::new(
                Term::var("Salary"),
                CmpOp::Gt,
                Term::int(40000),
            )),
            vec![Literal::pos(
                "faculty",
                vec![Term::var("OID"), Term::var("Salary")],
            )],
        )
    }

    fn ic4() -> Constraint {
        // IC4: Age >= 30 <- faculty(X, Name, Age)
        Constraint::named(
            "IC4",
            ConstraintHead::Cmp(Comparison::new(Term::var("Age"), CmpOp::Ge, Term::int(30))),
            vec![Literal::pos(
                "faculty",
                vec![Term::var("X"), Term::var("Name"), Term::var("Age")],
            )],
        )
    }

    fn ic5() -> Constraint {
        // IC5: person(X, Name, Age) <- faculty(X, Name, Age)
        Constraint::named(
            "IC5",
            ConstraintHead::Atom(Atom::new(
                "person",
                vec![Term::var("X"), Term::var("Name"), Term::var("Age")],
            )),
            vec![Literal::pos(
                "faculty",
                vec![Term::var("X"), Term::var("Name"), Term::var("Age")],
            )],
        )
    }

    #[test]
    fn single_body_literal_residue() {
        let rs = ResidueSet::compile_with(
            vec![ic1()],
            &CompileOptions {
                derive_strengthened: false,
                derive_contrapositives: false,
            },
        );
        let rs_fac = rs.residues_for(&PredSym::new("faculty"));
        assert_eq!(rs_fac.len(), 1);
        assert!(rs_fac[0].rest.is_empty());
        assert_eq!(
            rs_fac[0].head,
            ConstraintHead::Cmp(Comparison::new(
                Term::var("Salary"),
                CmpOp::Gt,
                Term::int(40000)
            ))
        );
        assert_eq!(rs.residues_for(&PredSym::new("student")).len(), 0);
    }

    #[test]
    fn residue_per_body_literal() {
        // IC with two database literals yields a residue at each.
        let ic = Constraint::new(
            ConstraintHead::Cmp(Comparison::new(Term::var("A"), CmpOp::Lt, Term::var("B"))),
            vec![
                Literal::pos("p", vec![Term::var("X"), Term::var("A")]),
                Literal::pos("q", vec![Term::var("X"), Term::var("B")]),
            ],
        );
        let rs = ResidueSet::compile_with(
            vec![ic],
            &CompileOptions {
                derive_strengthened: false,
                derive_contrapositives: false,
            },
        );
        assert_eq!(rs.residues_for(&PredSym::new("p")).len(), 1);
        assert_eq!(rs.residues_for(&PredSym::new("q")).len(), 1);
        assert_eq!(rs.residues_for(&PredSym::new("p"))[0].rest.len(), 1);
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn ic4_ic5_derives_ic6_and_ic6_prime() {
        let rs = ResidueSet::compile(vec![ic4(), ic5()]);
        // IC6: Age >= 30 <- faculty(..), person(..)
        let ic6 = rs.constraints.iter().find(|c| {
            matches!(&c.head, ConstraintHead::Cmp(_))
                && c.body.len() == 2
                && c.body
                    .iter()
                    .any(|l| l.pred().map(|p| p.name()) == Some("person"))
        });
        assert!(
            ic6.is_some(),
            "IC6 should be derived: {:#?}",
            rs.constraints
        );
        // IC6': not faculty(..) <- person(..), Age < 30 — i.e. a residue
        // anchored at person with a NegAtom(faculty) head.
        let person_residues = rs.residues_for(&PredSym::new("person"));
        let scope = person_residues
            .iter()
            .find(|r| matches!(&r.head, ConstraintHead::NegAtom(a) if a.pred.name() == "faculty"));
        assert!(
            scope.is_some(),
            "IC6' residue at person: {person_residues:#?}"
        );
        let scope = scope.unwrap();
        // Its remaining body must contain the negated range comparison.
        assert!(scope
            .rest
            .iter()
            .any(|l| matches!(l, Literal::Cmp(c) if c.op == CmpOp::Lt)));
    }

    #[test]
    fn contrapositive_requires_anchor() {
        // Single-literal IC1 has no contrapositive (removing faculty leaves
        // nothing to anchor at).
        let rs = ResidueSet::compile(vec![ic1()]);
        assert!(rs
            .constraints
            .iter()
            .all(|c| !matches!(&c.head, ConstraintHead::NegAtom(_))));
    }

    #[test]
    fn denial_residue_has_empty_head() {
        let ic = Constraint::new(
            ConstraintHead::None,
            vec![
                Literal::pos("p", vec![Term::var("X")]),
                Literal::pos("q", vec![Term::var("X")]),
            ],
        );
        let rs = ResidueSet::compile(vec![ic]);
        let rp = rs.residues_for(&PredSym::new("p"));
        assert_eq!(rp.len(), 1);
        assert_eq!(rp[0].head, ConstraintHead::None);
    }

    #[test]
    fn standardize_residue_apart_avoids_query_vars() {
        let rs = ResidueSet::compile(vec![ic1()]);
        let r = &rs.residues_for(&PredSym::new("faculty"))[0];
        let used: std::collections::BTreeSet<_> = [
            crate::term::Var::new("Salary"),
            crate::term::Var::new("OID"),
        ]
        .into_iter()
        .collect();
        let fresh = standardize_residue_apart(r, &used);
        for v in fresh.anchor.vars() {
            assert!(!used.contains(v), "anchor var {v} clashes");
        }
    }

    #[test]
    fn derived_sets_are_deduplicated() {
        // Compiling the same IC twice should not duplicate derived ICs.
        let rs = ResidueSet::compile(vec![ic4(), ic4(), ic5()]);
        let neg_count = rs
            .constraints
            .iter()
            .filter(|c| matches!(&c.head, ConstraintHead::NegAtom(_)))
            .count();
        // Only the faculty-anchored contrapositive of derived IC6 family.
        assert!(neg_count >= 1);
        let keys: Vec<String> = rs.constraints.iter().map(|c| c.to_string()).collect();
        let mut dedup = keys.clone();
        dedup.sort();
        dedup.dedup();
        // Duplicates may exist between the two identical originals, but
        // derived constraints must be unique.
        let derived: Vec<_> = keys.iter().skip(3).collect();
        let mut d2 = derived.clone();
        d2.sort();
        d2.dedup();
        assert_eq!(derived.len(), d2.len());
    }

    #[test]
    fn residue_display() {
        let rs = ResidueSet::compile_with(
            vec![ic1()],
            &CompileOptions {
                derive_strengthened: false,
                derive_contrapositives: false,
            },
        );
        let r = &rs.residues_for(&PredSym::new("faculty"))[0];
        assert_eq!(r.to_string(), "{Salary > 40000 <-} @ faculty");
    }
}
