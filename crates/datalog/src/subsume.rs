//! θ-subsumption: matching a clause body onto a query.
//!
//! A residue applies to a query when its remaining body literals can all be
//! mapped *into* the query by a substitution θ that only instantiates the
//! residue's variables (partial subsumption, Section 2 of the paper):
//!
//! * a positive database literal must match some positive literal of the
//!   query (one-way matching);
//! * a negative literal must match some negative literal of the query;
//! * an evaluable literal (comparison), once instantiated by θ, must be
//!   *implied* by the query's own comparison constraints — e.g. the
//!   residue body literal `Name1 = Name2` of IC7 is implied by the query
//!   literal `Name1 = Name2` (Application 3), but implication also covers
//!   derived cases such as matching `Age < 25` in a query against a
//!   residue's `Age < 30`.

use crate::atom::{Atom, Comparison, Literal};
use crate::clause::Query;
use crate::fxhash::FxHashMap;
use crate::solver::ConstraintSet;
use crate::subst::Subst;
use crate::unify::match_atoms;
use sqo_obs as obs;

/// The fixed side of a match: the query's positive atoms, negative atoms,
/// and a solver primed with its comparison literals (plus any derived
/// equalities, e.g. OID-functional congruence).
pub struct MatchTarget<'a> {
    /// Positive database atoms of the query body.
    pub pos: Vec<&'a Atom>,
    /// Negative database atoms of the query body.
    pub neg: Vec<&'a Atom>,
    /// Solver primed with the query's evaluable literals.
    pub solver: &'a ConstraintSet,
}

impl<'a> MatchTarget<'a> {
    /// Build a target from a body slice and a primed solver.
    pub fn new(body: &'a [Literal], solver: &'a ConstraintSet) -> Self {
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        for l in body {
            match l {
                Literal::Pos(a) => pos.push(a),
                Literal::Neg(a) => neg.push(a),
                Literal::Cmp(_) => {}
            }
        }
        MatchTarget { pos, neg, solver }
    }
}

/// Find every substitution θ extending `seed` such that each literal of
/// `pattern` maps into the target as described in the module docs.
/// Duplicate substitutions are removed.
///
/// **Precondition:** pattern variables disjoint from target variables
/// (see [`crate::unify::match_terms`]).
pub fn match_body_onto(pattern: &[Literal], target: &MatchTarget<'_>, seed: &Subst) -> Vec<Subst> {
    obs::bump(obs::Counter::SubsumeChecks);
    // Match database literals first so comparisons see their variables
    // bound; among database literals keep the given order.
    let mut db: Vec<&Literal> = Vec::new();
    let mut cmps: Vec<&Literal> = Vec::new();
    for l in pattern {
        match l {
            Literal::Cmp(_) => cmps.push(l),
            _ => db.push(l),
        }
    }
    let ordered: Vec<&Literal> = db.into_iter().chain(cmps).collect();

    let mut results: Vec<Subst> = Vec::new();
    let mut stack: Vec<(usize, Subst)> = vec![(0, seed.clone())];
    while let Some((i, s)) = stack.pop() {
        if i == ordered.len() {
            if !results.contains(&s) {
                results.push(s);
            }
            continue;
        }
        match ordered[i] {
            Literal::Pos(pat) => {
                for cand in &target.pos {
                    let mut s2 = s.clone();
                    if match_atoms(pat, cand, &mut s2) {
                        stack.push((i + 1, s2));
                    }
                }
            }
            Literal::Neg(pat) => {
                for cand in &target.neg {
                    let mut s2 = s.clone();
                    if match_atoms(pat, cand, &mut s2) {
                        stack.push((i + 1, s2));
                    }
                }
            }
            Literal::Cmp(c) => {
                let inst = s.apply_cmp(c);
                // Every variable of the instantiated comparison must now be
                // a query term; a residue variable that never got bound
                // cannot be checked and the match fails conservatively.
                let unbound_residue_var = [&inst.lhs, &inst.rhs].into_iter().any(|t| {
                    t.as_var()
                        .is_some_and(|v| s.lookup(v).is_none() && c.vars().any(|w| w == v))
                });
                if !unbound_residue_var && target.solver.implies(&inst) {
                    stack.push((i + 1, s));
                }
            }
        }
    }
    results
}

/// One complete match of a pattern's *database* literals, with the
/// pattern's comparison literals instantiated under θ but not yet
/// checked against any solver.
///
/// Produced by [`match_db_staged`]; a caller holding a query-specific
/// [`ConstraintSet`] accepts the match iff every deferred comparison is
/// implied. Filtering staged matches this way yields exactly the
/// substitution sequence [`match_body_onto`] returns against the same
/// atoms, because comparison steps never bind variables: the database
/// DFS is identical, and equal substitutions pass or fail the deferred
/// checks identically, so dedup-before-filter equals filter-before-dedup.
#[derive(Debug, Clone)]
pub struct StagedMatch {
    /// The substitution at the database-literal leaf.
    pub theta: Subst,
    /// The pattern's comparison literals instantiated under `theta`, in
    /// pattern order. Empty when the pattern has no comparisons.
    pub deferred: Vec<Comparison>,
}

impl StagedMatch {
    /// Whether every deferred comparison is implied by `solver`.
    #[inline]
    pub fn deferred_implied(&self, solver: &ConstraintSet) -> bool {
        self.deferred.iter().all(|c| solver.implies(c))
    }
}

/// [`match_body_onto`] with the solver-dependent half deferred: match
/// only the database literals of `pattern` onto `pos`/`neg`, returning
/// each surviving substitution with its instantiated comparisons.
///
/// A residue variable that stays unbound inside one of the pattern's
/// comparisons fails the match conservatively here (that check depends
/// only on θ, never on the target's solver), mirroring
/// [`match_body_onto`].
pub fn match_db_staged(
    pattern: &[Literal],
    pos: &[&Atom],
    neg: &[&Atom],
    seed: &Subst,
) -> Vec<StagedMatch> {
    obs::bump(obs::Counter::SubsumeChecks);
    let mut db: Vec<&Literal> = Vec::new();
    let mut cmps: Vec<&Comparison> = Vec::new();
    for l in pattern {
        match l {
            Literal::Cmp(c) => cmps.push(c),
            _ => db.push(l),
        }
    }

    let mut results: Vec<StagedMatch> = Vec::new();
    let mut stack: Vec<(usize, Subst)> = vec![(0, seed.clone())];
    'leaves: while let Some((i, s)) = stack.pop() {
        if i == db.len() {
            if results.iter().any(|m| m.theta == s) {
                continue;
            }
            let mut deferred = Vec::with_capacity(cmps.len());
            for c in &cmps {
                let inst = s.apply_cmp(c);
                let unbound_residue_var = [&inst.lhs, &inst.rhs].into_iter().any(|t| {
                    t.as_var()
                        .is_some_and(|v| s.lookup(v).is_none() && c.vars().any(|w| w == v))
                });
                if unbound_residue_var {
                    continue 'leaves;
                }
                deferred.push(inst);
            }
            results.push(StagedMatch { theta: s, deferred });
            continue;
        }
        match db[i] {
            Literal::Pos(pat) => {
                for cand in pos {
                    let mut s2 = s.clone();
                    if match_atoms(pat, cand, &mut s2) {
                        stack.push((i + 1, s2));
                    }
                }
            }
            Literal::Neg(pat) => {
                for cand in neg {
                    let mut s2 = s.clone();
                    if match_atoms(pat, cand, &mut s2) {
                        stack.push((i + 1, s2));
                    }
                }
            }
            Literal::Cmp(_) => unreachable!("comparisons were split off above"),
        }
    }
    results
}

/// A canonical-hash-bucketed duplicate/subsumption index over query
/// variants.
///
/// The level-BFS engine dedups candidates with a flat `HashSet` of
/// [`Query::canonical_hash`] fingerprints, accepting a (vanishingly
/// small but nonzero) risk that a hash collision silently drops a
/// genuinely novel variant. The best-first engine instead buckets by
/// the canonical hash and, when a bucket already has occupants,
/// confirms with the exact canonical token form
/// ([`Query::canonical_form`] — the very sequence the hash digests) —
/// so a true duplicate is recognized exactly, and a hash collision
/// costs one token-sequence compare instead of a lost variant. The
/// rendered [`Query::canonical_key`] is deliberately *not* used here:
/// its string-sorted tie-break order renames variables differently on
/// duplicate-shape comparison literals and can split alpha-equivalent
/// queries the fingerprint (correctly) merges.
#[derive(Debug, Default)]
pub struct SubsumptionIndex {
    buckets: FxHashMap<u64, Vec<crate::clause::CanonicalForm>>,
    len: usize,
}

impl SubsumptionIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert `q`'s canonical form; `true` iff it was not already
    /// present.
    pub fn insert(&mut self, q: &Query) -> bool {
        let form = q.canonical_form();
        let bucket = self.buckets.entry(form.hash64()).or_default();
        if bucket.contains(&form) {
            return false;
        }
        bucket.push(form);
        self.len += 1;
        true
    }

    /// Number of distinct canonical forms inserted.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Classical θ-subsumption between clause bodies: does θ exist with
/// `pattern`θ ⊆ `body` (comparisons must be implied by `body`'s own
/// comparisons)?
pub fn body_subsumes(pattern: &[Literal], body: &[Literal]) -> bool {
    let cmps: Vec<_> = body
        .iter()
        .filter_map(|l| match l {
            Literal::Cmp(c) => Some(*c),
            _ => None,
        })
        .collect();
    let solver = ConstraintSet::from_comparisons(cmps.iter());
    let target = MatchTarget::new(body, &solver);
    !match_body_onto(pattern, &target, &Subst::new()).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::CmpOp;
    use crate::term::Term;

    fn lit(p: &str, args: Vec<Term>) -> Literal {
        Literal::pos(p, args)
    }

    #[test]
    fn single_literal_match() {
        let pattern = vec![lit("faculty", vec![Term::var("X"), Term::var("A")])];
        let body = vec![lit("faculty", vec![Term::var("Z"), Term::var("Age")])];
        assert!(body_subsumes(&pattern, &body));
    }

    #[test]
    fn repeated_vars_constrain_match() {
        let pattern = vec![lit("r", vec![Term::var("X"), Term::var("X")])];
        let body_ok = vec![lit("r", vec![Term::var("A"), Term::var("A")])];
        let body_bad = vec![lit("r", vec![Term::var("A"), Term::var("B")])];
        assert!(body_subsumes(&pattern, &body_ok));
        assert!(!body_subsumes(&pattern, &body_bad));
    }

    #[test]
    fn multi_literal_join_structure() {
        // pattern: takes(X,Y), taught_by(Y,Z) must respect the shared Y.
        let pattern = vec![
            lit("takes", vec![Term::var("X"), Term::var("Y")]),
            lit("taught_by", vec![Term::var("Y"), Term::var("Z")]),
        ];
        let body_ok = vec![
            lit("takes", vec![Term::var("S"), Term::var("Sec")]),
            lit("taught_by", vec![Term::var("Sec"), Term::var("F")]),
        ];
        let body_bad = vec![
            lit("takes", vec![Term::var("S"), Term::var("Sec1")]),
            lit("taught_by", vec![Term::var("Sec2"), Term::var("F")]),
        ];
        assert!(body_subsumes(&pattern, &body_ok));
        assert!(!body_subsumes(&pattern, &body_bad));
    }

    #[test]
    fn comparison_implied_by_query() {
        // Residue body `N1 = N2` is implied by the query's own `Name1 = Name2`
        // once N1↦Name1, N2↦Name2 (the IC7 case of Application 3).
        let pattern = vec![
            lit("faculty", vec![Term::var("X1"), Term::var("N1")]),
            lit("faculty", vec![Term::var("X2"), Term::var("N2")]),
            Literal::cmp(Term::var("N1"), CmpOp::Eq, Term::var("N2")),
        ];
        let body = vec![
            lit("faculty", vec![Term::var("Z"), Term::var("Name1")]),
            lit("faculty", vec![Term::var("W"), Term::var("Name2")]),
            Literal::cmp(Term::var("Name1"), CmpOp::Eq, Term::var("Name2")),
        ];
        assert!(body_subsumes(&pattern, &body));
    }

    #[test]
    fn comparison_implied_by_stronger_query_bound() {
        // Residue body `Age < 30` is implied by query `Age < 20`.
        let pattern = vec![
            lit("person", vec![Term::var("X"), Term::var("A")]),
            Literal::cmp(Term::var("A"), CmpOp::Lt, Term::int(30)),
        ];
        let body = vec![
            lit("person", vec![Term::var("P"), Term::var("Age")]),
            Literal::cmp(Term::var("Age"), CmpOp::Lt, Term::int(20)),
        ];
        assert!(body_subsumes(&pattern, &body));
        // The reverse is not implied.
        let pattern2 = vec![
            lit("person", vec![Term::var("X"), Term::var("A")]),
            Literal::cmp(Term::var("A"), CmpOp::Lt, Term::int(10)),
        ];
        assert!(!body_subsumes(&pattern2, &body));
    }

    #[test]
    fn negative_literals_match_only_negatives() {
        let pattern = vec![Literal::neg("faculty", vec![Term::var("X")])];
        let pos_body = vec![lit("faculty", vec![Term::var("A")])];
        let neg_body = vec![Literal::neg("faculty", vec![Term::var("A")])];
        assert!(!body_subsumes(&pattern, &pos_body));
        assert!(body_subsumes(&pattern, &neg_body));
    }

    #[test]
    fn all_matches_enumerated() {
        // Two candidate faculty atoms → two matches for a single-literal
        // pattern.
        let pattern = vec![lit("faculty", vec![Term::var("X"), Term::var("N")])];
        let body = vec![
            lit("faculty", vec![Term::var("Z"), Term::var("Name1")]),
            lit("faculty", vec![Term::var("W"), Term::var("Name2")]),
        ];
        let cmp_none: Vec<crate::atom::Comparison> = Vec::new();
        let solver = ConstraintSet::from_comparisons(cmp_none.iter());
        let target = MatchTarget::new(&body, &solver);
        let matches = match_body_onto(&pattern, &target, &Subst::new());
        assert_eq!(matches.len(), 2);
    }

    #[test]
    fn ground_constant_pattern_needs_exact_constant() {
        let pattern = vec![lit("p", vec![Term::int(3)])];
        let body_ok = vec![lit("p", vec![Term::int(3)])];
        let body_bad = vec![lit("p", vec![Term::var("X")])];
        assert!(body_subsumes(&pattern, &body_ok));
        // One-way matching: a constant cannot match a query variable.
        assert!(!body_subsumes(&pattern, &body_bad));
    }
}
