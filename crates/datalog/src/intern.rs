//! Global string interner backing [`crate::Var`], [`crate::PredSym`] and
//! [`crate::Const::Str`].
//!
//! Every distinct string is stored once, for the lifetime of the
//! process, and represented by a `u32` [`Sym`]. This turns the
//! optimizer's hot-path string work into integer work:
//!
//! * equality and hashing are single integer operations (`mgu`,
//!   subsumption and the residue indexes all compare predicate and
//!   variable symbols constantly);
//! * symbols are `Copy`, so terms, atoms and substitutions no longer
//!   clone heap strings while the Step-3 search rewrites queries.
//!
//! **Ordering.** `Ord` compares the *resolved strings* (with an
//! equal-id fast path), not the ids. Sort order of variables and
//! constants is observable — substitutions iterate `BTreeMap<Var, _>`,
//! canonical forms sort renamed literals, and the golden tests pin the
//! resulting output — so interning must not change it.
//!
//! The interner is thread-safe (`RwLock`; reads vastly dominate) and
//! the parallel Step-3 frontier interns freely from worker threads.

use std::collections::HashMap;
use std::fmt;
use std::sync::{LazyLock, RwLock};

/// An interned string.
///
/// Cheap to copy, compare and hash; resolves to `&'static str` via
/// [`Sym::as_str`]. Two `Sym`s are equal iff their strings are equal.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sym(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

static INTERNER: LazyLock<RwLock<Interner>> = LazyLock::new(|| {
    RwLock::new(Interner {
        map: HashMap::new(),
        strings: Vec::new(),
    })
});

impl Sym {
    /// Intern a string, returning its symbol. Idempotent: interning the
    /// same text always returns the same `Sym`.
    pub fn intern(text: &str) -> Sym {
        {
            let interner = INTERNER.read().unwrap();
            if let Some(&id) = interner.map.get(text) {
                return Sym(id);
            }
        }
        let mut interner = INTERNER.write().unwrap();
        // Double-check: another thread may have interned between locks.
        if let Some(&id) = interner.map.get(text) {
            return Sym(id);
        }
        let id = u32::try_from(interner.strings.len()).expect("interner overflow");
        let leaked: &'static str = Box::leak(text.to_owned().into_boxed_str());
        interner.strings.push(leaked);
        interner.map.insert(leaked, id);
        Sym(id)
    }

    /// Resolve the symbol to its string.
    pub fn as_str(self) -> &'static str {
        INTERNER.read().unwrap().strings[self.0 as usize]
    }

    /// The raw id (useful for hashing/diagnostics; ids are assigned in
    /// interning order and are not stable across processes).
    pub fn id(self) -> u32 {
        self.0
    }
}

impl PartialOrd for Sym {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Sym {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            return std::cmp::Ordering::Equal;
        }
        self.as_str().cmp(other.as_str())
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Self {
        Sym::intern(s)
    }
}

impl From<&String> for Sym {
    fn from(s: &String) -> Self {
        Sym::intern(s)
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Self {
        Sym::intern(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = Sym::intern("faculty");
        let b = Sym::intern("faculty");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_eq!(a.as_str(), "faculty");
    }

    #[test]
    fn distinct_strings_distinct_syms() {
        assert_ne!(Sym::intern("person"), Sym::intern("faculty"));
    }

    #[test]
    fn order_is_lexicographic_not_id_order() {
        // Intern in reverse lexicographic order; Ord must still sort by
        // string content.
        let z = Sym::intern("zzz_order_test");
        let a = Sym::intern("aaa_order_test");
        assert!(a < z);
        assert!(z > a);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn debug_and_display_resolve() {
        let s = Sym::intern("Age");
        assert_eq!(format!("{s}"), "Age");
        assert_eq!(format!("{s:?}"), "\"Age\"");
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    (0..100)
                        .map(|j| Sym::intern(&format!("conc_{}", (i + j) % 50)).id())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<u32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Same text ⇒ same id, across all threads.
        for (i, r) in results.iter().enumerate() {
            for (j, id) in r.iter().enumerate() {
                let text = format!("conc_{}", (i + j) % 50);
                assert_eq!(Sym::intern(&text).id(), *id);
            }
        }
    }
}
