//! A bounded chase for deciding literal-removal soundness.
//!
//! Removing a positive literal from a conjunctive query only enlarges its
//! answer set, so `Q ≡ Q \ {a}` holds exactly when `Q \ {a} ⊆ Q`, i.e.
//! when the remaining body, *under the integrity constraints*, implies the
//! removed conjunct. We decide this with the classical chase:
//!
//! 1. Freeze the remaining body: its variables become labelled constants.
//! 2. Chase the frozen facts with the tuple-generating dependencies
//!    (atom-headed ICs: OID identification, subclass hierarchy, inverse
//!    relationships, IC9), the *reverse* direction of view definitions
//!    (an access support relation fact implies a witness path with fresh
//!    nulls), and the equality-generating dependencies (key constraints
//!    such as IC7, one-to-one constraints, and OID-functionality of class
//!    relations).
//! 3. The removal (possibly of a whole group of literals, as in the ASR
//!    fold of Application 4) is sound if the removed conjunct maps
//!    homomorphically into the chased facts, with variables shared with
//!    the kept part frozen and purely-internal variables existential.
//!
//! The chase is bounded (rounds, facts, nulls), so the check is sound but
//! not complete: "not derivable within the budget" simply means the
//! optimizer keeps the literal.

use crate::atom::{Atom, CmpOp, Literal, PredSym};
use crate::clause::{Constraint, ConstraintHead, Rule};
use crate::solver::ConstraintSet;
use crate::term::{Const, Term, Var};
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// A term in the chase universe.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CTerm {
    /// A frozen query variable (behaves as a distinct constant, but keeps
    /// its identity so comparisons can consult the query's solver).
    Frozen(Var),
    /// A labelled null introduced for an existential variable.
    Null(usize),
    /// An ordinary constant.
    Const(Const),
}

impl std::fmt::Display for CTerm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CTerm::Frozen(v) => write!(f, "'{v}"),
            CTerm::Null(n) => write!(f, "~{n}"),
            CTerm::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A chase fact: a predicate applied to chase terms.
pub type CFact = (PredSym, Vec<CTerm>);

/// Resource bounds for the chase.
#[derive(Debug, Clone)]
pub struct ChaseBudget {
    /// Maximum fixpoint rounds.
    pub max_rounds: usize,
    /// Maximum number of facts.
    pub max_facts: usize,
    /// Maximum number of fresh nulls.
    pub max_nulls: usize,
}

impl Default for ChaseBudget {
    fn default() -> Self {
        ChaseBudget {
            max_rounds: 6,
            max_facts: 400,
            max_nulls: 64,
        }
    }
}

/// The dependencies the chase runs with.
#[derive(Debug, Clone, Default)]
pub struct ChaseContext {
    /// Tuple-generating dependencies: ICs whose head is a positive atom.
    pub tgds: Vec<Constraint>,
    /// Equality-generating dependencies: ICs whose head is `X = Y`.
    pub egds: Vec<Constraint>,
    /// View definitions (e.g. access support relations); used in the
    /// reverse direction — a view fact implies a witness body.
    pub views: Vec<Rule>,
    /// Functional-dependency map: `pred → k` means the first `k`
    /// arguments determine the remaining ones (classes and structures:
    /// `k = 1`; methods `m(OID, args…, V)`: `k = arity − 1`).
    pub functional: BTreeMap<PredSym, usize>,
}

impl ChaseContext {
    /// Partition a constraint list into tgds/egds (others are ignored by
    /// the chase — denials and range ICs are the solver's business).
    pub fn from_constraints(
        constraints: &[Constraint],
        views: Vec<Rule>,
        functional: BTreeMap<PredSym, usize>,
    ) -> Self {
        let mut tgds = Vec::new();
        let mut egds = Vec::new();
        for ic in constraints {
            match &ic.head {
                ConstraintHead::Atom(_) => tgds.push(ic.clone()),
                ConstraintHead::Cmp(c) if c.op == CmpOp::Eq => egds.push(ic.clone()),
                _ => {}
            }
        }
        ChaseContext {
            tgds,
            egds,
            views,
            functional,
        }
    }
}

/// The chase state: facts plus a canonicalization map over chase terms
/// (for equality-generating dependencies).
pub struct Chase<'a> {
    ctx: &'a ChaseContext,
    /// The query's comparison context, used to evaluate comparison
    /// literals over frozen terms.
    solver: &'a ConstraintSet,
    budget: ChaseBudget,
    facts: HashSet<CFact>,
    /// Per-predicate index over `facts` (kept in sync).
    by_pred: BTreeMap<PredSym, Vec<Vec<CTerm>>>,
    /// Canonical representative for merged terms.
    canon: BTreeMap<CTerm, CTerm>,
    next_null: usize,
    /// Firing keys to avoid re-firing the same dependency on the same
    /// binding (oblivious-chase dedup).
    fired: HashSet<String>,
}

impl<'a> Chase<'a> {
    /// Create a chase over the frozen body of a query.
    pub fn new(
        body: &[Literal],
        ctx: &'a ChaseContext,
        solver: &'a ConstraintSet,
        budget: ChaseBudget,
    ) -> Self {
        let mut chase = Chase {
            ctx,
            solver,
            budget,
            facts: HashSet::new(),
            by_pred: BTreeMap::new(),
            canon: BTreeMap::new(),
            next_null: 0,
            fired: HashSet::new(),
        };
        for l in body {
            if let Literal::Pos(a) = l {
                chase.insert_fact(a.pred, a.args.iter().map(freeze).collect());
            }
        }
        chase
    }

    fn insert_fact(&mut self, pred: PredSym, args: Vec<CTerm>) -> bool {
        if self.facts.insert((pred, args.clone())) {
            self.by_pred.entry(pred).or_default().push(args);
            true
        } else {
            false
        }
    }

    /// The canonical representative of a chase term.
    pub fn rep(&self, t: &CTerm) -> CTerm {
        let mut cur = t.clone();
        let mut hops = 0;
        while let Some(next) = self.canon.get(&cur) {
            if *next == cur || hops > self.canon.len() {
                break;
            }
            cur = next.clone();
            hops += 1;
        }
        cur
    }

    /// Merge two chase terms (egd firing). Prefers constants, then frozen
    /// variables, as representatives. Merging two distinct constants is
    /// skipped (the query would be unsatisfiable; the solver reports that
    /// separately).
    fn merge(&mut self, a: &CTerm, b: &CTerm) -> bool {
        let (ra, rb) = (self.rep(a), self.rep(b));
        if ra == rb {
            return false;
        }
        let (keep, drop) = match (&ra, &rb) {
            (CTerm::Const(_), CTerm::Const(_)) => return false,
            (CTerm::Const(_), _) => (ra.clone(), rb.clone()),
            (_, CTerm::Const(_)) => (rb.clone(), ra.clone()),
            (CTerm::Frozen(_), _) => (ra.clone(), rb.clone()),
            (_, CTerm::Frozen(_)) => (rb.clone(), ra.clone()),
            _ => (ra.clone(), rb.clone()),
        };
        self.canon.insert(drop, keep);
        // Rewrite facts to canonical form (both the set and the index).
        let rewritten: HashSet<CFact> = self
            .facts
            .iter()
            .map(|(p, args)| (*p, args.iter().map(|t| self.rep(t)).collect()))
            .collect();
        self.by_pred.clear();
        for (p, args) in &rewritten {
            self.by_pred.entry(*p).or_default().push(args.clone());
        }
        self.facts = rewritten;
        true
    }

    fn fresh_null(&mut self) -> Option<CTerm> {
        if self.next_null >= self.budget.max_nulls {
            return None;
        }
        let n = self.next_null;
        self.next_null += 1;
        Some(CTerm::Null(n))
    }

    /// Evaluate a comparison over chase terms, consulting the query solver
    /// for frozen variables. Conservative: unknown ⇒ false.
    fn eval_cmp(&self, lhs: &CTerm, op: CmpOp, rhs: &CTerm) -> bool {
        let (l, r) = (self.rep(lhs), self.rep(rhs));
        if l == r {
            return matches!(op, CmpOp::Eq | CmpOp::Le | CmpOp::Ge);
        }
        let to_term = |t: &CTerm| -> Option<Term> {
            match t {
                CTerm::Frozen(v) => Some(Term::Var(*v)),
                CTerm::Const(c) => Some(Term::Const(*c)),
                CTerm::Null(_) => None,
            }
        };
        match (to_term(&l), to_term(&r)) {
            (Some(a), Some(b)) => self.solver.implies(&crate::atom::Comparison::new(a, op, b)),
            _ => false,
        }
    }

    /// Find all bindings of `body` (a conjunction with plain `Var`s) into
    /// the current facts, extending `seed`. Negative literals are not
    /// supported inside chase dependencies and fail the match.
    fn match_body(
        &self,
        body: &[Literal],
        seed: &BTreeMap<Var, CTerm>,
    ) -> Vec<BTreeMap<Var, CTerm>> {
        let mut db: Vec<&Atom> = Vec::new();
        let mut cmps = Vec::new();
        for l in body {
            match l {
                Literal::Pos(a) => db.push(a),
                Literal::Cmp(c) => cmps.push(c),
                Literal::Neg(_) => return Vec::new(),
            }
        }
        let mut bindings: Vec<BTreeMap<Var, CTerm>> = vec![seed.clone()];
        let empty_rel: Vec<Vec<CTerm>> = Vec::new();
        for atom in db {
            let candidates = self.by_pred.get(&atom.pred).unwrap_or(&empty_rel);
            let mut next: Vec<BTreeMap<Var, CTerm>> = Vec::new();
            for b in &bindings {
                for args in candidates {
                    if args.len() != atom.args.len() {
                        continue;
                    }
                    let mut b2 = b.clone();
                    let mut ok = true;
                    for (pat, val) in atom.args.iter().zip(args) {
                        match pat {
                            Term::Const(c) => {
                                if self.rep(val) != CTerm::Const(*c) {
                                    ok = false;
                                    break;
                                }
                            }
                            Term::Var(v) => match b2.get(v) {
                                Some(bound) => {
                                    if self.rep(bound) != self.rep(val) {
                                        ok = false;
                                        break;
                                    }
                                }
                                None => {
                                    b2.insert(*v, self.rep(val));
                                }
                            },
                        }
                    }
                    if ok {
                        next.push(b2);
                    }
                }
            }
            bindings = next;
            if bindings.is_empty() {
                return bindings;
            }
        }
        bindings.retain(|b| {
            cmps.iter()
                .all(|c| match (instantiate(&c.lhs, b), instantiate(&c.rhs, b)) {
                    (Some(l), Some(r)) => self.eval_cmp(&l, c.op, &r),
                    _ => false,
                })
        });
        bindings
    }

    /// Run the chase to fixpoint (or budget exhaustion).
    pub fn run(&mut self) {
        let empty = BTreeMap::new();
        for _round in 0..self.budget.max_rounds {
            let mut changed = false;

            // 1. tgds: body ⇒ head atom (existential head vars get nulls).
            for (ti, tgd) in self.ctx.tgds.iter().enumerate() {
                let ConstraintHead::Atom(head) = &tgd.head else {
                    continue;
                };
                let head = head.clone();
                for binding in self.match_body(&tgd.body, &empty) {
                    let key = format!("t{ti}:{binding:?}");
                    if !self.fired.insert(key) {
                        continue;
                    }
                    let mut b = binding.clone();
                    let mut args = Vec::with_capacity(head.args.len());
                    let mut ok = true;
                    for t in &head.args {
                        match t {
                            Term::Const(c) => args.push(CTerm::Const(*c)),
                            Term::Var(v) => {
                                if let Some(val) = b.get(v) {
                                    args.push(val.clone());
                                } else if let Some(null) = self.fresh_null() {
                                    b.insert(*v, null.clone());
                                    args.push(null);
                                } else {
                                    ok = false;
                                    break;
                                }
                            }
                        }
                    }
                    if ok && self.facts.len() < self.budget.max_facts {
                        changed |= self.insert_fact(head.pred, args);
                    }
                }
            }

            // 2. views in reverse: a view-head fact implies its body with
            //    shared fresh nulls for body-only variables.
            for (vi, view) in self.ctx.views.iter().enumerate() {
                let head_lit = [Literal::Pos(view.head.clone())];
                let view_body = view.body.clone();
                for binding in self.match_body(&head_lit, &empty) {
                    let key = format!("v{vi}:{binding:?}");
                    if !self.fired.insert(key) {
                        continue;
                    }
                    let mut b = binding.clone();
                    let mut new_facts = Vec::new();
                    let mut ok = true;
                    for l in &view_body {
                        let Literal::Pos(a) = l else { continue };
                        let mut args = Vec::with_capacity(a.args.len());
                        for t in &a.args {
                            match t {
                                Term::Const(c) => args.push(CTerm::Const(*c)),
                                Term::Var(v) => {
                                    if let Some(val) = b.get(v) {
                                        args.push(val.clone());
                                    } else if let Some(null) = self.fresh_null() {
                                        b.insert(*v, null.clone());
                                        args.push(null);
                                    } else {
                                        ok = false;
                                        break;
                                    }
                                }
                            }
                        }
                        if !ok {
                            break;
                        }
                        new_facts.push((a.pred, args));
                    }
                    if ok {
                        for (p, args) in new_facts {
                            if self.facts.len() < self.budget.max_facts {
                                changed |= self.insert_fact(p, args);
                            }
                        }
                    }
                }
            }

            // 3. egds: body ⇒ X = Y merges.
            let mut merges: Vec<(CTerm, CTerm)> = Vec::new();
            for egd in &self.ctx.egds {
                let ConstraintHead::Cmp(c) = &egd.head else {
                    continue;
                };
                for binding in self.match_body(&egd.body, &empty) {
                    if let (Some(l), Some(r)) =
                        (instantiate(&c.lhs, &binding), instantiate(&c.rhs, &binding))
                    {
                        merges.push((l, r));
                    }
                }
            }
            // 4. Functional congruence: if the determinant prefix of two
            //    facts of the same relation agrees, the remaining
            //    arguments merge (classes/structures: OID determines all
            //    attributes; methods: OID + arguments determine Value).
            let snapshot: Vec<CFact> = self.facts.iter().cloned().collect();
            for (i, (p1, a1)) in snapshot.iter().enumerate() {
                let Some(&k) = self.ctx.functional.get(p1) else {
                    continue;
                };
                if a1.len() < k {
                    continue;
                }
                for (p2, a2) in snapshot.iter().skip(i + 1) {
                    if p1 != p2 || a1.len() != a2.len() {
                        continue;
                    }
                    let prefix_eq = a1[..k]
                        .iter()
                        .zip(&a2[..k])
                        .all(|(x, y)| self.rep(x) == self.rep(y));
                    if prefix_eq {
                        for (x, y) in a1.iter().zip(a2).skip(k) {
                            merges.push((x.clone(), y.clone()));
                        }
                    }
                }
            }
            for (l, r) in merges {
                changed |= self.merge(&l, &r);
            }

            if !changed {
                break;
            }
        }
    }

    /// Check whether the conjunctive `pattern` (with `frozen` variables
    /// fixed and all other variables existential) maps homomorphically
    /// into the chased facts.
    pub fn entails(&self, pattern: &[Atom], frozen: &BTreeSet<Var>) -> bool {
        let lits: Vec<Literal> = pattern.iter().map(|a| Literal::Pos(a.clone())).collect();
        // Pre-bind frozen variables to their frozen chase terms.
        let seed: BTreeMap<Var, CTerm> = frozen
            .iter()
            .map(|v| (*v, self.rep(&CTerm::Frozen(*v))))
            .collect();
        !self.match_body(&lits, &seed).is_empty()
    }

    /// Number of facts currently derived.
    pub fn fact_count(&self) -> usize {
        self.facts.len()
    }
}

fn freeze(t: &Term) -> CTerm {
    match t {
        Term::Var(v) => CTerm::Frozen(*v),
        Term::Const(c) => CTerm::Const(*c),
    }
}

fn instantiate(t: &Term, b: &BTreeMap<Var, CTerm>) -> Option<CTerm> {
    match t {
        Term::Const(c) => Some(CTerm::Const(*c)),
        Term::Var(v) => b.get(v).cloned(),
    }
}

/// Decide whether removing `pattern` (a group of positive atoms) from a
/// query body is sound given the remaining `kept` body, the dependencies
/// and the query's comparison context.
pub fn group_removal_sound(
    kept: &[Literal],
    pattern: &[Atom],
    projection_vars: &BTreeSet<Var>,
    ctx: &ChaseContext,
    solver: &ConstraintSet,
    budget: ChaseBudget,
) -> bool {
    // Frozen variables: those shared with the kept body or projected.
    let kept_vars: BTreeSet<Var> = kept
        .iter()
        .flat_map(|l| l.vars().into_iter().cloned())
        .chain(projection_vars.iter().cloned())
        .collect();
    let pattern_vars: BTreeSet<Var> = pattern.iter().flat_map(|a| a.vars().cloned()).collect();
    let frozen: BTreeSet<Var> = pattern_vars.intersection(&kept_vars).cloned().collect();
    let mut chase = Chase::new(kept, ctx, solver, budget);
    chase.run();
    chase.entails(pattern, &frozen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Comparison;

    fn v(n: &str) -> Term {
        Term::var(n)
    }

    fn empty_solver() -> ConstraintSet {
        ConstraintSet::new()
    }

    /// OID-identification IC: student(X, N) <- takes(X, Y).
    fn oid_ident_ic() -> Constraint {
        Constraint::new(
            ConstraintHead::Atom(Atom::new("student", vec![v("X"), v("N")])),
            vec![Literal::pos("takes", vec![v("X"), v("Y")])],
        )
    }

    #[test]
    fn tgd_derives_implied_atom() {
        let ctx = ChaseContext::from_constraints(&[oid_ident_ic()], vec![], BTreeMap::new());
        let solver = empty_solver();
        let kept = vec![Literal::pos("takes", vec![v("S"), v("Sec")])];
        let mut chase = Chase::new(&kept, &ctx, &solver, ChaseBudget::default());
        chase.run();
        // student(S, _) must be derivable with S frozen.
        let frozen: BTreeSet<Var> = [Var::new("S")].into_iter().collect();
        assert!(chase.entails(
            &[Atom::new("student", vec![v("S"), v("Anything")])],
            &frozen
        ));
        // But not with an arbitrary frozen first argument.
        let frozen2: BTreeSet<Var> = [Var::new("T")].into_iter().collect();
        assert!(!chase.entails(&[Atom::new("student", vec![v("T"), v("A")])], &frozen2));
    }

    #[test]
    fn removal_of_implied_class_atom_is_sound() {
        // Query: takes(S, Sec), student(S, N) with N unused elsewhere —
        // removing student is sound under the OID-identification IC.
        let ctx = ChaseContext::from_constraints(&[oid_ident_ic()], vec![], BTreeMap::new());
        let solver = empty_solver();
        let kept = vec![Literal::pos("takes", vec![v("S"), v("Sec")])];
        assert!(group_removal_sound(
            &kept,
            &[Atom::new("student", vec![v("S"), v("N")])],
            &BTreeSet::new(),
            &ctx,
            &solver,
            ChaseBudget::default(),
        ));
        // If N is projected it is frozen, and the null-valued witness no
        // longer suffices.
        let proj: BTreeSet<Var> = [Var::new("N")].into_iter().collect();
        assert!(!group_removal_sound(
            &kept,
            &[Atom::new("student", vec![v("S"), v("N")])],
            &proj,
            &ctx,
            &solver,
            ChaseBudget::default(),
        ));
    }

    #[test]
    fn egd_merges_via_key_constraint() {
        // IC7 shape: X1 = X2 <- faculty(X1, N1), faculty(X2, N2), N1 = N2.
        let ic7 = Constraint::named(
            "IC7",
            ConstraintHead::Cmp(Comparison::eq(v("X1"), v("X2"))),
            vec![
                Literal::pos("faculty", vec![v("X1"), v("N1")]),
                Literal::pos("faculty", vec![v("X2"), v("N2")]),
                Literal::cmp(v("N1"), CmpOp::Eq, v("N2")),
            ],
        );
        let ctx = ChaseContext::from_constraints(&[ic7], vec![], BTreeMap::new());
        // Query context: Name1 = Name2 holds.
        let solver = ConstraintSet::from_comparisons(&[Comparison::eq(
            Term::var("Name1"),
            Term::var("Name2"),
        )]);
        let kept = vec![
            Literal::pos("faculty", vec![v("Z"), v("Name1")]),
            Literal::pos("faculty", vec![v("W"), v("Name2")]),
        ];
        let mut chase = Chase::new(&kept, &ctx, &solver, ChaseBudget::default());
        chase.run();
        // Z and W must be merged.
        assert_eq!(
            chase.rep(&CTerm::Frozen(Var::new("Z"))),
            chase.rep(&CTerm::Frozen(Var::new("W")))
        );
    }

    #[test]
    fn view_reverse_direction_creates_witness_path() {
        // asr(X, W) <- takes(X, Y), has_ta(Y, W)
        let view = Rule::new(
            Atom::new("asr", vec![v("X"), v("W")]),
            vec![
                Literal::pos("takes", vec![v("X"), v("Y")]),
                Literal::pos("has_ta", vec![v("Y"), v("W")]),
            ],
        );
        let ctx = ChaseContext::from_constraints(&[], vec![view], BTreeMap::new());
        let solver = empty_solver();
        let kept = vec![Literal::pos("asr", vec![v("S"), v("T")])];
        let mut chase = Chase::new(&kept, &ctx, &solver, ChaseBudget::default());
        chase.run();
        // The witness chain takes(S, ~n), has_ta(~n, T) must exist.
        let frozen: BTreeSet<Var> = [Var::new("S"), Var::new("T")].into_iter().collect();
        assert!(chase.entails(
            &[
                Atom::new("takes", vec![v("S"), v("Mid")]),
                Atom::new("has_ta", vec![v("Mid"), v("T")]),
            ],
            &frozen
        ));
    }

    #[test]
    fn application4_q_fold_is_sound() {
        // The full Application 4 "Q" case: replacing the 4-hop chain by
        // asr(X, W) with W projected is sound.
        let view = Rule::new(
            Atom::new("asr", vec![v("X"), v("W")]),
            vec![
                Literal::pos("takes", vec![v("X"), v("Y")]),
                Literal::pos("is_section_of", vec![v("Y"), v("Z")]),
                Literal::pos("has_sections", vec![v("Z"), v("V")]),
                Literal::pos("has_ta", vec![v("V"), v("W")]),
            ],
        );
        let ctx = ChaseContext::from_constraints(&[], vec![view], BTreeMap::new());
        let solver = empty_solver();
        let kept = vec![
            Literal::pos("student", vec![v("X"), v("Name")]),
            Literal::pos("asr", vec![v("X"), v("W")]),
        ];
        let pattern = [
            Atom::new("takes", vec![v("X"), v("Y")]),
            Atom::new("is_section_of", vec![v("Y"), v("Z")]),
            Atom::new("has_sections", vec![v("Z"), v("V")]),
            Atom::new("has_ta", vec![v("V"), v("W")]),
        ];
        let proj: BTreeSet<Var> = [Var::new("W")].into_iter().collect();
        assert!(group_removal_sound(
            &kept,
            &pattern,
            &proj,
            &ctx,
            &solver,
            ChaseBudget::default(),
        ));
    }

    #[test]
    fn application4_q1_fold_needs_one_to_one() {
        // The Q1 case: V is projected, has_ta(V, W) is kept; removing the
        // 3-atom prefix is sound ONLY with the one-to-one egd on has_ta.
        let view = Rule::new(
            Atom::new("asr", vec![v("X"), v("W")]),
            vec![
                Literal::pos("takes", vec![v("X"), v("Y")]),
                Literal::pos("is_section_of", vec![v("Y"), v("Z")]),
                Literal::pos("has_sections", vec![v("Z"), v("V")]),
                Literal::pos("has_ta", vec![v("V"), v("W")]),
            ],
        );
        // One-to-one: has_ta(V1, W) ∧ has_ta(V2, W) ⇒ V1 = V2.
        let one_to_one = Constraint::new(
            ConstraintHead::Cmp(Comparison::eq(v("V1"), v("V2"))),
            vec![
                Literal::pos("has_ta", vec![v("V1"), v("W")]),
                Literal::pos("has_ta", vec![v("V2"), v("W")]),
            ],
        );
        let solver = empty_solver();
        let kept = vec![
            Literal::pos("student", vec![v("X"), v("Name")]),
            Literal::pos("asr", vec![v("X"), v("W")]),
            Literal::pos("has_ta", vec![v("V"), v("W")]),
        ];
        let pattern = [
            Atom::new("takes", vec![v("X"), v("Y")]),
            Atom::new("is_section_of", vec![v("Y"), v("Z")]),
            Atom::new("has_sections", vec![v("Z"), v("V")]),
        ];
        let proj: BTreeSet<Var> = [Var::new("V")].into_iter().collect();

        // Without the one-to-one constraint: unsound, fold rejected.
        let ctx_no = ChaseContext::from_constraints(&[], vec![view.clone()], BTreeMap::new());
        assert!(!group_removal_sound(
            &kept,
            &pattern,
            &proj,
            &ctx_no,
            &solver,
            ChaseBudget::default(),
        ));

        // With it: the chase merges the witness TA with the query's V and
        // the fold becomes sound — exactly the paper's argument.
        let ctx_yes = ChaseContext::from_constraints(&[one_to_one], vec![view], BTreeMap::new());
        assert!(group_removal_sound(
            &kept,
            &pattern,
            &proj,
            &ctx_yes,
            &solver,
            ChaseBudget::default(),
        ));
    }

    #[test]
    fn oid_functional_congruence_merges_attributes() {
        // With Z = W established by an egd, faculty(Z, Name1) and
        // faculty(W, Name2) must get Name1 merged with Name2 via
        // OID-functionality.
        let eq_egd = Constraint::new(
            ConstraintHead::Cmp(Comparison::eq(v("A"), v("B"))),
            vec![Literal::pos("pin", vec![v("A"), v("B")])],
        );
        let mut fd = BTreeMap::new();
        fd.insert(PredSym::new("faculty"), 1);
        let ctx = ChaseContext {
            egds: vec![eq_egd],
            functional: fd,
            ..Default::default()
        };
        let solver = empty_solver();
        let kept = vec![
            Literal::pos("faculty", vec![v("Z"), v("Name1")]),
            Literal::pos("faculty", vec![v("W"), v("Name2")]),
            Literal::pos("pin", vec![v("Z"), v("W")]),
        ];
        let mut chase = Chase::new(&kept, &ctx, &solver, ChaseBudget::default());
        chase.run();
        assert_eq!(
            chase.rep(&CTerm::Frozen(Var::new("Z"))),
            chase.rep(&CTerm::Frozen(Var::new("W")))
        );
        assert_eq!(
            chase.rep(&CTerm::Frozen(Var::new("Name1"))),
            chase.rep(&CTerm::Frozen(Var::new("Name2")))
        );
    }

    #[test]
    fn budget_bounds_termination() {
        // A pathological transitive tgd must terminate under budget.
        let t1 = Constraint::new(
            ConstraintHead::Atom(Atom::new("p", vec![v("Y"), v("Z")])),
            vec![Literal::pos("p", vec![v("X"), v("Y")])],
        );
        let ctx = ChaseContext::from_constraints(&[t1], vec![], BTreeMap::new());
        let solver = empty_solver();
        let kept = vec![Literal::pos("p", vec![v("A"), v("B")])];
        let mut chase = Chase::new(
            &kept,
            &ctx,
            &solver,
            ChaseBudget {
                max_rounds: 4,
                max_facts: 50,
                max_nulls: 20,
            },
        );
        chase.run();
        assert!(chase.fact_count() <= 50);
    }

    #[test]
    fn cmp_in_tgd_body_consults_query_solver() {
        // tgd: adult(X) <- person(X, A), A >= 18 — fires only when the
        // query's own constraints imply the bound.
        let tgd = Constraint::new(
            ConstraintHead::Atom(Atom::new("adult", vec![v("X")])),
            vec![
                Literal::pos("person", vec![v("X"), v("A")]),
                Literal::cmp(v("A"), CmpOp::Ge, Term::int(18)),
            ],
        );
        let ctx = ChaseContext::from_constraints(&[tgd], vec![], BTreeMap::new());
        let kept = vec![Literal::pos("person", vec![v("P"), v("Age")])];
        let frozen: BTreeSet<Var> = [Var::new("P")].into_iter().collect();

        let strong = ConstraintSet::from_comparisons(&[Comparison::new(
            Term::var("Age"),
            CmpOp::Gt,
            Term::int(20),
        )]);
        let mut c1 = Chase::new(&kept, &ctx, &strong, ChaseBudget::default());
        c1.run();
        assert!(c1.entails(&[Atom::new("adult", vec![v("P")])], &frozen));

        let weak = ConstraintSet::from_comparisons(&[Comparison::new(
            Term::var("Age"),
            CmpOp::Gt,
            Term::int(10),
        )]);
        let mut c2 = Chase::new(&kept, &ctx, &weak, ChaseBudget::default());
        c2.run();
        assert!(!c2.entails(&[Atom::new("adult", vec![v("P")])], &frozen));
    }
}
