//! Bottom-up evaluation: semi-naive materialization and query answering.
//!
//! The engine executes conjunctive queries (with stratified negation and
//! comparison built-ins) against an [`EdbDatabase`], and materializes rule
//! programs — in particular access-support-relation views (Application 4
//! of the paper), which are "separate structures that explicitly store
//! OIDs that relate objects with each other".
//!
//! Joins bind variables left to right over a greedily reordered body
//! (most-bound literal first), probing on-demand hash indexes keyed by
//! the bound argument positions. [`EvalStats`] counts the work done so
//! benchmarks can report *logical* cost (tuples examined, bindings
//! produced) alongside wall-clock time.

use crate::atom::{Atom, CmpOp, Literal, PredSym};
use crate::clause::{Query, Rule};
use crate::error::{DatalogError, Result};
use crate::program::{EdbDatabase, Program, RangeBound, Relation};
use crate::term::{Const, Term, Var};
use std::collections::{HashMap, HashSet};

/// Work counters for one evaluation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Tuples examined while scanning or probing relations.
    pub tuples_examined: u64,
    /// Intermediate bindings produced by joins.
    pub bindings_produced: u64,
    /// Facts derived during materialization.
    pub facts_derived: u64,
    /// Anti-join (negation) probes.
    pub negation_probes: u64,
    /// Bindings flowing *into* positive-atom join steps (the sum of input
    /// cardinalities across every `join_atom` call).
    pub join_input_tuples: u64,
    /// Bindings flowing *out of* positive-atom join steps (the sum of
    /// output cardinalities; the join's selectivity is output/input).
    pub join_output_tuples: u64,
    /// Probes against declared (persistent) hash indexes.
    pub index_probes: u64,
    /// Range probes against declared ordered indexes.
    pub range_probes: u64,
    /// Full relation passes: explicit scans plus each build of an
    /// ephemeral (per-evaluation) join index.
    pub scans: u64,
    /// Path-expression chains fused into index-nested-loop walks.
    pub chains_fused: u64,
    /// Tuples examined per predicate — the object-database cost model
    /// distinguishes class-relation access (object fetches) from
    /// relationship traversal and extent probes.
    pub per_pred: crate::fxhash::FxHashMap<PredSym, u64>,
}

impl EvalStats {
    /// Merge another stats record into this one.
    pub fn merge(&mut self, other: &EvalStats) {
        self.tuples_examined += other.tuples_examined;
        self.bindings_produced += other.bindings_produced;
        self.facts_derived += other.facts_derived;
        self.negation_probes += other.negation_probes;
        self.join_input_tuples += other.join_input_tuples;
        self.join_output_tuples += other.join_output_tuples;
        self.index_probes += other.index_probes;
        self.range_probes += other.range_probes;
        self.scans += other.scans;
        self.chains_fused += other.chains_fused;
        for (k, v) in &other.per_pred {
            *self.per_pred.entry(*k).or_insert(0) += v;
        }
    }

    /// Tuples examined for one predicate.
    pub fn examined(&self, pred: &str) -> u64 {
        self.per_pred.get(&PredSym::new(pred)).copied().unwrap_or(0)
    }
}

/// Physical knobs for one evaluation.
///
/// The default is the full access-path repertoire; [`EvalOptions::scan_only`]
/// reproduces the pre-index engine (ephemeral join indexes and scans only),
/// which the differential tests and the `*_seed` bench rows use as the
/// reference executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalOptions {
    /// Consult declared hash/ordered indexes for equality and range
    /// probes (off → every access is a scan or ephemeral join index).
    pub use_indexes: bool,
    /// Fuse runs of binary-relation atoms chained through single-use
    /// variables into one index-nested-loop walk.
    pub fuse_chains: bool,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            use_indexes: true,
            fuse_chains: true,
        }
    }
}

impl EvalOptions {
    /// The pre-index engine: no declared-index probes, no chain fusion.
    pub fn scan_only() -> Self {
        EvalOptions {
            use_indexes: false,
            fuse_chains: false,
        }
    }
}

type Binding = HashMap<Var, Const>;

/// Range constraints harvested from a body's comparison literals:
/// variable → (lower bound, upper bound), each side optional.
pub type RangeMap = HashMap<Var, (Option<RangeBound>, Option<RangeBound>)>;

/// Collect per-variable range bounds from `Var op Const` comparison
/// literals (`<`, `<=`, `>`, `>=`, either operand order). The harvested
/// bounds only *pre-filter* index probes — every comparison literal still
/// runs, so an over-wide bound is harmless and the tightest bound wins.
/// Public so the cost model prices range probes against the same bounds
/// the executor will use.
pub fn collect_ranges(body: &[Literal]) -> RangeMap {
    let mut out = RangeMap::new();
    for l in body {
        let Literal::Cmp(c) = l else { continue };
        let (v, k, op) = match (&c.lhs, &c.rhs) {
            (Term::Var(v), Term::Const(k)) => (*v, *k, c.op),
            (Term::Const(k), Term::Var(v)) => (*v, *k, c.op.flip()),
            _ => continue,
        };
        let entry = out.entry(v).or_default();
        let tighten = |slot: &mut Option<RangeBound>, cand: RangeBound, want_greater: bool| {
            let replace = match slot {
                None => true,
                Some((cur, _)) => match cand.0.order(cur) {
                    Some(ord) => {
                        if want_greater {
                            ord == std::cmp::Ordering::Greater
                        } else {
                            ord == std::cmp::Ordering::Less
                        }
                    }
                    None => false,
                },
            };
            if replace {
                *slot = Some(cand);
            }
        };
        match op {
            CmpOp::Lt => tighten(&mut entry.1, (k, false), false),
            CmpOp::Le => tighten(&mut entry.1, (k, true), false),
            CmpOp::Gt => tighten(&mut entry.0, (k, false), true),
            CmpOp::Ge => tighten(&mut entry.0, (k, true), true),
            CmpOp::Eq | CmpOp::Ne => {}
        }
    }
    out
}

/// A hash index over one relation: key values (at the bound positions) →
/// indices of matching tuples.
type TupleIndex = HashMap<Vec<Const>, Vec<usize>>;

/// On-demand hash indexes for one evaluation: (pred, bound positions) →
/// [`TupleIndex`]. These are the fallback when no declared index covers a
/// bound column; each build is a full relation pass, counted in
/// [`EvalStats::scans`] via `builds`.
struct IndexCache<'a> {
    db: &'a EdbDatabase,
    cache: HashMap<(PredSym, Vec<usize>), TupleIndex>,
    builds: u64,
}

impl<'a> IndexCache<'a> {
    fn new(db: &'a EdbDatabase) -> Self {
        IndexCache {
            db,
            cache: HashMap::new(),
            builds: 0,
        }
    }

    fn index(&mut self, pred: &crate::atom::PredSym, positions: &[usize]) -> Option<&TupleIndex> {
        let rel = self.db.relation(pred)?;
        let key = (*pred, positions.to_vec());
        let builds = &mut self.builds;
        Some(self.cache.entry(key).or_insert_with(|| {
            *builds += 1;
            let mut m: HashMap<Vec<Const>, Vec<usize>> = HashMap::new();
            for (i, t) in rel.tuples().iter().enumerate() {
                let k: Vec<Const> = positions.iter().map(|&p| t[p]).collect();
                m.entry(k).or_default().push(i);
            }
            m
        }))
    }
}

/// The physical access path chosen for one positive-atom join step.
enum AccessPath {
    /// Probe the declared hash index on this column with each binding's
    /// value for it.
    HashProbe(usize),
    /// The (shared) candidate positions from one range probe against a
    /// declared ordered index; identical for every input binding because
    /// range bounds come from body constants.
    RangeProbe(Vec<usize>),
    /// Build/reuse an ephemeral per-evaluation index on the bound columns.
    Ephemeral,
    /// Enumerate the whole relation per binding.
    Scan,
}

/// Bound argument positions (and their values) of `atom` under binding `b`.
fn bound_columns(atom: &Atom, b: &Binding) -> (Vec<usize>, Vec<Const>) {
    let mut bound_pos: Vec<usize> = Vec::new();
    let mut bound_vals: Vec<Const> = Vec::new();
    for (i, t) in atom.args.iter().enumerate() {
        match t {
            Term::Const(c) => {
                bound_pos.push(i);
                bound_vals.push(*c);
            }
            Term::Var(v) => {
                if let Some(c) = b.get(v) {
                    bound_pos.push(i);
                    bound_vals.push(*c);
                }
            }
        }
    }
    (bound_pos, bound_vals)
}

/// Pick the access path for `atom` given the (position-uniform) bound
/// columns of the binding set. Preference order: declared hash probe on a
/// bound column, range probe on an unbound column constrained by body
/// comparisons (when the probe is estimated cheaper than the fallback),
/// ephemeral join index on the bound columns, full scan.
fn choose_access_path(
    rel: &Relation,
    atom: &Atom,
    bound_pos: &[usize],
    ranges: &RangeMap,
    b0: &Binding,
    n_bindings: usize,
    opts: &EvalOptions,
) -> AccessPath {
    if opts.use_indexes {
        // Most selective declared hash index over a bound column.
        if let Some(&pos) = bound_pos
            .iter()
            .filter(|&&p| rel.has_hash_index(p))
            .max_by_key(|&&p| rel.index_distinct(p).unwrap_or(0))
        {
            return AccessPath::HashProbe(pos);
        }
        // Range probe: an unbound variable column with harvested bounds
        // and an ordered index. The comparison literal itself still runs
        // later, so the probe only has to be a sound pre-filter.
        let mut best: Option<(usize, usize)> = None; // (count, col)
        for (i, t) in atom.args.iter().enumerate() {
            let Term::Var(v) = t else { continue };
            if b0.contains_key(v) {
                continue;
            }
            let Some((lo, hi)) = ranges.get(v) else {
                continue;
            };
            if let Some(k) = rel.range_count(i, lo.as_ref(), hi.as_ref()) {
                if best.is_none_or(|(bk, _)| k < bk) {
                    best = Some((k, i));
                }
            }
        }
        if let Some((k, col)) = best {
            // Worth it when probing every binding touches fewer tuples
            // than one full pass (the cost of the ephemeral build or of a
            // single scan); with no bound column the probe always wins.
            if bound_pos.is_empty() || k.saturating_mul(n_bindings) <= rel.len().max(1) {
                let Term::Var(v) = &atom.args[col] else {
                    unreachable!()
                };
                let (lo, hi) = &ranges[v];
                if let Some(positions) = rel.range_probe(col, lo.as_ref(), hi.as_ref()) {
                    return AccessPath::RangeProbe(positions);
                }
            }
        }
    }
    if bound_pos.is_empty() {
        AccessPath::Scan
    } else {
        AccessPath::Ephemeral
    }
}

/// Evaluate a positive atom against the database, extending each binding.
fn join_atom(
    db: &EdbDatabase,
    idx: &mut IndexCache<'_>,
    atom: &Atom,
    bindings: Vec<Binding>,
    ranges: &RangeMap,
    opts: &EvalOptions,
    stats: &mut EvalStats,
) -> Result<Vec<Binding>> {
    let Some(rel) = db.relation(&atom.pred) else {
        // Unknown relation: empty (declared use); mirrors an empty extent.
        return Ok(Vec::new());
    };
    if let Some(a) = rel.arity() {
        if a != atom.arity() {
            return Err(DatalogError::ArityMismatch {
                predicate: atom.pred.name().to_string(),
                expected: a,
                found: atom.arity(),
            });
        }
    }
    stats.join_input_tuples += bindings.len() as u64;
    let Some(b0) = bindings.first() else {
        return Ok(Vec::new());
    };
    // Bound positions are uniform across the binding set (every binding
    // carries the same variables), so the access path is chosen once.
    let (uniform_pos, _) = bound_columns(atom, b0);
    let path = choose_access_path(rel, atom, &uniform_pos, ranges, b0, bindings.len(), opts);
    if let AccessPath::RangeProbe(_) = path {
        stats.range_probes += 1;
    }
    let mut out = Vec::new();
    for b in bindings {
        let candidates: Vec<usize> = match &path {
            AccessPath::HashProbe(pos) => {
                stats.index_probes += 1;
                let val = term_value(&atom.args[*pos], &b).expect("bound column");
                rel.hash_probe(*pos, &val).unwrap_or(&[]).to_vec()
            }
            AccessPath::RangeProbe(positions) => positions.clone(),
            AccessPath::Ephemeral => {
                let (bound_pos, bound_vals) = bound_columns(atom, &b);
                idx.index(&atom.pred, &bound_pos)
                    .and_then(|m| m.get(&bound_vals).cloned())
                    .unwrap_or_default()
            }
            AccessPath::Scan => {
                stats.scans += 1;
                (0..rel.len()).collect()
            }
        };
        for ti in candidates {
            let tuple = &rel.tuples()[ti];
            stats.tuples_examined += 1;
            *stats.per_pred.entry(atom.pred).or_insert(0) += 1;
            let mut b2 = b.clone();
            let mut ok = true;
            for (t, c) in atom.args.iter().zip(tuple) {
                match t {
                    Term::Const(k) => {
                        if k != c {
                            ok = false;
                            break;
                        }
                    }
                    Term::Var(v) => match b2.get(v) {
                        Some(existing) => {
                            if existing != c {
                                ok = false;
                                break;
                            }
                        }
                        None => {
                            b2.insert(*v, *c);
                        }
                    },
                }
            }
            if ok {
                stats.bindings_produced += 1;
                out.push(b2);
            }
        }
    }
    stats.join_output_tuples += out.len() as u64;
    Ok(out)
}

/// Whether an equality comparison has at least one side resolvable under
/// some binding (uniform across the binding set: same body position).
fn half_bound(c: &crate::atom::Comparison, bindings: &[Binding]) -> Option<()> {
    let b = bindings.first()?;
    if term_value(&c.lhs, b).is_some() || term_value(&c.rhs, b).is_some() {
        Some(())
    } else {
        None
    }
}

fn term_value(t: &Term, b: &Binding) -> Option<Const> {
    match t {
        Term::Const(c) => Some(*c),
        Term::Var(v) => b.get(v).cloned(),
    }
}

fn eval_cmp(c: &crate::atom::Comparison, b: &Binding) -> Result<bool> {
    let (Some(l), Some(r)) = (term_value(&c.lhs, b), term_value(&c.rhs, b)) else {
        return Err(DatalogError::UnsafeVariable {
            clause: c.to_string(),
            variable: c
                .vars()
                .find(|v| !b.contains_key(*v))
                .map(|v| v.name().to_string())
                .unwrap_or_default(),
        });
    };
    match c.op {
        crate::atom::CmpOp::Eq => Ok(l.same_value(&r)),
        crate::atom::CmpOp::Ne => Ok(!l.same_value(&r)),
        op => match l.order(&r) {
            Some(ord) => Ok(op.test(ord)),
            None => Err(DatalogError::Incomparable {
                lhs: l.to_string(),
                rhs: r.to_string(),
            }),
        },
    }
}

/// Count every occurrence of each variable across the body's literals
/// (duplicates within one literal count separately).
fn occurrence_counts(body: &[Literal]) -> HashMap<Var, usize> {
    let mut counts: HashMap<Var, usize> = HashMap::new();
    let count_term = |t: &Term, counts: &mut HashMap<Var, usize>| {
        if let Term::Var(v) = t {
            *counts.entry(*v).or_insert(0) += 1;
        }
    };
    for l in body {
        match l {
            Literal::Pos(a) | Literal::Neg(a) => {
                for t in &a.args {
                    count_term(t, &mut counts);
                }
            }
            Literal::Cmp(c) => {
                count_term(&c.lhs, &mut counts);
                count_term(&c.rhs, &mut counts);
            }
        }
    }
    counts
}

/// One execution step after chain-fusion detection: either a single body
/// literal, or a run of binary atoms fused into an index-nested-loop walk.
enum Step<'a> {
    Single(&'a Literal),
    Chain(Vec<&'a Atom>),
}

/// Fuse runs of consecutive binary positive atoms chained head-to-tail
/// through variables that occur exactly twice in the body and are not
/// protected (projected / exported by the rule head). Such intermediate
/// variables exist only to link the hops — per the Odra collection-join
/// fusion, the run collapses into one index-nested-loop walk that never
/// materializes the intermediate bindings.
fn fuse_chains<'a>(
    ordered: &[&'a Literal],
    body: &[Literal],
    protected: &HashSet<Var>,
) -> Vec<Step<'a>> {
    let counts = occurrence_counts(body);
    let fusable_link = |a: &Atom, b: &Atom| -> bool {
        if a.args.len() != 2 || b.args.len() != 2 {
            return false;
        }
        let (Term::Var(mid), Term::Var(next_src)) = (&a.args[1], &b.args[0]) else {
            return false;
        };
        if mid != next_src || protected.contains(mid) {
            return false;
        }
        // Exactly the two chain occurrences, and not a self-link.
        counts.get(mid).copied().unwrap_or(0) == 2
            && a.args[0] != a.args[1]
            && b.args[0] != b.args[1]
    };
    let mut steps: Vec<Step<'a>> = Vec::new();
    let mut i = 0;
    while i < ordered.len() {
        let Literal::Pos(a) = ordered[i] else {
            steps.push(Step::Single(ordered[i]));
            i += 1;
            continue;
        };
        let mut run: Vec<&Atom> = vec![a];
        while let Some(Literal::Pos(next)) = ordered.get(i + run.len()) {
            if fusable_link(run[run.len() - 1], next) {
                run.push(next);
            } else {
                break;
            }
        }
        if run.len() >= 2 {
            i += run.len();
            steps.push(Step::Chain(run));
        } else {
            steps.push(Step::Single(ordered[i]));
            i += 1;
        }
    }
    steps
}

/// All successors of `from` through the binary relation `pred` (column 0 →
/// column 1), via the declared hash index when present, else the ephemeral
/// index cache.
fn hop_targets(
    db: &EdbDatabase,
    idx: &mut IndexCache<'_>,
    pred: &PredSym,
    from: &Const,
    stats: &mut EvalStats,
) -> Vec<Const> {
    let Some(rel) = db.relation(pred) else {
        return Vec::new();
    };
    let positions: Vec<usize> = if let Some(p) = rel.hash_probe(0, from) {
        stats.index_probes += 1;
        p.to_vec()
    } else {
        idx.index(pred, &[0])
            .and_then(|m| m.get(&vec![*from]).cloned())
            .unwrap_or_default()
    };
    let rel = db.relation(pred).expect("checked above");
    let mut out = Vec::with_capacity(positions.len());
    for ti in positions {
        stats.tuples_examined += 1;
        *stats.per_pred.entry(*pred).or_insert(0) += 1;
        out.push(rel.tuple_at(ti)[1]);
    }
    out
}

/// Walk a fused chain from one start value: the set of values reachable
/// through every hop, deduplicating at each level.
fn chain_reach(
    db: &EdbDatabase,
    idx: &mut IndexCache<'_>,
    atoms: &[&Atom],
    start: Const,
    stats: &mut EvalStats,
) -> HashSet<Const> {
    let mut level: HashSet<Const> = HashSet::from([start]);
    for a in atoms {
        let mut next: HashSet<Const> = HashSet::new();
        for v in &level {
            next.extend(hop_targets(db, idx, &a.pred, v, stats));
        }
        level = next;
        if level.is_empty() {
            break;
        }
    }
    level
}

/// Execute one fused chain step over the binding set.
fn join_chain(
    db: &EdbDatabase,
    idx: &mut IndexCache<'_>,
    atoms: &[&Atom],
    bindings: Vec<Binding>,
    stats: &mut EvalStats,
) -> Result<Vec<Binding>> {
    stats.chains_fused += 1;
    stats.join_input_tuples += bindings.len() as u64;
    // Arity guard: a hop relation with non-binary arity is a real error
    // (the unfused path would raise it too); unknown relations mean empty.
    for a in atoms {
        if let Some(rel) = db.relation(&a.pred) {
            if let Some(n) = rel.arity() {
                if n != 2 {
                    return Err(DatalogError::ArityMismatch {
                        predicate: a.pred.name().to_string(),
                        expected: n,
                        found: 2,
                    });
                }
            }
        }
    }
    let start_term = &atoms[0].args[0];
    let end_term = &atoms[atoms.len() - 1].args[1];
    let mut out = Vec::new();
    let emit = |b: &Binding, end: Const, out: &mut Vec<Binding>| match end_term {
        Term::Const(c) => {
            if *c == end {
                out.push(b.clone());
            }
        }
        Term::Var(v) => match b.get(v) {
            Some(existing) => {
                if *existing == end {
                    out.push(b.clone());
                }
            }
            None => {
                let mut b2 = b.clone();
                b2.insert(*v, end);
                out.push(b2);
            }
        },
    };
    for b in &bindings {
        match term_value(start_term, b) {
            Some(s) => {
                for end in chain_reach(db, idx, atoms, s, stats) {
                    emit(b, end, &mut out);
                }
            }
            None => {
                // Unbound start: enumerate the first hop's distinct source
                // values, walking the chain from each.
                let Term::Var(sv) = start_term else {
                    unreachable!("constants are always bound")
                };
                let Some(rel0) = db.relation(&atoms[0].pred) else {
                    continue;
                };
                stats.scans += 1;
                let mut starts: HashSet<Const> = HashSet::new();
                for t in rel0.tuples() {
                    starts.insert(t[0]);
                }
                for s in starts {
                    for end in chain_reach(db, idx, atoms, s, stats) {
                        let mut b2 = b.clone();
                        b2.insert(*sv, s);
                        emit(&b2, end, &mut out);
                    }
                }
            }
        }
    }
    stats.bindings_produced += out.len() as u64;
    stats.join_output_tuples += out.len() as u64;
    Ok(out)
}

/// Evaluate a body against the database, returning all complete bindings.
/// `protected` names the variables consumed outside the body (projection
/// or rule head) — chain fusion must not eliminate them.
fn eval_body(
    db: &EdbDatabase,
    body: &[Literal],
    protected: &HashSet<Var>,
    opts: &EvalOptions,
    stats: &mut EvalStats,
) -> Result<Vec<Binding>> {
    let mut idx = IndexCache::new(db);
    let ranges = collect_ranges(body);
    // Greedy ordering: repeatedly pick the positive literal sharing the
    // most variables with those already bound (ties: original order);
    // negatives and comparisons run as soon as fully bound.
    let mut remaining: Vec<&Literal> = body.iter().collect();
    let mut bound_vars: Vec<Var> = Vec::new();
    let mut ordered: Vec<&Literal> = Vec::new();
    while !remaining.is_empty() {
        // First flush any deferred literal that is now fully bound — or
        // an equality with at least one bound side, which *binds* its
        // other side (equality propagation).
        if let Some(pos) = remaining.iter().position(|l| match l {
            Literal::Pos(_) => false,
            Literal::Cmp(c) if c.op == crate::atom::CmpOp::Eq => {
                c.vars().any(|v| bound_vars.contains(v)) || c.lhs.is_ground() || c.rhs.is_ground()
            }
            _ => l.vars().iter().all(|v| bound_vars.contains(v)),
        }) {
            let l = remaining.remove(pos);
            for v in l.vars() {
                if !bound_vars.contains(v) {
                    bound_vars.push(*v);
                }
            }
            ordered.push(l);
            continue;
        }
        // Then the best positive literal.
        let best = remaining
            .iter()
            .enumerate()
            .filter(|(_, l)| l.is_positive())
            .max_by_key(|(i, l)| {
                let shared = l.vars().iter().filter(|v| bound_vars.contains(**v)).count();
                (shared, usize::MAX - i)
            })
            .map(|(i, _)| i);
        match best {
            Some(i) => {
                let l = remaining.remove(i);
                for v in l.vars() {
                    if !bound_vars.contains(v) {
                        bound_vars.push(*v);
                    }
                }
                ordered.push(l);
            }
            None => {
                // Only unbound negatives/comparisons remain: unsafe body.
                let l = remaining.remove(0);
                ordered.push(l);
            }
        }
    }

    let steps: Vec<Step<'_>> = if opts.use_indexes && opts.fuse_chains {
        fuse_chains(&ordered, body, protected)
    } else {
        ordered.iter().map(|l| Step::Single(l)).collect()
    };

    let mut bindings: Vec<Binding> = vec![Binding::new()];
    for step in steps {
        let l = match step {
            Step::Chain(atoms) => {
                bindings = join_chain(db, &mut idx, &atoms, bindings, stats)?;
                if bindings.is_empty() {
                    break;
                }
                continue;
            }
            Step::Single(l) => l,
        };
        match l {
            Literal::Pos(a) => {
                bindings = join_atom(db, &mut idx, a, bindings, &ranges, opts, stats)?;
            }
            // An equality with exactly one bound side propagates the
            // binding (the physical analogue of using the equality as a
            // join condition / index probe — e.g. the `Z = W` OID
            // comparison of Application 3).
            Literal::Cmp(c)
                if c.op == crate::atom::CmpOp::Eq && half_bound(c, &bindings).is_some() =>
            {
                let mut out = Vec::new();
                for b in bindings {
                    match (term_value(&c.lhs, &b), term_value(&c.rhs, &b)) {
                        (Some(l), Some(r)) => {
                            if l.same_value(&r) {
                                out.push(b);
                            }
                        }
                        (Some(val), None) => {
                            let Term::Var(v) = &c.rhs else { unreachable!() };
                            let mut b2 = b;
                            b2.insert(*v, val);
                            out.push(b2);
                        }
                        (None, Some(val)) => {
                            let Term::Var(v) = &c.lhs else { unreachable!() };
                            let mut b2 = b;
                            b2.insert(*v, val);
                            out.push(b2);
                        }
                        (None, None) => {
                            return Err(DatalogError::UnsafeVariable {
                                clause: c.to_string(),
                                variable: c
                                    .vars()
                                    .next()
                                    .map(|v| v.name().to_string())
                                    .unwrap_or_default(),
                            })
                        }
                    }
                }
                bindings = out;
            }
            Literal::Neg(a) => {
                // Partially-bound anti-join: a binding survives unless some
                // tuple matches all bound positions; unbound positions are
                // existential under the negation. Repeated unbound
                // variables inside the literal must still match each other.
                let mut out = Vec::new();
                for b in bindings {
                    stats.negation_probes += 1;
                    let mut bound_pos: Vec<usize> = Vec::new();
                    let mut bound_vals: Vec<Const> = Vec::new();
                    for (i, t) in a.args.iter().enumerate() {
                        if let Some(c) = term_value(t, &b) {
                            bound_pos.push(i);
                            bound_vals.push(c);
                        }
                    }
                    let present = match db.relation(&a.pred) {
                        None => false,
                        Some(rel) => {
                            // Same access-path preference as positive joins:
                            // declared hash probe, then ephemeral, then scan.
                            let declared = if opts.use_indexes {
                                bound_pos.iter().position(|&p| rel.has_hash_index(p))
                            } else {
                                None
                            };
                            let candidates: Vec<usize> = if let Some(bi) = declared {
                                stats.index_probes += 1;
                                rel.hash_probe(bound_pos[bi], &bound_vals[bi])
                                    .unwrap_or(&[])
                                    .to_vec()
                            } else if bound_pos.is_empty() {
                                stats.scans += 1;
                                (0..rel.len()).collect()
                            } else {
                                idx.index(&a.pred, &bound_pos)
                                    .and_then(|m| m.get(&bound_vals).cloned())
                                    .unwrap_or_default()
                            };
                            candidates.iter().any(|&ti| {
                                let tuple = &rel.tuples()[ti];
                                stats.tuples_examined += 1;
                                *stats.per_pred.entry(a.pred).or_insert(0) += 1;
                                let mut local: HashMap<&Var, &Const> = HashMap::new();
                                a.args.iter().zip(tuple).all(|(t, c)| match t {
                                    Term::Const(k) => k == c,
                                    Term::Var(v) => match b.get(v) {
                                        Some(bc) => bc == c,
                                        None => match local.get(v) {
                                            Some(&lc) => lc == c,
                                            None => {
                                                local.insert(v, c);
                                                true
                                            }
                                        },
                                    },
                                })
                            })
                        }
                    };
                    if !present {
                        out.push(b);
                    }
                }
                bindings = out;
            }
            Literal::Cmp(c) => {
                let mut out = Vec::new();
                for b in bindings {
                    if eval_cmp(c, &b)? {
                        out.push(b);
                    }
                }
                bindings = out;
            }
        }
        if bindings.is_empty() {
            break;
        }
    }
    stats.scans += idx.builds;
    Ok(bindings)
}

/// Answer a conjunctive query with the default (index-enabled) options;
/// returns the projected tuples (deduplicated, set semantics) and
/// evaluation statistics.
pub fn answer_query(db: &EdbDatabase, q: &Query) -> Result<(Vec<Vec<Const>>, EvalStats)> {
    answer_query_with(db, q, &EvalOptions::default())
}

/// Answer a conjunctive query under explicit physical options —
/// [`EvalOptions::scan_only`] reproduces the pre-index executor for
/// differential testing and seed-equivalent benchmarking.
pub fn answer_query_with(
    db: &EdbDatabase,
    q: &Query,
    opts: &EvalOptions,
) -> Result<(Vec<Vec<Const>>, EvalStats)> {
    let _span = sqo_obs::span!("eval.answer_query");
    let mut stats = EvalStats::default();
    let protected: HashSet<Var> = q
        .projection
        .iter()
        .filter_map(Term::as_var)
        .copied()
        .collect();
    let bindings = eval_body(db, &q.body, &protected, opts, &mut stats)?;
    let mut out = Relation::default();
    for b in bindings {
        let tuple: Option<Vec<Const>> = q.projection.iter().map(|t| term_value(t, &b)).collect();
        let Some(tuple) = tuple else {
            return Err(DatalogError::UnsafeVariable {
                clause: q.to_string(),
                variable: q
                    .projection
                    .iter()
                    .filter_map(Term::as_var)
                    .find(|v| !b.contains_key(*v))
                    .map(|v| v.name().to_string())
                    .unwrap_or_default(),
            });
        };
        out.insert(tuple)?;
    }
    Ok((out.tuples().to_vec(), stats))
}

/// Materialize a program over the database: returns a new database
/// containing the EDB plus all derived IDB facts, with statistics.
///
/// Semi-naive evaluation runs stratum by stratum; within a stratum each
/// recursive rule is re-evaluated against the growing database until
/// fixpoint, joining new bindings only through the per-iteration deltas.
pub fn materialize(db: &EdbDatabase, program: &Program) -> Result<(EdbDatabase, EvalStats)> {
    let _span = sqo_obs::span!("eval.materialize");
    program.validate()?;
    let strata = program.stratify()?;
    let mut total = db.clone();
    let mut stats = EvalStats::default();
    for stratum in strata {
        // Naive-with-delta loop: evaluate every rule in the stratum until
        // nothing new is derived. Joins run against the full database;
        // semi-naive filtering happens via the insert dedup plus a delta
        // short-circuit (skip a rule whose body predicates gained nothing
        // last round).
        let mut first_round = true;
        let mut changed_preds: std::collections::HashSet<String> = std::collections::HashSet::new();
        loop {
            let mut any_new = false;
            let mut new_changed: std::collections::HashSet<String> =
                std::collections::HashSet::new();
            for &ri in &stratum {
                let rule: &Rule = &program.rules[ri];
                if !first_round {
                    // Delta check: at least one body predicate changed.
                    let touches_changed = rule
                        .body
                        .iter()
                        .any(|l| l.pred().is_some_and(|p| changed_preds.contains(p.name())));
                    if !touches_changed {
                        continue;
                    }
                }
                let protected: HashSet<Var> = rule
                    .head
                    .args
                    .iter()
                    .filter_map(Term::as_var)
                    .copied()
                    .collect();
                let bindings = eval_body(
                    &total,
                    &rule.body,
                    &protected,
                    &EvalOptions::default(),
                    &mut stats,
                )?;
                for b in bindings {
                    let tuple: Option<Vec<Const>> =
                        rule.head.args.iter().map(|t| term_value(t, &b)).collect();
                    let Some(tuple) = tuple else {
                        return Err(DatalogError::UnsafeVariable {
                            clause: rule.to_string(),
                            variable: String::new(),
                        });
                    };
                    if total.insert(rule.head.pred, tuple)? {
                        stats.facts_derived += 1;
                        any_new = true;
                        new_changed.insert(rule.head.pred.name().to_string());
                    }
                }
            }
            if !any_new {
                break;
            }
            changed_preds = new_changed;
            first_round = false;
        }
    }
    Ok((total, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, parse_query, parse_rule, Statement};

    fn db_from(src: &str) -> EdbDatabase {
        let mut db = EdbDatabase::new();
        for s in parse_program(src).unwrap() {
            match s {
                Statement::Fact(f) => {
                    db.insert_fact(&f).unwrap();
                }
                other => panic!("expected facts only: {other:?}"),
            }
        }
        db
    }

    #[test]
    fn simple_selection() {
        let db = db_from(r#"person(#1, "ann", 25). person(#2, "bob", 40). person(#3, "kim", 28)."#);
        let q = parse_query("Q(Name) <- person(X, Name, Age), Age < 30").unwrap();
        let (rows, stats) = answer_query(&db, &q).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows.contains(&vec![Const::Str("ann".into())]));
        assert!(rows.contains(&vec![Const::Str("kim".into())]));
        assert!(stats.tuples_examined >= 3);
    }

    #[test]
    fn join_through_shared_variable() {
        let db = db_from(
            r#"student(#1, "s1"). student(#2, "s2").
               takes(#1, #10). takes(#2, #11).
               taught_by(#10, #20). taught_by(#11, #21).
               faculty(#20, "prof_a"). faculty(#21, "prof_b")."#,
        );
        let q = parse_query(
            "Q(SN, FN) <- student(S, SN), takes(S, Sec), taught_by(Sec, F), faculty(F, FN)",
        )
        .unwrap();
        let (rows, _) = answer_query(&db, &q).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows.contains(&vec![Const::Str("s1".into()), Const::Str("prof_a".into())]));
    }

    #[test]
    fn negation_as_anti_join() {
        let db = db_from(r#"person(#1, 25). person(#2, 45). faculty(#2, 45)."#);
        let q = parse_query("Q(X) <- person(X, A), not faculty(X, A)").unwrap();
        let (rows, stats) = answer_query(&db, &q).unwrap();
        assert_eq!(rows, vec![vec![Const::Oid(1)]]);
        assert_eq!(stats.negation_probes, 2);
    }

    #[test]
    fn partially_bound_negation_is_existential() {
        // not faculty(X, B) with B unbound means "no faculty tuple with
        // this X at all".
        let db = db_from("person(#1, 25). person(#2, 45). faculty(#2, 99).");
        let q = parse_query("Q(X) <- person(X, A), not faculty(X, B)").unwrap();
        let (rows, _) = answer_query(&db, &q).unwrap();
        assert_eq!(rows, vec![vec![Const::Oid(1)]]);
    }

    #[test]
    fn repeated_unbound_negation_vars_must_agree() {
        // not r(X, B, B): only tuples whose 2nd and 3rd columns agree
        // count as matches.
        let db = db_from("p(#1). p(#2). r(#1, 5, 6). r(#2, 5, 5).");
        let q = parse_query("Q(X) <- p(X), not r(X, B, B)").unwrap();
        let (rows, _) = answer_query(&db, &q).unwrap();
        assert_eq!(rows, vec![vec![Const::Oid(1)]]);
    }

    #[test]
    fn constants_in_query_atoms() {
        let db = db_from(r#"student(#1, "john"). student(#2, "mary")."#);
        let q = parse_query(r#"Q(X) <- student(X, "john")"#).unwrap();
        let (rows, _) = answer_query(&db, &q).unwrap();
        assert_eq!(rows, vec![vec![Const::Oid(1)]]);
    }

    #[test]
    fn materialize_non_recursive_view() {
        let db = db_from(
            r#"takes(#1, #10). is_section_of(#10, #100). has_sections(#100, #10).
               has_ta(#10, #50)."#,
        );
        let p = Program::new(vec![parse_rule(
            "asr(X, W) <- takes(X, Y), is_section_of(Y, Z), has_sections(Z, V), has_ta(V, W)",
        )
        .unwrap()]);
        let (mat, stats) = materialize(&db, &p).unwrap();
        let asr = mat.relation(&"asr".into()).unwrap();
        assert_eq!(asr.len(), 1);
        assert_eq!(asr.tuples()[0], vec![Const::Oid(1), Const::Oid(50)]);
        assert_eq!(stats.facts_derived, 1);
    }

    #[test]
    fn materialize_transitive_closure() {
        let db = db_from("e(1, 2). e(2, 3). e(3, 4).");
        let p = Program::new(vec![
            parse_rule("tc(X, Y) <- e(X, Y)").unwrap(),
            parse_rule("tc(X, Z) <- tc(X, Y), e(Y, Z)").unwrap(),
        ]);
        let (mat, _) = materialize(&db, &p).unwrap();
        assert_eq!(mat.relation(&"tc".into()).unwrap().len(), 6);
    }

    #[test]
    fn materialize_stratified_negation() {
        let db = db_from("node(1). node(2). node(3). marked(2).");
        let p = Program::new(vec![
            parse_rule("m(X) <- marked(X)").unwrap(),
            parse_rule("unmarked(X) <- node(X), not m(X)").unwrap(),
        ]);
        let (mat, _) = materialize(&db, &p).unwrap();
        assert_eq!(mat.relation(&"unmarked".into()).unwrap().len(), 2);
    }

    #[test]
    fn empty_relation_yields_no_answers() {
        let db = EdbDatabase::new();
        let q = parse_query("Q(X) <- nothing(X)").unwrap();
        let (rows, _) = answer_query(&db, &q).unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn ground_query_projection() {
        let db = db_from("p(1).");
        let q = parse_query("Q(X, 99) <- p(X)").unwrap();
        let (rows, _) = answer_query(&db, &q).unwrap();
        assert_eq!(rows, vec![vec![Const::Int(1), Const::Int(99)]]);
    }

    #[test]
    fn arity_mismatch_detected_at_eval() {
        let db = db_from("p(1, 2).");
        let q = parse_query("Q(X) <- p(X)").unwrap();
        assert!(matches!(
            answer_query(&db, &q),
            Err(DatalogError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn incomparable_comparison_errors() {
        let db = db_from(r#"p("a")."#);
        let q = parse_query("Q(X) <- p(X), X < 3").unwrap();
        assert!(matches!(
            answer_query(&db, &q),
            Err(DatalogError::Incomparable { .. })
        ));
    }

    #[test]
    fn mixed_numeric_comparison() {
        let db = db_from("p(1). p(2). p(3).");
        let q = parse_query("Q(X) <- p(X), X <= 2.5").unwrap();
        let (rows, _) = answer_query(&db, &q).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn greedy_order_starts_with_selective_constant() {
        // A large relation joined with a constant-selected small one: the
        // reorder should probe with bound values, keeping tuples_examined
        // near the selective path, not |big| * |small|.
        let mut src = String::new();
        for i in 0..100 {
            src.push_str(&format!("big({i}, {}). ", i % 7));
        }
        src.push_str("small(3).");
        let db = db_from(&src);
        let q = parse_query("Q(X) <- big(X, Y), small(Y)").unwrap();
        let (rows, stats) = answer_query(&db, &q).unwrap();
        assert!(!rows.is_empty());
        assert!(stats.tuples_examined < 100 * 2);
    }
}
