//! Terms: variables and constants.
//!
//! We follow the notation of the paper (Section 2): predicate and constant
//! symbols start with lower-case letters, variables start with upper-case
//! letters. Object identifiers (OIDs) are a distinguished constant kind so
//! that the object-database substrate can round-trip identity through the
//! Datalog representation.

use crate::intern::Sym;
use std::cmp::Ordering;
use std::fmt;

/// A totally ordered `f64` wrapper so real-valued constants can participate
/// in `Eq`/`Ord`/`Hash`. NaN is normalized to a single bit pattern and sorts
/// above all other values; `-0.0` is normalized to `0.0`.
#[derive(Debug, Clone, Copy)]
pub struct R64(f64);

impl R64 {
    /// Wrap a float, normalizing NaN and negative zero.
    pub fn new(v: f64) -> Self {
        if v.is_nan() {
            R64(f64::NAN)
        } else if v == 0.0 {
            R64(0.0)
        } else {
            R64(v)
        }
    }

    /// The underlying float value.
    pub fn get(self) -> f64 {
        self.0
    }

    fn key(self) -> u64 {
        if self.0.is_nan() {
            u64::MAX
        } else {
            let bits = self.0.to_bits();
            if bits >> 63 == 0 {
                bits | (1 << 63)
            } else {
                !bits
            }
        }
    }
}

impl PartialEq for R64 {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for R64 {}
impl PartialOrd for R64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for R64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key().cmp(&other.key())
    }
}
impl std::hash::Hash for R64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.key().hash(state);
    }
}
impl From<f64> for R64 {
    fn from(v: f64) -> Self {
        R64::new(v)
    }
}
impl fmt::Display for R64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A variable name. By convention variables start with an upper-case letter
/// (e.g. `Age`, `OID1`); the parser enforces this, but programmatic
/// construction accepts any non-empty string.
///
/// Backed by an interned [`Sym`]: `Copy`, integer equality/hashing,
/// lexicographic `Ord` (sort order is unchanged by interning).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub Sym);

impl Var {
    /// Create a variable from anything string-like.
    pub fn new(name: impl Into<Sym>) -> Self {
        Var(name.into())
    }

    /// The variable's name.
    pub fn name(&self) -> &'static str {
        self.0.as_str()
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Self {
        Var(Sym::intern(s))
    }
}

/// A constant value.
///
/// `Copy`: string constants are interned [`Sym`]s, so constants (and
/// [`Term`]s) move without heap traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Const {
    /// Integer constant, e.g. `30`, `40000`.
    Int(i64),
    /// Real constant, e.g. `0.1`.
    Real(R64),
    /// String (or symbolic) constant, e.g. `"john"`.
    Str(Sym),
    /// Boolean constant.
    Bool(bool),
    /// Object identifier. OIDs are opaque: only equality is meaningful.
    Oid(u64),
}

impl Const {
    /// A short tag naming the constant's type, used in error messages and
    /// for comparability checks.
    pub fn type_tag(&self) -> &'static str {
        match self {
            Const::Int(_) | Const::Real(_) => "number",
            Const::Str(_) => "string",
            Const::Bool(_) => "bool",
            Const::Oid(_) => "oid",
        }
    }

    /// Whether an *order* comparison (`<`, `<=`, …) between the two
    /// constants is meaningful. Equality is always meaningful (constants of
    /// different types are simply unequal).
    pub fn comparable(&self, other: &Const) -> bool {
        self.type_tag() == other.type_tag() && self.type_tag() != "oid"
    }

    /// Total order used by the constraint solver and the evaluator for
    /// comparable constants. Numbers compare numerically across
    /// `Int`/`Real`; other types compare within their kind.
    pub fn order(&self, other: &Const) -> Option<Ordering> {
        match (self, other) {
            (Const::Int(a), Const::Int(b)) => Some(a.cmp(b)),
            (Const::Real(a), Const::Real(b)) => Some(a.cmp(b)),
            (Const::Int(a), Const::Real(b)) => R64::new(*a as f64).partial_cmp(b),
            (Const::Real(a), Const::Int(b)) => a.partial_cmp(&R64::new(*b as f64)),
            (Const::Str(a), Const::Str(b)) => Some(a.as_str().cmp(b.as_str())),
            (Const::Bool(a), Const::Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Numeric-aware equality: `Int(3)` equals `Real(3.0)`.
    pub fn same_value(&self, other: &Const) -> bool {
        match (self, other) {
            (Const::Oid(a), Const::Oid(b)) => a == b,
            _ => self.order(other) == Some(Ordering::Equal),
        }
    }
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Int(v) => write!(f, "{v}"),
            Const::Real(v) => {
                let x = v.get();
                if x == x.trunc() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Const::Str(s) => write!(f, "{:?}", s.as_str()),
            Const::Bool(b) => write!(f, "{b}"),
            Const::Oid(o) => write!(f, "#{o}"),
        }
    }
}

impl From<i64> for Const {
    fn from(v: i64) -> Self {
        Const::Int(v)
    }
}
impl From<f64> for Const {
    fn from(v: f64) -> Self {
        Const::Real(R64::new(v))
    }
}
impl From<&str> for Const {
    fn from(v: &str) -> Self {
        Const::Str(Sym::intern(v))
    }
}
impl From<String> for Const {
    fn from(v: String) -> Self {
        Const::Str(Sym::intern(&v))
    }
}
impl From<bool> for Const {
    fn from(v: bool) -> Self {
        Const::Bool(v)
    }
}

/// A term: either a variable or a constant. The Datalog fragment of the
/// paper is function-free, so there are no compound terms.
///
/// `Copy` since both variants are interned-symbol sized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A variable.
    Var(Var),
    /// A constant.
    Const(Const),
}

impl Term {
    /// Construct a variable term.
    pub fn var(name: impl Into<Sym>) -> Self {
        Term::Var(Var::new(name))
    }

    /// Construct an integer constant term.
    pub fn int(v: i64) -> Self {
        Term::Const(Const::Int(v))
    }

    /// Construct a real constant term.
    pub fn real(v: f64) -> Self {
        Term::Const(Const::Real(R64::new(v)))
    }

    /// Construct a string constant term.
    pub fn str(v: impl Into<Sym>) -> Self {
        Term::Const(Const::Str(v.into()))
    }

    /// Construct an OID constant term.
    pub fn oid(v: u64) -> Self {
        Term::Const(Const::Oid(v))
    }

    /// The variable inside, if this is a variable.
    pub fn as_var(&self) -> Option<&Var> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// The constant inside, if this is a constant.
    pub fn as_const(&self) -> Option<&Const> {
        match self {
            Term::Const(c) => Some(c),
            Term::Var(_) => None,
        }
    }

    /// Whether this term is ground (i.e. a constant).
    pub fn is_ground(&self) -> bool {
        matches!(self, Term::Const(_))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => v.fmt(f),
            Term::Const(c) => c.fmt(f),
        }
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Self {
        Term::Var(v)
    }
}
impl From<Const> for Term {
    fn from(c: Const) -> Self {
        Term::Const(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r64_total_order() {
        assert!(R64::new(-1.0) < R64::new(0.0));
        assert!(R64::new(0.0) < R64::new(1.5));
        assert_eq!(R64::new(-0.0), R64::new(0.0));
        assert!(R64::new(f64::NAN) == R64::new(f64::NAN));
        assert!(R64::new(1e300) < R64::new(f64::NAN));
        assert!(R64::new(f64::NEG_INFINITY) < R64::new(f64::MIN));
    }

    #[test]
    fn const_cross_type_order() {
        assert_eq!(
            Const::Int(3).order(&Const::Real(R64::new(3.0))),
            Some(Ordering::Equal)
        );
        assert!(Const::Int(3).same_value(&Const::Real(R64::new(3.0))));
        assert_eq!(Const::Str("a".into()).order(&Const::Int(1)), None);
        assert!(!Const::Str("a".into()).comparable(&Const::Int(1)));
        assert!(!Const::Oid(1).comparable(&Const::Oid(2)));
        assert!(Const::Oid(1).same_value(&Const::Oid(1)));
        assert!(!Const::Oid(1).same_value(&Const::Oid(2)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Term::var("Age").to_string(), "Age");
        assert_eq!(Term::int(30).to_string(), "30");
        assert_eq!(Term::str("john").to_string(), "\"john\"");
        assert_eq!(Term::oid(7).to_string(), "#7");
        assert_eq!(Term::real(0.5).to_string(), "0.5");
        assert_eq!(Term::real(3.0).to_string(), "3.0");
    }

    #[test]
    fn groundness() {
        assert!(Term::int(1).is_ground());
        assert!(!Term::var("X").is_ground());
        assert_eq!(Term::var("X").as_var(), Some(&Var::new("X")));
        assert_eq!(Term::int(1).as_const(), Some(&Const::Int(1)));
    }
}
