//! A minimal multiply-rotate hasher for internal maps keyed by small
//! values (interned symbols, fingerprints, predicate/arity pairs).
//!
//! The default `SipHash` is DoS-resistant but costs ~20ns even for a
//! single `u32`; the compile and search paths hash interned symbols in
//! tight loops, where that overhead dominates. Keys here are either
//! interned ids or already-mixed 64-bit fingerprints — never untrusted
//! external input — so a fast non-cryptographic hash is appropriate.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the FxHash family (Firefox / rustc): a 64-bit odd
/// constant with well-distributed bits.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher state.
#[derive(Default)]
pub struct FxHasher(u64);

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64)
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64)
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64)
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n)
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64)
    }

    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.add(n as u64)
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_small_keys_hash_distinctly() {
        let mut seen = std::collections::HashSet::new();
        for i in 0u32..10_000 {
            let mut h = FxHasher::default();
            h.write_u32(i);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, i * 2);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&i), Some(&(i * 2)));
        }
    }
}
