#![warn(missing_docs)]

//! # sqo-datalog
//!
//! The Datalog substrate for residue-based **semantic query optimization**
//! (SQO), reproducing the machinery of Chakravarthy, Grant & Minker
//! (*TODS* 15(2), 1990) as used by Grant, Gryz, Minker & Raschid,
//! *"Semantic Query Optimization for Object Databases"* (ICDE 1997).
//!
//! The crate provides:
//!
//! * the function-free first-order representation: [`term`], [`atom`],
//!   [`clause`] (rules, integrity constraints, conjunctive queries);
//! * [`subst`]/[`unify`]/[`subsume`] — substitutions, unification,
//!   one-way matching and θ-subsumption;
//! * [`solver`] — a sound decision procedure for conjunctions of
//!   comparison literals (contradiction and implication);
//! * [`residue`] — semantic compilation: partial subsumption attaches
//!   integrity-constraint fragments (residues) to relations;
//! * [`transform`]/[`search`] — query-time application of residues,
//!   producing contradictions, added/removed literals and the space of
//!   semantically equivalent queries;
//! * [`parser`] — a concrete syntax for facts, rules, constraints and
//!   queries, matching the paper's notation;
//! * [`program`]/[`eval`] — a bottom-up (semi-naive) evaluation engine
//!   with stratified negation, used to execute queries and materialize
//!   access-support-relation views.

pub mod atom;
pub mod clause;
pub mod error;
pub mod eval;
pub mod fxhash;
pub mod intern;
pub mod parser;
pub mod program;
pub mod residue;
pub mod search;
pub mod solver;
pub mod subst;
pub mod subsume;
pub mod term;
pub mod transform;
pub mod unify;

pub use atom::{Atom, CmpOp, Comparison, Literal, PredSym};
pub use clause::{CanonicalTemplate, Constraint, ConstraintHead, ParamSlot, Query, Rule};
pub use error::{DatalogError, Result};
pub use intern::Sym;
pub use solver::{ConstraintSet, Sat};
pub use subst::Subst;
pub use term::{Const, Term, Var, R64};
pub mod chase;
