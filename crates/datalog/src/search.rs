//! Step 3 proper: the search for semantically equivalent queries.
//!
//! The paper (Section 4.1) notes that Step 3 is exponential in the number
//! of integrity constraints applicable to a query and that heuristics must
//! guide the transformation process so "only promising transformations are
//! generated". This module implements the bounded breadth-first search
//! over query variants, deduplicated by a canonical form, with the
//! heuristic knobs exposed in [`SearchConfig`].

use crate::atom::Literal;
use crate::clause::Query;
use crate::transform::{analyse, apply, Analysis, Op, TransformContext};
use std::collections::{HashSet, VecDeque};

/// When join introduction (`AddAtom`) is explored.
///
/// Unrestricted join introduction adds every implied atom (inverse
/// relationships, superclass memberships, …) and blows up the search
/// space without enabling anything — exactly the explosion Section 4.1
/// warns about. The default only introduces atoms that can participate
/// in a registered view (access support relation), which covers the
/// paper's IC9/ASR scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinIntro {
    /// Never introduce atoms.
    Off,
    /// Introduce only atoms whose predicate occurs in a registered view
    /// definition (head or body).
    ViewRelevant,
    /// Introduce every implied atom (exhaustive; exponential).
    All,
}

/// Heuristic configuration for the equivalent-query search.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Maximum number of transformation steps applied along one path.
    pub max_depth: usize,
    /// Maximum number of equivalent queries to produce (including the
    /// original).
    pub max_variants: usize,
    /// Maximum number of analysed nodes (applicability checks are the
    /// expensive part; this bounds total work).
    pub max_expansions: usize,
    /// Enable restriction introduction (`AddCmp`).
    pub enable_add_cmp: bool,
    /// Join-introduction policy (`AddAtom`).
    pub join_intro: JoinIntro,
    /// Enable scope reduction (`AddNegAtom`).
    pub enable_add_neg: bool,
    /// Enable comparison removal (`RemoveCmp`).
    pub enable_remove_cmp: bool,
    /// Enable atom/group removal (`RemoveAtoms`).
    pub enable_remove_atoms: bool,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            max_depth: 4,
            max_variants: 64,
            max_expansions: 96,
            enable_add_cmp: true,
            join_intro: JoinIntro::ViewRelevant,
            enable_add_neg: true,
            enable_remove_cmp: true,
            enable_remove_atoms: true,
        }
    }
}

impl SearchConfig {
    fn enabled(&self, op: &Op, ctx: &TransformContext) -> bool {
        match op {
            Op::AddCmp(_) => self.enable_add_cmp,
            Op::AddAtom(a) => match self.join_intro {
                JoinIntro::Off => false,
                JoinIntro::All => true,
                JoinIntro::ViewRelevant => ctx.views.iter().any(|v| {
                    v.head.pred == a.pred
                        || v.body
                            .iter()
                            .any(|l| l.pred().is_some_and(|p| *p == a.pred))
                }),
            },
            Op::AddNegAtom(_) => self.enable_add_neg,
            Op::RemoveCmp(_) => self.enable_remove_cmp,
            Op::RemoveAtoms(_) => self.enable_remove_atoms,
        }
    }

    /// Exploration priority: cheaper/more-decisive transformations first
    /// (folds, removals, key equalities), speculative additions last.
    fn priority(op: &Op) -> u8 {
        match op {
            Op::RemoveAtoms(atoms) if atoms.len() > 1 => 0, // view fold
            Op::RemoveCmp(_) => 1,
            Op::AddCmp(c) if c.op == crate::atom::CmpOp::Eq => 2,
            Op::AddNegAtom(_) => 3,
            Op::RemoveAtoms(_) => 4,
            Op::AddCmp(_) => 5,
            Op::AddAtom(_) => 6,
        }
    }
}

/// One applied transformation step, for provenance reporting.
#[derive(Debug, Clone)]
pub struct Step {
    /// The transformation applied.
    pub op: Op,
    /// The justifying constraint/view name, if any.
    pub ic_name: Option<String>,
    /// Human-readable explanation.
    pub note: String,
}

impl std::fmt::Display for Step {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.ic_name {
            Some(n) => write!(f, "{} [{n}]", self.op),
            None => write!(f, "{}", self.op),
        }
    }
}

/// A semantically equivalent query variant.
#[derive(Debug, Clone)]
pub struct Variant {
    /// The variant query.
    pub query: Query,
    /// The steps that produced it from the original.
    pub steps: Vec<Step>,
}

/// The difference between the original query and a variant, as literal
/// multiset changes — exactly what algorithm DATALOG_to_OQL consumes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Delta {
    /// Literals present in the variant but not the original.
    pub added: Vec<Literal>,
    /// Literals present in the original but not the variant.
    pub removed: Vec<Literal>,
}

impl Delta {
    /// Whether the variant is identical to the original.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

impl std::fmt::Display for Delta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for l in &self.added {
            if !first {
                f.write_str("; ")?;
            }
            write!(f, "+ {l}")?;
            first = false;
        }
        for l in &self.removed {
            if !first {
                f.write_str("; ")?;
            }
            write!(f, "- {l}")?;
            first = false;
        }
        if first {
            f.write_str("(unchanged)")?;
        }
        Ok(())
    }
}

/// Compute the literal-level delta between the original and a variant.
/// Comparisons are matched up to orientation.
pub fn delta(original: &Query, variant: &Query) -> Delta {
    let mut removed: Vec<Literal> = Vec::new();
    let mut remaining: Vec<Literal> = variant.body.clone();
    for l in &original.body {
        let found = remaining.iter().position(|m| lit_eq(l, m));
        match found {
            Some(i) => {
                remaining.remove(i);
            }
            None => removed.push(l.clone()),
        }
    }
    Delta {
        added: remaining,
        removed,
    }
}

fn lit_eq(a: &Literal, b: &Literal) -> bool {
    match (a, b) {
        (Literal::Cmp(x), Literal::Cmp(y)) => x.canonical() == y.canonical(),
        _ => a == b,
    }
}

/// The outcome of semantic query optimization on one query.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// The query is unsatisfiable under the integrity constraints: it
    /// need not be evaluated at all.
    Contradiction {
        /// The justifying constraint, if known.
        ic_name: Option<String>,
        /// Human-readable explanation.
        note: String,
        /// Steps applied before the contradiction surfaced (empty when
        /// the original query is already contradictory).
        steps: Vec<Step>,
    },
    /// The semantically equivalent queries found (the original is always
    /// first, with an empty step list).
    Equivalents(Vec<Variant>),
}

impl Outcome {
    /// The variants, if the query is satisfiable.
    pub fn variants(&self) -> &[Variant] {
        match self {
            Outcome::Contradiction { .. } => &[],
            Outcome::Equivalents(v) => v,
        }
    }

    /// Whether SQO proved the query unsatisfiable.
    pub fn is_contradiction(&self) -> bool {
        matches!(self, Outcome::Contradiction { .. })
    }
}

/// Run the bounded equivalent-query search (Step 3).
pub fn optimize(q: &Query, ctx: &TransformContext, cfg: &SearchConfig) -> Outcome {
    let mut variants: Vec<Variant> = Vec::new();
    let mut seen: HashSet<String> = HashSet::new();
    let mut queue: VecDeque<Variant> = VecDeque::new();
    let mut expansions = 0usize;

    let root = Variant {
        query: q.clone(),
        steps: Vec::new(),
    };
    seen.insert(q.canonical_key());
    queue.push_back(root);

    while let Some(node) = queue.pop_front() {
        if expansions >= cfg.max_expansions {
            variants.push(node);
            continue;
        }
        expansions += 1;
        match analyse(&node.query, ctx) {
            Analysis::Contradiction { ic_name, note } => {
                return Outcome::Contradiction {
                    ic_name,
                    note,
                    steps: node.steps,
                };
            }
            Analysis::Candidates(mut cands) => {
                let depth = node.steps.len();
                if depth < cfg.max_depth {
                    cands.sort_by_key(|c| SearchConfig::priority(&c.op));
                    for cand in cands {
                        if !cfg.enabled(&cand.op, ctx) {
                            continue;
                        }
                        let next = apply(&node.query, &cand.op);
                        if !next.is_safe() {
                            continue;
                        }
                        let key = next.canonical_key();
                        if !seen.insert(key) {
                            continue;
                        }
                        if seen.len() > cfg.max_variants {
                            continue;
                        }
                        let mut steps = node.steps.clone();
                        steps.push(Step {
                            op: cand.op,
                            ic_name: cand.ic_name,
                            note: cand.note,
                        });
                        queue.push_back(Variant { query: next, steps });
                    }
                }
                variants.push(node);
            }
        }
    }

    Outcome::Equivalents(variants)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{Atom, CmpOp, Comparison};
    use crate::clause::{Constraint, ConstraintHead, Rule};
    use crate::residue::ResidueSet;
    use crate::term::Term;
    use std::collections::BTreeMap;

    fn v(n: &str) -> Term {
        Term::var(n)
    }

    fn scope_ctx() -> TransformContext {
        let ic4 = Constraint::named(
            "IC4",
            ConstraintHead::Cmp(Comparison::new(v("Age"), CmpOp::Ge, Term::int(30))),
            vec![Literal::pos("faculty", vec![v("X"), v("N"), v("Age")])],
        );
        let ic5 = Constraint::named(
            "IC5",
            ConstraintHead::Atom(Atom::new("person", vec![v("X"), v("N"), v("Age")])),
            vec![Literal::pos("faculty", vec![v("X"), v("N"), v("Age")])],
        );
        TransformContext::new(ResidueSet::compile(vec![ic4, ic5]), vec![], BTreeMap::new())
    }

    #[test]
    fn search_finds_scope_reduced_variant() {
        let q = Query::new(
            "q",
            vec![v("Name")],
            vec![
                Literal::pos("person", vec![v("X"), v("Name"), v("Age")]),
                Literal::cmp(v("Age"), CmpOp::Lt, Term::int(30)),
            ],
        );
        let out = optimize(&q, &scope_ctx(), &SearchConfig::default());
        let variants = out.variants();
        assert!(variants.len() >= 2);
        // Original is first, unchanged.
        assert!(variants[0].steps.is_empty());
        assert_eq!(variants[0].query, q);
        // Some variant carries the negative literal.
        let reduced = variants.iter().find(|va| {
            va.query
                .body
                .iter()
                .any(|l| matches!(l, Literal::Neg(a) if a.pred.name() == "faculty"))
        });
        let reduced = reduced.expect("scope-reduced variant");
        let d = delta(&q, &reduced.query);
        assert_eq!(d.added.len(), 1);
        assert!(d.removed.is_empty());
    }

    #[test]
    fn contradiction_short_circuits() {
        let ic = Constraint::named(
            "IC1",
            ConstraintHead::Cmp(Comparison::new(v("S"), CmpOp::Gt, Term::int(40000))),
            vec![Literal::pos("faculty", vec![v("O"), v("S")])],
        );
        let ctx = TransformContext::new(ResidueSet::compile(vec![ic]), vec![], BTreeMap::new());
        let q = Query::new(
            "q",
            vec![v("O")],
            vec![
                Literal::pos("faculty", vec![v("O"), v("Sal")]),
                Literal::cmp(v("Sal"), CmpOp::Lt, Term::int(20000)),
            ],
        );
        let out = optimize(&q, &ctx, &SearchConfig::default());
        assert!(out.is_contradiction());
        if let Outcome::Contradiction { ic_name, .. } = out {
            assert_eq!(ic_name.as_deref(), Some("IC1"));
        }
    }

    #[test]
    fn depth_zero_returns_only_original() {
        let q = Query::new(
            "q",
            vec![v("Name")],
            vec![
                Literal::pos("person", vec![v("X"), v("Name"), v("Age")]),
                Literal::cmp(v("Age"), CmpOp::Lt, Term::int(30)),
            ],
        );
        let cfg = SearchConfig {
            max_depth: 0,
            ..Default::default()
        };
        let out = optimize(&q, &scope_ctx(), &cfg);
        assert_eq!(out.variants().len(), 1);
    }

    #[test]
    fn disabled_op_classes_are_not_applied() {
        let q = Query::new(
            "q",
            vec![v("Name")],
            vec![
                Literal::pos("person", vec![v("X"), v("Name"), v("Age")]),
                Literal::cmp(v("Age"), CmpOp::Lt, Term::int(30)),
            ],
        );
        let cfg = SearchConfig {
            enable_add_neg: false,
            ..Default::default()
        };
        let out = optimize(&q, &scope_ctx(), &cfg);
        assert!(out
            .variants()
            .iter()
            .all(|va| { va.query.body.iter().all(|l| !matches!(l, Literal::Neg(_))) }));
    }

    #[test]
    fn max_variants_bounds_output() {
        // Many applicable restriction residues blow up the variant space;
        // the bound must hold.
        let mut ics = Vec::new();
        for i in 0..6 {
            ics.push(Constraint::named(
                format!("R{i}"),
                ConstraintHead::Cmp(Comparison::new(v("A"), CmpOp::Gt, Term::int(i))),
                vec![Literal::pos("p", vec![v("X"), v("A")])],
            ));
        }
        let ctx = TransformContext::new(ResidueSet::compile(ics), vec![], BTreeMap::new());
        let q = Query::new(
            "q",
            vec![v("X")],
            vec![Literal::pos("p", vec![v("X"), v("A")])],
        );
        let cfg = SearchConfig {
            max_variants: 5,
            ..Default::default()
        };
        let out = optimize(&q, &ctx, &cfg);
        assert!(out.variants().len() <= 6);
    }

    #[test]
    fn full_application4_q_pipeline() {
        // Original chain query + ASR view: the search should surface the
        // folded variant within default bounds.
        let view = Rule::new(
            Atom::new("asr", vec![v("X"), v("W")]),
            vec![
                Literal::pos("takes", vec![v("X"), v("Y")]),
                Literal::pos("is_section_of", vec![v("Y"), v("Z")]),
                Literal::pos("has_sections", vec![v("Z"), v("V")]),
                Literal::pos("has_ta", vec![v("V"), v("W")]),
            ],
        );
        let ctx = TransformContext::new(ResidueSet::compile(vec![]), vec![view], BTreeMap::new());
        let q = Query::new(
            "q",
            vec![v("W")],
            vec![
                Literal::pos("student", vec![v("X"), v("Name")]),
                Literal::pos("takes", vec![v("X"), v("Y")]),
                Literal::pos("is_section_of", vec![v("Y"), v("Z")]),
                Literal::pos("has_sections", vec![v("Z"), v("V")]),
                Literal::pos("has_ta", vec![v("V"), v("W")]),
                Literal::cmp(v("Name"), CmpOp::Eq, Term::str("james")),
            ],
        );
        let out = optimize(&q, &ctx, &SearchConfig::default());
        let folded = out.variants().iter().find(|va| {
            va.query.body.len() == 3
                && va
                    .query
                    .body
                    .iter()
                    .any(|l| matches!(l, Literal::Pos(a) if a.pred.name() == "asr"))
        });
        let folded = folded.expect("folded variant");
        let d = delta(&q, &folded.query);
        assert_eq!(d.removed.len(), 4);
        assert_eq!(d.added.len(), 1);
    }

    #[test]
    fn delta_detects_replacement() {
        let q1 = Query::new(
            "q",
            vec![],
            vec![
                Literal::pos("p", vec![v("X")]),
                Literal::cmp(v("X"), CmpOp::Eq, v("Y")),
            ],
        );
        let q2 = Query::new(
            "q",
            vec![],
            vec![
                Literal::pos("p", vec![v("X")]),
                Literal::cmp(v("X"), CmpOp::Lt, v("Y")),
            ],
        );
        let d = delta(&q1, &q2);
        assert_eq!(d.added.len(), 1);
        assert_eq!(d.removed.len(), 1);
        // Orientation-insensitive match keeps flipped comparisons equal.
        let q3 = Query::new(
            "q",
            vec![],
            vec![
                Literal::pos("p", vec![v("X")]),
                Literal::cmp(v("Y"), CmpOp::Eq, v("X")),
            ],
        );
        assert!(delta(&q1, &q3).is_empty());
    }
}
