//! Step 3 proper: the search for semantically equivalent queries.
//!
//! The paper (Section 4.1) notes that Step 3 is exponential in the number
//! of integrity constraints applicable to a query and that heuristics must
//! guide the transformation process so "only promising transformations are
//! generated". This module implements two engines over query variants,
//! selected by [`Strategy`], with the heuristic knobs exposed in
//! [`SearchConfig`]:
//!
//! * **`Bfs`** — the original bounded level-BFS, deduplicated by a
//!   canonical form. Kept intact as the ablation baseline.
//! * **`BestFirst`** (default) — a cost-ordered priority frontier with a
//!   per-search [`AnalysisCache`] (structure-level memoization of
//!   residue matching), a compile-time exactness prefilter, and an exact
//!   [`SubsumptionIndex`] in place of the hash-fingerprint seen-set.
//!   Under the default [`CostModel::DepthUniform`] it expands nodes in
//!   exactly the BFS order and produces byte-identical outcomes while
//!   doing a fraction of the per-node work.

use crate::atom::Literal;
use crate::clause::Query;
use crate::fxhash::FxHashSet;
use crate::subsume::SubsumptionIndex;
use crate::transform::{
    analyse, analyse_cached, apply, Analysis, AnalysisCache, Op, TransformContext,
};
use sqo_obs as obs;
use std::collections::{BinaryHeap, HashSet};

/// When join introduction (`AddAtom`) is explored.
///
/// Unrestricted join introduction adds every implied atom (inverse
/// relationships, superclass memberships, …) and blows up the search
/// space without enabling anything — exactly the explosion Section 4.1
/// warns about. The default only introduces atoms that can participate
/// in a registered view (access support relation), which covers the
/// paper's IC9/ASR scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinIntro {
    /// Never introduce atoms.
    Off,
    /// Introduce only atoms whose predicate occurs in a registered view
    /// definition (head or body).
    ViewRelevant,
    /// Introduce every implied atom (exhaustive; exponential).
    All,
}

/// How the search deduplicates query variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DedupMode {
    /// Hash the canonical form ([`Query::canonical_hash`]) — no string
    /// rendering per candidate.
    #[default]
    Fingerprint,
    /// Render the full canonical string ([`Query::canonical_key`]) per
    /// candidate. Functionally identical; kept as the measurable
    /// baseline for the benchmark ablation.
    CanonicalKey,
}

/// Which engine analyses the BFS frontier. The two backends produce
/// byte-identical outcomes (same variants, same order, same provenance,
/// same counter totals); the enumeration exists so differential harnesses
/// can run every backend against the same query and assert exactly that.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Frontier analyses fan out over worker threads (the default path;
    /// falls back to sequential analysis without the `parallel` feature).
    Parallel,
    /// Frontier analyses run on the calling thread.
    Sequential,
}

impl Backend {
    /// Every backend, for exhaustive differential sweeps.
    pub fn all() -> [Backend; 2] {
        [Backend::Parallel, Backend::Sequential]
    }

    /// Stable lowercase label (used in logs and repro dumps).
    pub fn label(self) -> &'static str {
        match self {
            Backend::Parallel => "parallel",
            Backend::Sequential => "sequential",
        }
    }
}

/// Which search engine explores the variant space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// The original exhaustive level-BFS. Kept byte-for-byte as the
    /// ablation baseline (`--search=bfs`).
    Bfs,
    /// Cost-driven best-first search: priority frontier, per-search
    /// analysis cache, exactness prefilter, exact subsumption index.
    /// Byte-identical outcomes to [`Strategy::Bfs`] under the default
    /// [`CostModel::DepthUniform`].
    #[default]
    BestFirst,
}

impl Strategy {
    /// Every strategy, for exhaustive differential sweeps.
    pub fn all() -> [Strategy; 2] {
        [Strategy::Bfs, Strategy::BestFirst]
    }

    /// Stable lowercase label (CLI flag value, logs, repro dumps).
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Bfs => "bfs",
            Strategy::BestFirst => "best-first",
        }
    }

    /// Parse a CLI/wire label (`"bfs"` / `"best-first"`).
    pub fn parse(s: &str) -> Option<Strategy> {
        match s {
            "bfs" => Some(Strategy::Bfs),
            "best-first" | "best_first" | "bestfirst" => Some(Strategy::BestFirst),
            _ => None,
        }
    }
}

/// How the best-first engine orders its priority frontier.
#[derive(Clone, Default)]
pub enum CostModel {
    /// Cost = derivation depth: the frontier pops in exact BFS FIFO
    /// order, so the engine's speedups are output-identical work
    /// reductions (analysis caching, exactness skips). The default.
    #[default]
    DepthUniform,
    /// An external per-query cost estimate (e.g. the object-store's
    /// index-aware plan cost): cheapest-looking variants are analysed
    /// first, which matters once `frontier_slice`/`cost_cutoff` bound
    /// the explored region.
    Estimator(std::sync::Arc<dyn Fn(&Query) -> f64 + Send + Sync>),
}

impl std::fmt::Debug for CostModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CostModel::DepthUniform => f.write_str("DepthUniform"),
            CostModel::Estimator(_) => f.write_str("Estimator(..)"),
        }
    }
}

/// Heuristic configuration for the equivalent-query search.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Maximum number of transformation steps applied along one path.
    pub max_depth: usize,
    /// Maximum number of equivalent queries to produce (including the
    /// original).
    pub max_variants: usize,
    /// Maximum number of analysed nodes (applicability checks are the
    /// expensive part; this bounds total work).
    pub max_expansions: usize,
    /// Enable restriction introduction (`AddCmp`).
    pub enable_add_cmp: bool,
    /// Join-introduction policy (`AddAtom`).
    pub join_intro: JoinIntro,
    /// Enable scope reduction (`AddNegAtom`).
    pub enable_add_neg: bool,
    /// Enable comparison removal (`RemoveCmp`).
    pub enable_remove_cmp: bool,
    /// Enable atom/group removal (`RemoveAtoms`).
    pub enable_remove_atoms: bool,
    /// Variant deduplication strategy (the [`Strategy::Bfs`] engine
    /// only; the best-first engine always dedups through the exact
    /// [`SubsumptionIndex`]).
    pub dedup: DedupMode,
    /// Which engine explores the variant space.
    pub strategy: Strategy,
    /// Frontier ordering for the best-first engine.
    pub cost_model: CostModel,
    /// Maximum nodes the best-first engine pops per round. `None`
    /// (default) drains the whole frontier each round, preserving level
    /// batching for the parallel fanout; `Some(k)` analyses only the
    /// top-K cheapest nodes per round.
    pub frontier_slice: Option<usize>,
    /// Admissible early-termination bound for the best-first engine:
    /// frontier nodes whose cost exceeds this skip analysis and pass
    /// through as (already-proven) equivalents. `None` disables it.
    pub cost_cutoff: Option<f64>,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            max_depth: 4,
            max_variants: 64,
            max_expansions: 96,
            enable_add_cmp: true,
            join_intro: JoinIntro::ViewRelevant,
            enable_add_neg: true,
            enable_remove_cmp: true,
            enable_remove_atoms: true,
            dedup: DedupMode::default(),
            strategy: Strategy::default(),
            cost_model: CostModel::default(),
            frontier_slice: None,
            cost_cutoff: None,
        }
    }
}

impl SearchConfig {
    fn enabled(&self, op: &Op, ctx: &TransformContext) -> bool {
        match op {
            Op::AddCmp(_) => self.enable_add_cmp,
            Op::AddAtom(a) => match self.join_intro {
                JoinIntro::Off => false,
                JoinIntro::All => true,
                JoinIntro::ViewRelevant => ctx.views.iter().any(|v| {
                    v.head.pred == a.pred
                        || v.body
                            .iter()
                            .any(|l| l.pred().is_some_and(|p| *p == a.pred))
                }),
            },
            Op::AddNegAtom(_) => self.enable_add_neg,
            Op::RemoveCmp(_) => self.enable_remove_cmp,
            Op::RemoveAtoms(_) => self.enable_remove_atoms,
        }
    }

    /// Exploration priority: cheaper/more-decisive transformations first
    /// (folds, removals, key equalities), speculative additions last.
    fn priority(op: &Op) -> u8 {
        match op {
            Op::RemoveAtoms(atoms) if atoms.len() > 1 => 0, // view fold
            Op::RemoveCmp(_) => 1,
            Op::AddCmp(c) if c.op == crate::atom::CmpOp::Eq => 2,
            Op::AddNegAtom(_) => 3,
            Op::RemoveAtoms(_) => 4,
            Op::AddCmp(_) => 5,
            Op::AddAtom(_) => 6,
        }
    }
}

/// One applied transformation step, for provenance reporting.
#[derive(Debug, Clone)]
pub struct Step {
    /// The transformation applied.
    pub op: Op,
    /// The justifying constraint/view name, if any.
    pub ic_name: Option<String>,
    /// Provenance id of the compiled residue that drove the step, if one
    /// did (see [`crate::residue::Residue::provenance_id`]).
    pub residue: Option<String>,
    /// Human-readable explanation.
    pub note: String,
}

impl Step {
    /// The step as a provenance record: (transformation kind, residue id,
    /// source IC, detail).
    pub fn provenance(&self) -> obs::ProvenanceStep {
        obs::ProvenanceStep {
            kind: self.op.kind(),
            residue: self.residue.clone(),
            ic: self.ic_name.clone(),
            detail: self.note.clone(),
        }
    }
}

impl std::fmt::Display for Step {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.ic_name {
            Some(n) => write!(f, "{} [{n}]", self.op),
            None => write!(f, "{}", self.op),
        }
    }
}

/// A semantically equivalent query variant.
#[derive(Debug, Clone)]
pub struct Variant {
    /// The variant query.
    pub query: Query,
    /// The steps that produced it from the original.
    pub steps: Vec<Step>,
}

impl Variant {
    /// The derivation chain of this variant. The original query (no steps)
    /// yields the synthetic `original` chain, so every variant — including
    /// the input itself — carries a non-empty provenance.
    pub fn provenance(&self) -> obs::Provenance {
        obs::Provenance::from_steps(self.steps.iter().map(Step::provenance).collect())
    }
}

/// The difference between the original query and a variant, as literal
/// multiset changes — exactly what algorithm DATALOG_to_OQL consumes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Delta {
    /// Literals present in the variant but not the original.
    pub added: Vec<Literal>,
    /// Literals present in the original but not the variant.
    pub removed: Vec<Literal>,
}

impl Delta {
    /// Whether the variant is identical to the original.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

impl std::fmt::Display for Delta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for l in &self.added {
            if !first {
                f.write_str("; ")?;
            }
            write!(f, "+ {l}")?;
            first = false;
        }
        for l in &self.removed {
            if !first {
                f.write_str("; ")?;
            }
            write!(f, "- {l}")?;
            first = false;
        }
        if first {
            f.write_str("(unchanged)")?;
        }
        Ok(())
    }
}

/// Compute the literal-level delta between the original and a variant.
/// Comparisons are matched up to orientation.
pub fn delta(original: &Query, variant: &Query) -> Delta {
    let mut removed: Vec<Literal> = Vec::new();
    let mut remaining: Vec<Literal> = variant.body.clone();
    for l in &original.body {
        let found = remaining.iter().position(|m| lit_eq(l, m));
        match found {
            Some(i) => {
                remaining.remove(i);
            }
            None => removed.push(l.clone()),
        }
    }
    Delta {
        added: remaining,
        removed,
    }
}

fn lit_eq(a: &Literal, b: &Literal) -> bool {
    match (a, b) {
        (Literal::Cmp(x), Literal::Cmp(y)) => x.canonical() == y.canonical(),
        _ => a == b,
    }
}

/// The outcome of semantic query optimization on one query.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// The query is unsatisfiable under the integrity constraints: it
    /// need not be evaluated at all.
    Contradiction {
        /// The justifying constraint, if known.
        ic_name: Option<String>,
        /// Human-readable explanation.
        note: String,
        /// Steps applied before the contradiction surfaced (empty when
        /// the original query is already contradictory).
        steps: Vec<Step>,
    },
    /// The semantically equivalent queries found (the original is always
    /// first, with an empty step list).
    Equivalents(Vec<Variant>),
}

impl Outcome {
    /// The variants, if the query is satisfiable.
    pub fn variants(&self) -> &[Variant] {
        match self {
            Outcome::Contradiction { .. } => &[],
            Outcome::Equivalents(v) => v,
        }
    }

    /// Whether SQO proved the query unsatisfiable.
    pub fn is_contradiction(&self) -> bool {
        matches!(self, Outcome::Contradiction { .. })
    }
}

/// Run the bounded equivalent-query search (Step 3).
///
/// The search is a breadth-first expansion processed level by level:
/// the expensive applicability analysis of each frontier node depends
/// only on the node's query and the (immutable) context, so with the
/// `parallel` feature (on by default) every level's analyses run on
/// worker threads. The merge that consumes the analyses — candidate
/// ordering, dedup against the seen-set, budget checks, contradiction
/// short-circuiting — stays sequential and ordered, so the outcome is
/// byte-identical to [`optimize_sequential`].
pub fn optimize(q: &Query, ctx: &TransformContext, cfg: &SearchConfig) -> Outcome {
    match cfg.strategy {
        Strategy::Bfs => optimize_with(q, ctx, cfg, analyse_level),
        Strategy::BestFirst => best_first(q, ctx, cfg, Backend::Parallel),
    }
}

/// Single-threaded variant of [`optimize`]. Produces the identical
/// outcome (same variants, same order, same provenance); exists so the
/// equivalence can be asserted in tests and measured in benchmarks.
pub fn optimize_sequential(q: &Query, ctx: &TransformContext, cfg: &SearchConfig) -> Outcome {
    match cfg.strategy {
        Strategy::Bfs => optimize_with(q, ctx, cfg, analyse_level_sequential),
        Strategy::BestFirst => best_first(q, ctx, cfg, Backend::Sequential),
    }
}

/// Run the search through an explicitly selected [`Backend`].
pub fn optimize_with_backend(
    q: &Query,
    ctx: &TransformContext,
    cfg: &SearchConfig,
    backend: Backend,
) -> Outcome {
    match backend {
        Backend::Parallel => optimize(q, ctx, cfg),
        Backend::Sequential => optimize_sequential(q, ctx, cfg),
    }
}

fn analyse_level_sequential(nodes: &[Variant], ctx: &TransformContext) -> Vec<Analysis> {
    nodes.iter().map(|n| analyse(&n.query, ctx)).collect()
}

/// Analyse one BFS level, fanning out over the available cores. Results
/// come back in node order (contiguous chunks, joined in spawn order).
/// Cached core count: `available_parallelism` re-reads the cgroup
/// quota files on every call on Linux, which is far too slow to sit on
/// the per-level path of a microsecond-scale search.
#[cfg(feature = "parallel")]
fn worker_budget() -> usize {
    static WORKERS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *WORKERS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

#[cfg(feature = "parallel")]
fn analyse_level(nodes: &[Variant], ctx: &TransformContext) -> Vec<Analysis> {
    let workers = worker_budget().min(nodes.len());
    if workers <= 1 {
        return analyse_level_sequential(nodes, ctx);
    }
    let chunk = nodes.len().div_ceil(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = nodes
            .chunks(chunk)
            .map(|c| {
                s.spawn(move || {
                    let out = analyse_level_sequential(c, ctx);
                    // Flush inside the closure: scope/join completion does
                    // not wait for the worker's TLS destructors to run.
                    obs::flush_local();
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("search worker panicked"))
            .collect()
    })
}

#[cfg(not(feature = "parallel"))]
fn analyse_level(nodes: &[Variant], ctx: &TransformContext) -> Vec<Analysis> {
    analyse_level_sequential(nodes, ctx)
}

/// The variant seen-set, generic over [`DedupMode`]. Both modes dedup
/// on the same canonical form; they differ only in whether that form is
/// hashed as tokens or rendered into a string.
enum Seen {
    Fingerprint(FxHashSet<u64>),
    CanonicalKey(HashSet<String>),
}

impl Seen {
    fn new(mode: DedupMode) -> Self {
        match mode {
            DedupMode::Fingerprint => Seen::Fingerprint(FxHashSet::default()),
            DedupMode::CanonicalKey => Seen::CanonicalKey(HashSet::new()),
        }
    }

    /// Insert the query's canonical form; `false` if already present.
    fn insert(&mut self, q: &Query) -> bool {
        match self {
            Seen::Fingerprint(s) => s.insert(q.canonical_hash()),
            Seen::CanonicalKey(s) => s.insert(q.canonical_key()),
        }
    }

    fn len(&self) -> usize {
        match self {
            Seen::Fingerprint(s) => s.len(),
            Seen::CanonicalKey(s) => s.len(),
        }
    }
}

fn optimize_with(
    q: &Query,
    ctx: &TransformContext,
    cfg: &SearchConfig,
    analyse_level: impl Fn(&[Variant], &TransformContext) -> Vec<Analysis>,
) -> Outcome {
    let _span = obs::span!("step3.search");
    let mut variants: Vec<Variant> = Vec::new();
    let mut seen = Seen::new(cfg.dedup);
    let mut expansions = 0usize;

    let mut frontier = vec![Variant {
        query: q.clone(),
        steps: Vec::new(),
    }];
    seen.insert(q);

    while !frontier.is_empty() {
        // Nodes beyond the expansion budget pass through unexpanded, in
        // order, exactly as they would pop off a FIFO queue.
        let analysed = cfg
            .max_expansions
            .saturating_sub(expansions)
            .min(frontier.len());
        expansions += analysed;
        obs::bump(obs::Counter::SearchLevels);
        obs::add(obs::Counter::SearchNodesExpanded, analysed as u64);
        // Worker threads flush their local counters into the global
        // registry before their closures return inside `analyse_level`,
        // so by the time the sequential merge below runs, totals are
        // already identical to a sequential analysis.
        let analyses = analyse_level(&frontier[..analysed], ctx);
        let mut results = analyses.into_iter();
        let mut next_level: Vec<Variant> = Vec::new();
        for (i, node) in frontier.into_iter().enumerate() {
            if i >= analysed {
                variants.push(node);
                continue;
            }
            match results.next().expect("one analysis per analysed node") {
                Analysis::Contradiction { ic_name, note } => {
                    return Outcome::Contradiction {
                        ic_name,
                        note,
                        steps: node.steps,
                    };
                }
                Analysis::Candidates(mut cands) => {
                    let depth = node.steps.len();
                    if depth < cfg.max_depth {
                        cands.sort_by_key(|c| SearchConfig::priority(&c.op));
                        for cand in cands {
                            if !cfg.enabled(&cand.op, ctx) {
                                continue;
                            }
                            let next = apply(&node.query, &cand.op);
                            if !next.is_safe() {
                                continue;
                            }
                            if !seen.insert(&next) {
                                obs::bump(obs::Counter::SearchDedupHits);
                                obs::bump(obs::Counter::SearchNodesPruned);
                                continue;
                            }
                            if seen.len() > cfg.max_variants {
                                obs::bump(obs::Counter::SearchNodesPruned);
                                continue;
                            }
                            let mut steps = node.steps.clone();
                            steps.push(Step {
                                op: cand.op,
                                ic_name: cand.ic_name,
                                residue: cand.residue,
                                note: cand.note,
                            });
                            next_level.push(Variant { query: next, steps });
                        }
                    }
                    variants.push(node);
                }
            }
        }
        frontier = next_level;
    }

    Outcome::Equivalents(variants)
}

/// A frontier entry in the best-first heap. Ordering is inverted so the
/// default max-heap pops the *lowest* cost first; ties break on the
/// discovery sequence number so equal-cost nodes pop in FIFO order.
/// Under [`CostModel::DepthUniform`] (cost = plan depth) this makes the
/// pop order exactly the BFS level order, which is what makes the
/// best-first engine byte-identical to the legacy BFS by construction.
struct FrontierNode {
    cost: f64,
    seq: u64,
    node: Variant,
}

impl PartialEq for FrontierNode {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl Eq for FrontierNode {}

impl PartialOrd for FrontierNode {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for FrontierNode {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want min-cost / min-seq.
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

fn analyse_batch_sequential(
    nodes: &[Variant],
    ctx: &TransformContext,
    cache: &AnalysisCache,
) -> Vec<Analysis> {
    nodes
        .iter()
        .map(|n| analyse_cached(&n.query, ctx, cache))
        .collect()
}

#[cfg(feature = "parallel")]
fn analyse_batch_parallel(
    nodes: &[Variant],
    ctx: &TransformContext,
    cache: &AnalysisCache,
) -> Vec<Analysis> {
    let workers = worker_budget().min(nodes.len());
    if workers <= 1 {
        return analyse_batch_sequential(nodes, ctx, cache);
    }
    let chunk = nodes.len().div_ceil(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = nodes
            .chunks(chunk)
            .map(|c| {
                s.spawn(move || {
                    let out = analyse_batch_sequential(c, ctx, cache);
                    // Flush inside the closure: scope/join completion does
                    // not wait for the worker's TLS destructors to run.
                    obs::flush_local();
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("search worker panicked"))
            .collect()
    })
}

#[cfg(not(feature = "parallel"))]
fn analyse_batch_parallel(
    nodes: &[Variant],
    ctx: &TransformContext,
    cache: &AnalysisCache,
) -> Vec<Analysis> {
    analyse_batch_sequential(nodes, ctx, cache)
}

/// The cost-driven best-first engine. Structure per round:
///
/// 1. Pop the cheapest `frontier_slice` nodes off the heap (all of them
///    when the slice is `None`, which batches a whole BFS level under
///    [`CostModel::DepthUniform`] and keeps the parallel fanout).
/// 2. Nodes whose cost exceeds `cost_cutoff` skip analysis entirely and
///    pass straight through as variants — sound, because every frontier
///    node is an already-proven equivalent; the cutoff only stops us
///    *expanding* them further.
/// 3. Analyse the batch through the per-search [`AnalysisCache`]
///    (structural memoization + exactness prefilter) and merge children
///    through the [`SubsumptionIndex`] (canonical-hash-bucketed, exact
///    on collision — no false dedup from a 64-bit fingerprint).
///
/// Under the default config (DepthUniform, no slice, no cutoff) the pop
/// order, budget accounting, candidate filtering, and dedup decisions
/// are all identical to [`optimize_with`], so the outcome — and the
/// downstream `explain_json` — is byte-identical to the legacy BFS.
/// Pinned by `best_first_matches_bfs_*` tests here and the
/// cross-strategy sweep in the fuzz crate.
fn best_first(q: &Query, ctx: &TransformContext, cfg: &SearchConfig, backend: Backend) -> Outcome {
    let _span = obs::span!("step3.search");
    let cache = AnalysisCache::new();
    let analyse_batch = |nodes: &[Variant]| -> Vec<Analysis> {
        match backend {
            Backend::Parallel => analyse_batch_parallel(nodes, ctx, &cache),
            Backend::Sequential => analyse_batch_sequential(nodes, ctx, &cache),
        }
    };
    let cost_of = |node: &Variant| -> f64 {
        match &cfg.cost_model {
            CostModel::DepthUniform => node.steps.len() as f64,
            CostModel::Estimator(f) => f(&node.query),
        }
    };

    let mut variants: Vec<Variant> = Vec::new();
    let mut index = SubsumptionIndex::new();
    let mut expansions = 0usize;
    let mut seq = 0u64;
    let mut frontier_peak = 0usize;

    let root = Variant {
        query: q.clone(),
        steps: Vec::new(),
    };
    index.insert(q);
    let mut heap: BinaryHeap<FrontierNode> = BinaryHeap::new();
    heap.push(FrontierNode {
        cost: cost_of(&root),
        seq,
        node: root,
    });
    seq += 1;
    frontier_peak = frontier_peak.max(heap.len());

    while !heap.is_empty() {
        let take = cfg
            .frontier_slice
            .unwrap_or(usize::MAX)
            .min(heap.len())
            .max(1);
        let mut batch: Vec<Variant> = Vec::with_capacity(take);
        let mut above_cutoff: Vec<Variant> = Vec::new();
        for _ in 0..take {
            let entry = heap.pop().expect("heap non-empty for 0..take");
            match cfg.cost_cutoff {
                Some(cutoff) if entry.cost > cutoff => above_cutoff.push(entry.node),
                _ => batch.push(entry.node),
            }
        }
        // Nodes beyond the expansion budget pass through unexpanded, in
        // pop (cost, seq) order, mirroring the legacy FIFO passthrough.
        let analysed = cfg
            .max_expansions
            .saturating_sub(expansions)
            .min(batch.len());
        expansions += analysed;
        obs::bump(obs::Counter::SearchLevels);
        obs::add(obs::Counter::SearchNodesExpanded, analysed as u64);
        let analyses = analyse_batch(&batch[..analysed]);
        let mut results = analyses.into_iter();
        for (i, node) in batch.into_iter().enumerate() {
            if i >= analysed {
                variants.push(node);
                continue;
            }
            match results.next().expect("one analysis per analysed node") {
                Analysis::Contradiction { ic_name, note } => {
                    return Outcome::Contradiction {
                        ic_name,
                        note,
                        steps: node.steps,
                    };
                }
                Analysis::Candidates(mut cands) => {
                    let depth = node.steps.len();
                    if depth < cfg.max_depth {
                        cands.sort_by_key(|c| SearchConfig::priority(&c.op));
                        for cand in cands {
                            if !cfg.enabled(&cand.op, ctx) {
                                continue;
                            }
                            // The index never shrinks, so once the variant
                            // budget is exhausted no child can ever be
                            // admitted — skip building and canonicalizing it.
                            if index.len() > cfg.max_variants {
                                obs::bump(obs::Counter::SearchNodesPruned);
                                continue;
                            }
                            let next = apply(&node.query, &cand.op);
                            if !next.is_safe() {
                                continue;
                            }
                            if !index.insert(&next) {
                                obs::bump(obs::Counter::SearchDedupHits);
                                obs::bump(obs::Counter::SearchNodesPruned);
                                obs::bump(obs::Counter::SearchSubsumedPruned);
                                continue;
                            }
                            if index.len() > cfg.max_variants {
                                obs::bump(obs::Counter::SearchNodesPruned);
                                continue;
                            }
                            let mut steps = node.steps.clone();
                            steps.push(Step {
                                op: cand.op,
                                ic_name: cand.ic_name,
                                residue: cand.residue,
                                note: cand.note,
                            });
                            let child = Variant { query: next, steps };
                            heap.push(FrontierNode {
                                cost: cost_of(&child),
                                seq,
                                node: child,
                            });
                            seq += 1;
                        }
                    }
                    variants.push(node);
                }
            }
        }
        variants.append(&mut above_cutoff);
        frontier_peak = frontier_peak.max(heap.len());
    }

    obs::add(obs::Counter::SearchFrontierPeak, frontier_peak as u64);
    Outcome::Equivalents(variants)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{Atom, CmpOp, Comparison};
    use crate::clause::{Constraint, ConstraintHead, Rule};
    use crate::residue::ResidueSet;
    use crate::term::Term;
    use std::collections::BTreeMap;

    fn v(n: &str) -> Term {
        Term::var(n)
    }

    fn scope_ctx() -> TransformContext {
        let ic4 = Constraint::named(
            "IC4",
            ConstraintHead::Cmp(Comparison::new(v("Age"), CmpOp::Ge, Term::int(30))),
            vec![Literal::pos("faculty", vec![v("X"), v("N"), v("Age")])],
        );
        let ic5 = Constraint::named(
            "IC5",
            ConstraintHead::Atom(Atom::new("person", vec![v("X"), v("N"), v("Age")])),
            vec![Literal::pos("faculty", vec![v("X"), v("N"), v("Age")])],
        );
        TransformContext::new(ResidueSet::compile(vec![ic4, ic5]), vec![], BTreeMap::new())
    }

    #[test]
    fn search_finds_scope_reduced_variant() {
        let q = Query::new(
            "q",
            vec![v("Name")],
            vec![
                Literal::pos("person", vec![v("X"), v("Name"), v("Age")]),
                Literal::cmp(v("Age"), CmpOp::Lt, Term::int(30)),
            ],
        );
        let out = optimize(&q, &scope_ctx(), &SearchConfig::default());
        let variants = out.variants();
        assert!(variants.len() >= 2);
        // Original is first, unchanged.
        assert!(variants[0].steps.is_empty());
        assert_eq!(variants[0].query, q);
        // Some variant carries the negative literal.
        let reduced = variants.iter().find(|va| {
            va.query
                .body
                .iter()
                .any(|l| matches!(l, Literal::Neg(a) if a.pred.name() == "faculty"))
        });
        let reduced = reduced.expect("scope-reduced variant");
        let d = delta(&q, &reduced.query);
        assert_eq!(d.added.len(), 1);
        assert!(d.removed.is_empty());
    }

    #[test]
    fn contradiction_short_circuits() {
        let ic = Constraint::named(
            "IC1",
            ConstraintHead::Cmp(Comparison::new(v("S"), CmpOp::Gt, Term::int(40000))),
            vec![Literal::pos("faculty", vec![v("O"), v("S")])],
        );
        let ctx = TransformContext::new(ResidueSet::compile(vec![ic]), vec![], BTreeMap::new());
        let q = Query::new(
            "q",
            vec![v("O")],
            vec![
                Literal::pos("faculty", vec![v("O"), v("Sal")]),
                Literal::cmp(v("Sal"), CmpOp::Lt, Term::int(20000)),
            ],
        );
        let out = optimize(&q, &ctx, &SearchConfig::default());
        assert!(out.is_contradiction());
        if let Outcome::Contradiction { ic_name, .. } = out {
            assert_eq!(ic_name.as_deref(), Some("IC1"));
        }
    }

    #[test]
    fn depth_zero_returns_only_original() {
        let q = Query::new(
            "q",
            vec![v("Name")],
            vec![
                Literal::pos("person", vec![v("X"), v("Name"), v("Age")]),
                Literal::cmp(v("Age"), CmpOp::Lt, Term::int(30)),
            ],
        );
        let cfg = SearchConfig {
            max_depth: 0,
            ..Default::default()
        };
        let out = optimize(&q, &scope_ctx(), &cfg);
        assert_eq!(out.variants().len(), 1);
    }

    #[test]
    fn disabled_op_classes_are_not_applied() {
        let q = Query::new(
            "q",
            vec![v("Name")],
            vec![
                Literal::pos("person", vec![v("X"), v("Name"), v("Age")]),
                Literal::cmp(v("Age"), CmpOp::Lt, Term::int(30)),
            ],
        );
        let cfg = SearchConfig {
            enable_add_neg: false,
            ..Default::default()
        };
        let out = optimize(&q, &scope_ctx(), &cfg);
        assert!(out
            .variants()
            .iter()
            .all(|va| { va.query.body.iter().all(|l| !matches!(l, Literal::Neg(_))) }));
    }

    #[test]
    fn max_variants_bounds_output() {
        // Many applicable restriction residues blow up the variant space;
        // the bound must hold.
        let mut ics = Vec::new();
        for i in 0..6 {
            ics.push(Constraint::named(
                format!("R{i}"),
                ConstraintHead::Cmp(Comparison::new(v("A"), CmpOp::Gt, Term::int(i))),
                vec![Literal::pos("p", vec![v("X"), v("A")])],
            ));
        }
        let ctx = TransformContext::new(ResidueSet::compile(ics), vec![], BTreeMap::new());
        let q = Query::new(
            "q",
            vec![v("X")],
            vec![Literal::pos("p", vec![v("X"), v("A")])],
        );
        let cfg = SearchConfig {
            max_variants: 5,
            ..Default::default()
        };
        let out = optimize(&q, &ctx, &cfg);
        assert!(out.variants().len() <= 6);
    }

    #[test]
    fn full_application4_q_pipeline() {
        // Original chain query + ASR view: the search should surface the
        // folded variant within default bounds.
        let view = Rule::new(
            Atom::new("asr", vec![v("X"), v("W")]),
            vec![
                Literal::pos("takes", vec![v("X"), v("Y")]),
                Literal::pos("is_section_of", vec![v("Y"), v("Z")]),
                Literal::pos("has_sections", vec![v("Z"), v("V")]),
                Literal::pos("has_ta", vec![v("V"), v("W")]),
            ],
        );
        let ctx = TransformContext::new(ResidueSet::compile(vec![]), vec![view], BTreeMap::new());
        let q = Query::new(
            "q",
            vec![v("W")],
            vec![
                Literal::pos("student", vec![v("X"), v("Name")]),
                Literal::pos("takes", vec![v("X"), v("Y")]),
                Literal::pos("is_section_of", vec![v("Y"), v("Z")]),
                Literal::pos("has_sections", vec![v("Z"), v("V")]),
                Literal::pos("has_ta", vec![v("V"), v("W")]),
                Literal::cmp(v("Name"), CmpOp::Eq, Term::str("james")),
            ],
        );
        let out = optimize(&q, &ctx, &SearchConfig::default());
        let folded = out.variants().iter().find(|va| {
            va.query.body.len() == 3
                && va
                    .query
                    .body
                    .iter()
                    .any(|l| matches!(l, Literal::Pos(a) if a.pred.name() == "asr"))
        });
        let folded = folded.expect("folded variant");
        let d = delta(&q, &folded.query);
        assert_eq!(d.removed.len(), 4);
        assert_eq!(d.added.len(), 1);
    }

    /// Assert the two search paths return identical outcomes: same
    /// variants in the same order, same steps, same provenance.
    fn assert_outcomes_identical(q: &Query, ctx: &TransformContext, cfg: &SearchConfig) {
        let par = optimize(q, ctx, cfg);
        let seq = optimize_sequential(q, ctx, cfg);
        assert_same_outcome(&par, &seq);
    }

    /// Assert two outcomes are identical: same kind, same variants in
    /// the same order, same steps, same provenance.
    fn assert_same_outcome(par: &Outcome, seq: &Outcome) {
        match (par, seq) {
            (
                Outcome::Contradiction {
                    ic_name: n1,
                    note: m1,
                    steps: s1,
                },
                Outcome::Contradiction {
                    ic_name: n2,
                    note: m2,
                    steps: s2,
                },
            ) => {
                assert_eq!(n1, n2);
                assert_eq!(m1, m2);
                assert_eq!(s1.len(), s2.len());
                for (a, b) in s1.iter().zip(s2) {
                    assert_eq!(a.op, b.op);
                    assert_eq!(a.ic_name, b.ic_name);
                }
            }
            (Outcome::Equivalents(v1), Outcome::Equivalents(v2)) => {
                assert_eq!(v1.len(), v2.len(), "variant count differs");
                for (a, b) in v1.iter().zip(v2) {
                    assert_eq!(a.query, b.query, "variant query differs");
                    assert_eq!(a.query.to_string(), b.query.to_string());
                    assert_eq!(a.steps.len(), b.steps.len());
                    for (x, y) in a.steps.iter().zip(&b.steps) {
                        assert_eq!(x.op, y.op);
                        assert_eq!(x.ic_name, y.ic_name);
                        assert_eq!(x.note, y.note);
                    }
                }
            }
            _ => panic!("outcome kinds differ: {par:?} vs {seq:?}"),
        }
    }

    /// Run the same search under both strategies (and both backends for
    /// the best-first side) and assert identical outcomes. This is the
    /// unit-level pin behind the "best-first is byte-identical to BFS by
    /// default" guarantee; the fuzz crate pins the rendered
    /// `explain_json` across strategies on top of this.
    fn assert_strategies_identical(q: &Query, ctx: &TransformContext, cfg: &SearchConfig) {
        let bfs = SearchConfig {
            strategy: Strategy::Bfs,
            ..cfg.clone()
        };
        let best = SearchConfig {
            strategy: Strategy::BestFirst,
            ..cfg.clone()
        };
        let baseline = optimize_sequential(q, ctx, &bfs);
        assert_same_outcome(&optimize(q, ctx, &bfs), &baseline);
        assert_same_outcome(&optimize(q, ctx, &best), &baseline);
        assert_same_outcome(&optimize_sequential(q, ctx, &best), &baseline);
    }

    #[test]
    fn best_first_matches_bfs_on_scope_reduction() {
        let q = Query::new(
            "q",
            vec![v("Name")],
            vec![
                Literal::pos("person", vec![v("X"), v("Name"), v("Age")]),
                Literal::cmp(v("Age"), CmpOp::Lt, Term::int(30)),
            ],
        );
        assert_strategies_identical(&q, &scope_ctx(), &SearchConfig::default());
    }

    #[test]
    fn best_first_matches_bfs_on_view_fold() {
        let view = Rule::new(
            Atom::new("asr", vec![v("X"), v("W")]),
            vec![
                Literal::pos("takes", vec![v("X"), v("Y")]),
                Literal::pos("is_section_of", vec![v("Y"), v("Z")]),
                Literal::pos("has_sections", vec![v("Z"), v("V")]),
                Literal::pos("has_ta", vec![v("V"), v("W")]),
            ],
        );
        let ctx = TransformContext::new(ResidueSet::compile(vec![]), vec![view], BTreeMap::new());
        let q = Query::new(
            "q",
            vec![v("W")],
            vec![
                Literal::pos("student", vec![v("X"), v("Name")]),
                Literal::pos("takes", vec![v("X"), v("Y")]),
                Literal::pos("is_section_of", vec![v("Y"), v("Z")]),
                Literal::pos("has_sections", vec![v("Z"), v("V")]),
                Literal::pos("has_ta", vec![v("V"), v("W")]),
                Literal::cmp(v("Name"), CmpOp::Eq, Term::str("james")),
            ],
        );
        assert_strategies_identical(&q, &ctx, &SearchConfig::default());
    }

    #[test]
    fn best_first_matches_bfs_on_contradiction() {
        let ic = Constraint::named(
            "IC1",
            ConstraintHead::Cmp(Comparison::new(v("S"), CmpOp::Gt, Term::int(40000))),
            vec![Literal::pos("faculty", vec![v("O"), v("S")])],
        );
        let ctx = TransformContext::new(ResidueSet::compile(vec![ic]), vec![], BTreeMap::new());
        let q = Query::new(
            "q",
            vec![v("O")],
            vec![
                Literal::pos("faculty", vec![v("O"), v("Sal")]),
                Literal::cmp(v("Sal"), CmpOp::Lt, Term::int(20000)),
            ],
        );
        assert_strategies_identical(&q, &ctx, &SearchConfig::default());
    }

    #[test]
    fn best_first_matches_bfs_under_tight_budgets() {
        let mut ics = Vec::new();
        for i in 0..8 {
            ics.push(Constraint::named(
                format!("R{i}"),
                ConstraintHead::Cmp(Comparison::new(v("A"), CmpOp::Gt, Term::int(i))),
                vec![Literal::pos("p", vec![v("X"), v("A")])],
            ));
        }
        let ctx = TransformContext::new(ResidueSet::compile(ics), vec![], BTreeMap::new());
        let q = Query::new(
            "q",
            vec![v("X")],
            vec![Literal::pos("p", vec![v("X"), v("A")])],
        );
        for (max_variants, max_expansions) in [(5, 3), (64, 96), (2, 1), (16, 7)] {
            let cfg = SearchConfig {
                max_variants,
                max_expansions,
                ..Default::default()
            };
            assert_strategies_identical(&q, &ctx, &cfg);
        }
    }

    #[test]
    fn best_first_counters_fire() {
        // R0 and R1 restrict independent attributes, so the depth-2
        // variant {A>3, B>7} is reached in both application orders — the
        // second arrival hits the subsumption index. F0's head mentions
        // C, which no body literal can bind: the exactness prefilter
        // must skip it.
        let ics = vec![
            Constraint::named(
                "R0",
                ConstraintHead::Cmp(Comparison::new(v("A"), CmpOp::Gt, Term::int(3))),
                vec![Literal::pos("p", vec![v("X"), v("A"), v("B")])],
            ),
            Constraint::named(
                "R1",
                ConstraintHead::Cmp(Comparison::new(v("B"), CmpOp::Gt, Term::int(7))),
                vec![Literal::pos("p", vec![v("X"), v("A"), v("B")])],
            ),
            Constraint::named(
                "F0",
                ConstraintHead::Cmp(Comparison::new(v("C"), CmpOp::Gt, Term::int(5))),
                vec![Literal::pos("p", vec![v("X"), v("A"), v("B")])],
            ),
        ];
        let ctx = TransformContext::new(ResidueSet::compile(ics), vec![], BTreeMap::new());
        let q = Query::new(
            "q",
            vec![v("X")],
            vec![Literal::pos("p", vec![v("X"), v("A"), v("B")])],
        );
        let before = obs::snapshot();
        let out = optimize(&q, &ctx, &SearchConfig::default());
        let after = obs::snapshot();
        assert!(out.variants().len() >= 2);
        // Counters are process-global, so compare before/after deltas:
        // concurrent tests can only inflate them, never hide our bumps.
        let delta = |name: &str| after.counters[name] - before.counters[name];
        assert!(delta("search.subsumed_pruned") >= 1, "subsumption prune");
        assert!(delta("search.exact_skipped") >= 1, "exactness skip");
        assert!(delta("search.frontier_peak") >= 1, "frontier peak");
    }

    #[test]
    fn cost_cutoff_passes_variants_through_unexpanded() {
        // With a cutoff below depth 1, the engine analyses only the root;
        // depth-1 children pass through as (already proven) equivalents.
        // That is exactly what BFS produces at max_depth = 1 when no
        // contradiction hides at depth 1 — same variants, same order.
        let q = Query::new(
            "q",
            vec![v("Name")],
            vec![
                Literal::pos("person", vec![v("X"), v("Name"), v("Age")]),
                Literal::cmp(v("Age"), CmpOp::Lt, Term::int(30)),
            ],
        );
        let ctx = scope_ctx();
        let cut = optimize(
            &q,
            &ctx,
            &SearchConfig {
                cost_cutoff: Some(0.5),
                ..Default::default()
            },
        );
        let bfs = optimize(
            &q,
            &ctx,
            &SearchConfig {
                strategy: Strategy::Bfs,
                max_depth: 1,
                ..Default::default()
            },
        );
        assert_same_outcome(&cut, &bfs);
    }

    #[test]
    fn estimator_model_with_slice_explores_same_variant_set() {
        // A non-uniform cost model plus a single-node frontier slice pops
        // in cost order, so the variant *order* may legitimately differ
        // from BFS — but with no budget pressure the explored *set* of
        // distinct queries must be identical.
        let mut ics = Vec::new();
        for i in 0..4 {
            ics.push(Constraint::named(
                format!("R{i}"),
                ConstraintHead::Cmp(Comparison::new(v("A"), CmpOp::Gt, Term::int(i))),
                vec![Literal::pos("p", vec![v("X"), v("A")])],
            ));
        }
        let ctx = TransformContext::new(ResidueSet::compile(ics), vec![], BTreeMap::new());
        let q = Query::new(
            "q",
            vec![v("X")],
            vec![Literal::pos("p", vec![v("X"), v("A")])],
        );
        let best = optimize(
            &q,
            &ctx,
            &SearchConfig {
                cost_model: CostModel::Estimator(std::sync::Arc::new(|q: &Query| {
                    q.body.len() as f64
                })),
                frontier_slice: Some(1),
                ..Default::default()
            },
        );
        let bfs = optimize(
            &q,
            &ctx,
            &SearchConfig {
                strategy: Strategy::Bfs,
                ..Default::default()
            },
        );
        let keys = |o: &Outcome| -> std::collections::BTreeSet<String> {
            o.variants()
                .iter()
                .map(|va| va.query.canonical_key())
                .collect()
        };
        assert_eq!(keys(&best), keys(&bfs));
    }

    #[test]
    fn parallel_matches_sequential_on_scope_reduction() {
        let q = Query::new(
            "q",
            vec![v("Name")],
            vec![
                Literal::pos("person", vec![v("X"), v("Name"), v("Age")]),
                Literal::cmp(v("Age"), CmpOp::Lt, Term::int(30)),
            ],
        );
        assert_outcomes_identical(&q, &scope_ctx(), &SearchConfig::default());
    }

    #[test]
    fn parallel_matches_sequential_on_view_fold() {
        let view = Rule::new(
            Atom::new("asr", vec![v("X"), v("W")]),
            vec![
                Literal::pos("takes", vec![v("X"), v("Y")]),
                Literal::pos("is_section_of", vec![v("Y"), v("Z")]),
                Literal::pos("has_sections", vec![v("Z"), v("V")]),
                Literal::pos("has_ta", vec![v("V"), v("W")]),
            ],
        );
        let ctx = TransformContext::new(ResidueSet::compile(vec![]), vec![view], BTreeMap::new());
        let q = Query::new(
            "q",
            vec![v("W")],
            vec![
                Literal::pos("student", vec![v("X"), v("Name")]),
                Literal::pos("takes", vec![v("X"), v("Y")]),
                Literal::pos("is_section_of", vec![v("Y"), v("Z")]),
                Literal::pos("has_sections", vec![v("Z"), v("V")]),
                Literal::pos("has_ta", vec![v("V"), v("W")]),
                Literal::cmp(v("Name"), CmpOp::Eq, Term::str("james")),
            ],
        );
        assert_outcomes_identical(&q, &ctx, &SearchConfig::default());
    }

    #[test]
    fn parallel_matches_sequential_under_tight_budgets() {
        // A wide frontier (many restriction residues) with tight variant
        // and expansion bounds exercises the budget-ordering guarantees.
        let mut ics = Vec::new();
        for i in 0..8 {
            ics.push(Constraint::named(
                format!("R{i}"),
                ConstraintHead::Cmp(Comparison::new(v("A"), CmpOp::Gt, Term::int(i))),
                vec![Literal::pos("p", vec![v("X"), v("A")])],
            ));
        }
        let ctx = TransformContext::new(ResidueSet::compile(ics), vec![], BTreeMap::new());
        let q = Query::new(
            "q",
            vec![v("X")],
            vec![Literal::pos("p", vec![v("X"), v("A")])],
        );
        for (max_variants, max_expansions) in [(5, 3), (64, 96), (2, 1), (16, 7)] {
            let cfg = SearchConfig {
                max_variants,
                max_expansions,
                ..Default::default()
            };
            assert_outcomes_identical(&q, &ctx, &cfg);
        }
    }

    #[test]
    fn dedup_modes_produce_identical_variants() {
        let q = Query::new(
            "q",
            vec![v("Name")],
            vec![
                Literal::pos("person", vec![v("X"), v("Name"), v("Age")]),
                Literal::cmp(v("Age"), CmpOp::Lt, Term::int(30)),
            ],
        );
        let ctx = scope_ctx();
        let fp = optimize(&q, &ctx, &SearchConfig::default());
        let key = optimize(
            &q,
            &ctx,
            &SearchConfig {
                dedup: DedupMode::CanonicalKey,
                ..Default::default()
            },
        );
        let (Outcome::Equivalents(a), Outcome::Equivalents(b)) = (&fp, &key) else {
            panic!("both satisfiable");
        };
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.query, y.query);
        }
    }

    #[test]
    fn parallel_matches_sequential_on_contradiction() {
        let ic = Constraint::named(
            "IC1",
            ConstraintHead::Cmp(Comparison::new(v("S"), CmpOp::Gt, Term::int(40000))),
            vec![Literal::pos("faculty", vec![v("O"), v("S")])],
        );
        let ctx = TransformContext::new(ResidueSet::compile(vec![ic]), vec![], BTreeMap::new());
        let q = Query::new(
            "q",
            vec![v("O")],
            vec![
                Literal::pos("faculty", vec![v("O"), v("Sal")]),
                Literal::cmp(v("Sal"), CmpOp::Lt, Term::int(20000)),
            ],
        );
        assert_outcomes_identical(&q, &ctx, &SearchConfig::default());
    }

    #[test]
    fn delta_detects_replacement() {
        let q1 = Query::new(
            "q",
            vec![],
            vec![
                Literal::pos("p", vec![v("X")]),
                Literal::cmp(v("X"), CmpOp::Eq, v("Y")),
            ],
        );
        let q2 = Query::new(
            "q",
            vec![],
            vec![
                Literal::pos("p", vec![v("X")]),
                Literal::cmp(v("X"), CmpOp::Lt, v("Y")),
            ],
        );
        let d = delta(&q1, &q2);
        assert_eq!(d.added.len(), 1);
        assert_eq!(d.removed.len(), 1);
        // Orientation-insensitive match keeps flipped comparisons equal.
        let q3 = Query::new(
            "q",
            vec![],
            vec![
                Literal::pos("p", vec![v("X")]),
                Literal::cmp(v("Y"), CmpOp::Eq, v("X")),
            ],
        );
        assert!(delta(&q1, &q3).is_empty());
    }
}
